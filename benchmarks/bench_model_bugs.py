"""BUGS — the RecBole implementation bottlenecks (paper Section III-C).

"The RepeatNet model contains expensive tensor multiplications of very
sparse matrices which are implemented with dense operations ... and the
SR-GNN and GC-SAN models contain NumPy operations in their inference
functions which require repeated data transfers between CPU and GPU at
inference time."

This bench quantifies both root causes from the op traces and shows their
end-to-end consequences.
"""

from conftest import DURATION_S, experiment_runner, run_once

from repro.core import ExperimentSpec, HardwareSpec
from repro.core.registry import GLOBAL_REGISTRY
from repro.hardware import GPU_T4, LatencyModel


def test_bugs_trace_evidence(benchmark):
    def collect():
        evidence = {}
        for model in ("gru4rec", "repeatnet", "srgnn", "gcsan"):
            trace, _mode, _failed = GLOBAL_REGISTRY.trace(model, 1_000_000, "jit")
            evidence[model] = {
                "activation_gb": trace.total_activation_bytes / 1e9,
                "transfer_mb": trace.total_transfer_bytes / 1e6,
                "host_ops": trace.host_op_count,
                "gpu_per_item_ms": LatencyModel(GPU_T4.device)
                .profile(trace)
                .per_item_s
                * 1e3,
            }
        return evidence

    evidence = run_once(benchmark, collect)
    print()
    print(f"{'model':<10} {'act GB/req':>11} {'PCIe MB/req':>12} "
          f"{'host ops':>9} {'T4 per-item ms':>15}")
    for model, stats in evidence.items():
        print(
            f"{model:<10} {stats['activation_gb']:>11.3f} "
            f"{stats['transfer_mb']:>12.2f} {stats['host_ops']:>9d} "
            f"{stats['gpu_per_item_ms']:>15.3f}"
        )

    # RepeatNet: the dense one-hot scatter moves ~L*C floats per request.
    assert evidence["repeatnet"]["activation_gb"] > 10 * (
        evidence["gru4rec"]["activation_gb"]
    )
    # SR-GNN / GC-SAN: host ops in the inference function.
    assert evidence["srgnn"]["host_ops"] >= 3
    assert evidence["gcsan"]["host_ops"] >= 3
    assert evidence["gru4rec"]["host_ops"] == 0
    # Their per-request GPU cost is dominated by transfer/sync stalls.
    assert (
        evidence["srgnn"]["gpu_per_item_ms"]
        > 3 * evidence["gru4rec"]["gpu_per_item_ms"]
    )
    benchmark.extra_info["srgnn_per_item_ms"] = evidence["srgnn"]["gpu_per_item_ms"]


def test_bugs_end_to_end_consequences(benchmark, experiment_runner):
    def measure():
        outcomes = {}
        for model in ("gru4rec", "repeatnet", "srgnn"):
            outcomes[model] = experiment_runner.run(
                ExperimentSpec(
                    model=model,
                    catalog_size=1_000_000,
                    target_rps=500,
                    hardware=HardwareSpec("GPU-T4", 1),
                    duration_s=DURATION_S,
                )
            )
        return outcomes

    outcomes = run_once(benchmark, measure)
    print()
    for model, result in outcomes.items():
        p90 = result.p90_at_target_ms
        print(
            f"{model:<10} Fashion-on-T4: p90@target="
            f"{p90 if p90 is None else round(p90, 1)} ms, "
            f"feasible={result.meets_slo(50)}"
        )
    assert outcomes["gru4rec"].meets_slo(50)
    assert not outcomes["repeatnet"].meets_slo(50)
    assert not outcomes["srgnn"].meets_slo(50)
