"""ALG1-PERF — synthetic workload generation throughput.

The paper (Section II): "our implementation is able to generate over one
million clicks per second on a single core for a catalog size C of ten
million items". This is the one genuine wall-clock microbenchmark in the
suite, measured with pytest-benchmark's repetition machinery.
"""

import pytest
from conftest import WORKLOAD_CLICKS

from repro.workload import SyntheticWorkloadGenerator, WorkloadStatistics

CLICKS = WORKLOAD_CLICKS


@pytest.fixture(scope="module")
def generator_10m():
    return SyntheticWorkloadGenerator(WorkloadStatistics.bol_like(10_000_000))


def test_alg1_throughput_ten_million_catalog(benchmark, generator_10m):
    log = benchmark(generator_10m.generate_clicks, CLICKS)
    assert len(log) >= CLICKS
    clicks_per_second = CLICKS / benchmark.stats["mean"]
    benchmark.extra_info["clicks_per_second"] = clicks_per_second
    print(f"\nALG1: {clicks_per_second / 1e6:.2f} M clicks/s (paper: > 1 M/s)")
    assert clicks_per_second > 1_000_000


def test_alg1_throughput_small_catalog(benchmark):
    generator = SyntheticWorkloadGenerator(WorkloadStatistics.bol_like(10_000))
    log = benchmark(generator.generate_clicks, CLICKS)
    assert len(log) >= CLICKS
    assert CLICKS / benchmark.stats["mean"] > 1_000_000
