"""RETR — ANN retrieval as a recall-floored deployment-planner dimension.

Runs the Table I planner over the Platform scenario (20M items, 1,000
req/s) with IVF-Flat retrieval candidates in the search space
(``retrieval_options``) and checks that approximate candidate generation
changes the cost picture the way the latency model predicts — without the
planner ever trading away recall silently. Findings to reproduce:

(i)   recall@21 against the exact scan climbs with the probed fraction:
      at nlist=1024 the embeddings (near-isotropic, so clusters are weak)
      need nprobe=512 — half the inverted lists — to clear a 0.95 floor;
      nprobe=128 and 256 land far below it;
(ii)  sub-floor candidates are rejected *before* any load test is paid
      for: they appear in ``plan.infeasible`` with a recall message, not
      as measured options;
(iii) with the exact scan, Platform is the paper's worst case — T4s are
      infeasible and the only option is a three-A100 fleet ($6,026);
      IVF at recall 0.96 halves the scan traffic, which brings T4s back
      into play and undercuts the A100 fleet by an order of magnitude;
(iv)  the savings are honest: the winning option's measured run served
      real ANN queries (``ann_queries`` > 0) over a per-pod index whose
      build time was charged at deploy, and its recall was measured on
      the real model embeddings, not assumed.

Wall-clock for the full regeneration is recorded in ``BENCH_retrieval.json``
(skipped in ``ETUDE_BENCH_SMOKE=1`` runs, which shrink the load tests).
"""

import json
import time
from pathlib import Path

from conftest import DURATION_S, REPETITIONS, SMOKE, experiment_runner, run_once

from repro.ann.config import RetrievalConfig
from repro.core import DeploymentPlanner
from repro.core.spec import Scenario
from repro.hardware import GPU_A100, GPU_T4

SCENARIO = Scenario("Platform", 20_000_000, 1_000)
MODEL = "gru4rec"
NLIST = 1024
NPROBES = (128, 256, 512)
MIN_RECALL = 0.95
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_retrieval.json"


def test_retrieval_planning(benchmark, experiment_runner):
    configs = tuple(
        RetrievalConfig.parse(f"ivf:nlist={NLIST},nprobe={nprobe}")
        for nprobe in NPROBES
    )
    planner = DeploymentPlanner(
        runner=experiment_runner,
        duration_s=DURATION_S,
        max_replicas=8,
        repetitions=REPETITIONS,
        retrieval_options=(None,) + configs,
        min_recall=MIN_RECALL,
    )

    started = time.perf_counter()

    def plan_platform():
        return planner.plan(
            SCENARIO, [MODEL], instances=[GPU_T4, GPU_A100]
        )[MODEL]

    plan = run_once(benchmark, plan_platform)
    wall_clock_s = time.perf_counter() - started

    registry = experiment_runner.registry
    exact_options = [o for o in plan.options if o.retrieval is None]
    ann_options = [o for o in plan.options if o.retrieval is not None]

    frontier = []
    for config in configs:
        recall = registry.measured_recall(MODEL, SCENARIO.catalog_size, config)
        matching = [
            o for o in ann_options if o.retrieval == config.spec_string()
        ]
        cheapest = (
            min(matching, key=lambda o: o.monthly_cost_usd)
            if matching
            else None
        )
        frontier.append(
            {
                "retrieval": config.spec_string(),
                "nprobe": config.nprobe,
                "probed_fraction": config.nprobe / NLIST,
                "recall_at_21": round(recall, 3),
                "admitted": recall >= MIN_RECALL,
                "monthly_cost_usd": (
                    round(cheapest.monthly_cost_usd, 2)
                    if cheapest is not None
                    else None
                ),
                "p90_ms": (
                    round(cheapest.result.p90_ms, 2)
                    if cheapest is not None
                    else None
                ),
            }
        )

    print()
    print(f"--- {SCENARIO.name} (C={SCENARIO.catalog_size:,}, {MODEL})")
    for row in frontier:
        cost = (
            f"${row['monthly_cost_usd']:,.0f}/month, p90={row['p90_ms']:.1f} ms"
            if row["monthly_cost_usd"] is not None
            else "below recall floor" if not row["admitted"] else "infeasible"
        )
        print(
            f"  nprobe={row['nprobe']:>4} ({row['probed_fraction'] * 100:.0f}% "
            f"of lists): recall@21={row['recall_at_21']:.3f}  {cost}"
        )
    for option in sorted(plan.options, key=lambda o: o.monthly_cost_usd):
        print(
            f"  {option.instance_type:<10} x{option.replicas} "
            f"[{option.retrieval or 'exact'}] "
            f"${option.monthly_cost_usd:,.0f}/month"
        )
    for key, reason in plan.infeasible.items():
        print(f"  {key}: {reason}")

    # (i) Recall climbs monotonically with nprobe; only the widest probe
    # clears the floor.
    recalls = [row["recall_at_21"] for row in frontier]
    assert recalls == sorted(recalls)
    assert recalls[0] < MIN_RECALL
    assert recalls[-1] >= MIN_RECALL

    # (ii) Sub-floor candidates were rejected by the recall gate, not by a
    # failed load test.
    for row in frontier:
        if row["admitted"]:
            continue
        assert row["monthly_cost_usd"] is None
        rejections = [
            reason
            for key, reason in plan.infeasible.items()
            if f"[{row['retrieval']}]" in key
        ]
        assert rejections and all("recall" in r for r in rejections)

    # (iii) Exact scan: T4 infeasible, A100 the only (expensive) option;
    # the admitted IVF plan is strictly cheaper than the cheapest exact one.
    assert "GPU-T4" in plan.infeasible
    assert exact_options and all(
        o.instance_type == "GPU-A100" for o in exact_options
    )
    cheapest_exact = min(o.monthly_cost_usd for o in exact_options)
    winner = plan.cheapest()
    assert winner.retrieval == configs[-1].spec_string()
    assert winner.recall is not None and winner.recall >= MIN_RECALL
    assert winner.monthly_cost_usd < cheapest_exact

    # (iv) Honest accounting: the winner's measured run served real ANN
    # queries and charged the per-pod index build at deploy time.
    section = winner.result.retrieval
    assert section is not None
    assert section["ann_queries"] > 0
    assert section["ann_probed_lists"] >= section["ann_queries"]
    assert section["index_build_s"] > 0.0
    assert section["recall_at_k"] >= MIN_RECALL

    benchmark.extra_info["cheapest_exact_usd"] = round(cheapest_exact)
    benchmark.extra_info["cheapest_ann_usd"] = round(winner.monthly_cost_usd)

    if not SMOKE:
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "retrieval",
                    "scenario": {
                        "name": SCENARIO.name,
                        "catalog_size": SCENARIO.catalog_size,
                        "target_rps": SCENARIO.target_rps,
                    },
                    "model": MODEL,
                    "duration_s": DURATION_S,
                    "repetitions": REPETITIONS,
                    "min_recall": MIN_RECALL,
                    "frontier": frontier,
                    "cheapest_exact_usd": round(cheapest_exact, 2),
                    "cheapest_ann_usd": round(winner.monthly_cost_usd, 2),
                    "winner": {
                        "instance_type": winner.instance_type,
                        "replicas": winner.replicas,
                        "retrieval": winner.retrieval,
                        "recall_at_21": round(winner.recall, 3),
                    },
                    "wall_clock_s": round(wall_clock_s, 2),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {RESULTS_PATH.name} (wall clock {wall_clock_s:.1f} s)")
