"""EXT — the paper's future-work directions, implemented and measured.

Section IV: "we plan to extend ETUDE with more inference runtimes such as
ONNX ... we will explore ... model quantisation ... as well as approximate
nearest neighbor search ... as well as the automatic choice of appropriate
instance types for declaratively specified workloads."

Three quality/latency trade-off studies:

- int8 quantization of the catalog table (4x less scan traffic);
- IVF-Flat ANN search (recall vs probed fraction);
- the ONNX-style static-plan executor vs eager/TorchScript;

plus cross-cloud planning with the AWS/Azure catalogs.
"""

import numpy as np
from conftest import run_once

from repro.ann import AnnSessionRecModel, recall_at_k
from repro.core.registry import AssetRegistry
from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.models import ModelConfig, create_model
from repro.tensor import Tensor, cost_trace
from repro.tensor.quantization import quantize_model

CATALOG = 1_000_000
SESSIONS = [
    [5, 17, 900, 42],
    [123_456, 9, 9, 77],
    [40_000, 41_000, 42_000],
    [1],
    [999_999, 2, 999_999],
]


def _latency_ms(model, device, session):
    items, length = model.prepare_inputs(session)
    with cost_trace() as trace:
        model.forward(Tensor(items), Tensor(length))
    return LatencyModel(device).profile(trace).latency(1) * 1e3


def test_ext_quantization_tradeoff(benchmark):
    def measure():
        model = create_model("gru4rec", ModelConfig.for_catalog(CATALOG))
        quantized = quantize_model(model)
        overlaps = []
        for session in SESSIONS:
            exact = set(model.recommend(session).tolist())
            approx = set(quantized.recommend(session).tolist())
            overlaps.append(len(exact & approx) / model.top_k)
        return {
            "overlap": float(np.mean(overlaps)),
            "fp32_cpu_ms": _latency_ms(model, CPU_E2.device, SESSIONS[0]),
            "int8_cpu_ms": _latency_ms(quantized, CPU_E2.device, SESSIONS[0]),
            "fp32_gpu_ms": _latency_ms(model, GPU_T4.device, SESSIONS[0]),
            "int8_gpu_ms": _latency_ms(quantized, GPU_T4.device, SESSIONS[0]),
        }

    stats = run_once(benchmark, measure)
    print()
    print(f"EXT quantization (C={CATALOG:,}): top-k overlap {stats['overlap']:.2f}")
    print(f"  CPU    fp32 {stats['fp32_cpu_ms']:.2f} ms -> int8 "
          f"{stats['int8_cpu_ms']:.2f} ms ({stats['fp32_cpu_ms'] / stats['int8_cpu_ms']:.1f}x)")
    print(f"  GPU-T4 fp32 {stats['fp32_gpu_ms']:.2f} ms -> int8 "
          f"{stats['int8_gpu_ms']:.2f} ms ({stats['fp32_gpu_ms'] / stats['int8_gpu_ms']:.1f}x)")
    assert stats["overlap"] > 0.85
    assert stats["int8_cpu_ms"] < 0.5 * stats["fp32_cpu_ms"]


def test_ext_ann_tradeoff(benchmark):
    def measure():
        model = create_model("gru4rec", ModelConfig.for_catalog(CATALOG))
        ann = AnnSessionRecModel(model, nlist=181, nprobe=1)
        rows = []
        for nprobe in (1, 4, 16, 64, 181):
            ann.set_nprobe(nprobe)
            recalls = []
            for session in SESSIONS:
                exact = model.recommend(session)
                approx = ann.recommend(session)
                recalls.append(recall_at_k(exact, approx))
            rows.append(
                (
                    nprobe,
                    float(np.mean(recalls)),
                    _latency_ms(ann, CPU_E2.device, SESSIONS[0]),
                )
            )
        exact_ms = _latency_ms(model, CPU_E2.device, SESSIONS[0])
        return rows, exact_ms

    rows, exact_ms = run_once(benchmark, measure)
    print()
    print(f"EXT ANN (IVF-Flat, C={CATALOG:,}; exact scan {exact_ms:.1f} ms on CPU)")
    print(f"{'nprobe':>7} {'recall@21':>10} {'CPU ms':>8} {'speedup':>8}")
    for nprobe, recall, latency in rows:
        print(f"{nprobe:>7} {recall:>10.2f} {latency:>8.2f} {exact_ms / latency:>7.1f}x")
    # Full probe = exact recall; small probes trade recall for latency.
    assert rows[-1][1] == 1.0
    assert rows[0][2] < 0.2 * exact_ms
    recalls = [recall for _n, recall, _l in rows]
    assert all(a <= b + 0.05 for a, b in zip(recalls, recalls[1:]))


def test_ext_onnx_runtime(benchmark):
    def measure():
        registry = AssetRegistry()
        rows = []
        for model in ("gru4rec", "sasrec", "core"):
            eager = registry.profile(model, 10_000, GPU_T4.device, "eager")
            jit = registry.profile(model, 10_000, GPU_T4.device, "jit")
            onnx = registry.profile(model, 10_000, GPU_T4.device, "onnx")
            rows.append(
                (model, eager.latency(1) * 1e3, jit.latency(1) * 1e3, onnx.latency(1) * 1e3)
            )
        return rows

    rows = run_once(benchmark, measure)
    print()
    print("EXT ONNX-style runtime (GPU-T4, C=1e4 — the dispatch-bound regime)")
    print(f"{'model':<10} {'eager ms':>9} {'jit ms':>8} {'onnx ms':>8}")
    for model, eager, jit, onnx in rows:
        print(f"{model:<10} {eager:>9.3f} {jit:>8.3f} {onnx:>8.3f}")
    for _model, eager, jit, onnx in rows:
        assert onnx <= jit <= eager * 1.001


def test_ext_non_neural_baseline(benchmark, experiment_runner):
    """The paper's closing observation: twenty-million-item catalogs 'can
    be handled much cheaper with non-neural approaches' [13]. VMIS-kNN on
    a single $108 CPU machine vs the neural models' 3x$6,026 A100 fleet."""
    from conftest import DURATION_S

    from repro.core import ExperimentSpec, HardwareSpec
    from repro.hardware import CPU_E2, GPU_A100

    def measure():
        knn = experiment_runner.run(
            ExperimentSpec(
                model="vmisknn", catalog_size=20_000_000, target_rps=1000,
                hardware=HardwareSpec("CPU", 1), duration_s=DURATION_S,
                execution="eager",
            )
        )
        neural = experiment_runner.run(
            ExperimentSpec(
                model="gru4rec", catalog_size=20_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-A100", 3), duration_s=DURATION_S,
            )
        )
        return knn, neural

    knn, neural = run_once(benchmark, measure)
    knn_cost = CPU_E2.monthly_cost_usd
    neural_cost = GPU_A100.cost_for(3)
    print()
    print("EXT non-neural baseline @ Platform (C=2e7, 1,000 req/s):")
    print(f"  vmisknn  CPU x1      ${knn_cost:>8,.0f}/mo  "
          f"p90@target={knn.p90_at_target_ms:6.2f} ms  "
          f"SLO={'yes' if knn.meets_slo(50) else 'no'}")
    print(f"  gru4rec  GPU-A100 x3 ${neural_cost:>8,.0f}/mo  "
          f"p90@target={neural.p90_at_target_ms:6.2f} ms  "
          f"SLO={'yes' if neural.meets_slo(50) else 'no'}")
    print(f"  -> {neural_cost / knn_cost:.0f}x cheaper non-neurally")
    assert knn.meets_slo(50)
    assert neural.meets_slo(50)
    assert knn_cost < neural_cost / 50


def test_ext_cross_cloud_planning(benchmark):
    from repro.core import DeploymentPlanner, ExperimentRunner
    from repro.core.spec import Scenario
    from repro.hardware.clouds import all_clouds

    def plan():
        planner = DeploymentPlanner(
            runner=ExperimentRunner(seed=88), duration_s=60.0, max_replicas=6
        )
        scenario = Scenario("cross-cloud fashion", 1_000_000, 500)
        plans = planner.plan(scenario, ["gru4rec"], instances=all_clouds())
        return plans["gru4rec"]

    plan_result = run_once(benchmark, plan)
    print()
    print("EXT cross-cloud plan (Fashion-like: C=1e6, 500 req/s)")
    for option in sorted(plan_result.options, key=lambda o: o.monthly_cost_usd):
        print(
            f"  {option.instance_type:<14} x{option.replicas} "
            f"${option.monthly_cost_usd:>8,.0f}/month "
            f"p90@target={option.result.p90_at_target_ms:6.1f} ms"
        )
    cheapest = plan_result.cheapest()
    assert cheapest is not None
    # The cheapest T4 offering wins across clouds (AWS g4dn at $232 here).
    assert "T4" in cheapest.instance_type
