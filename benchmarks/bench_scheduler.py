"""SCHED — heterogeneous CPU/GPU serving as a deployment-planner dimension.

Runs the Table I planner over the Groceries (large) scenario (100k items,
250 req/s) under a latency budget tighter than the paper's 50 ms — a
3.1 ms p90 limit of the kind an ad-ranking sidecar would impose — with a
heterogeneous scheduler config in the search space (``scheduler_options``).
Findings to reproduce:

(i)   under the tight budget every *homogeneous* fleet is infeasible, at
      any replica count: CPU pods are latency-bound (single inference
      ~3.16 ms > budget with no batching to amortize), and both GPU
      fleets are linger-bound — the paper's hardcoded 1,024-request /
      2 ms batching window alone eats two thirds of the budget (T4
      p90 ~3.47 ms, A100 ~3.31 ms), and replicas cannot shrink it;
(ii)  the mixed fleets are feasible — the tuner hill-climbs the linger
      down from the 2 ms default until the watched p90 sits inside the
      target band — so the heterogeneous plan wins the scenario outright
      on cost: one T4 plus one auxiliary CPU pod at $376/month, where no
      homogeneous option exists at all (the A100+CPU pair also passes,
      at 5.6x the price);
(iii) the win is honest: the winning option's measured run split real
      traffic across both pod classes (short sessions offloaded to the
      CPU pod), answered every request, and its tuner *converged* —
      knobs at rest inside the band, not still thrashing;
(iv)  the planner charged the mixed fleet for both classes: its monthly
      cost is exactly the T4 price plus the CPU-pod price.

Wall-clock for the full regeneration is recorded in
``BENCH_scheduler.json`` (skipped in ``ETUDE_BENCH_SMOKE=1`` runs, which
shrink the load tests).
"""

import json
import time
from pathlib import Path

from conftest import DURATION_S, REPETITIONS, SMOKE, experiment_runner, run_once

from repro.core import DeploymentPlanner
from repro.core.spec import SLO, Scenario
from repro.hardware import CPU_E2, GPU_A100, GPU_T4
from repro.scheduler import SchedulerConfig

SCENARIO = Scenario("Groceries (large)", 100_000, 250)
MODEL = "gru4rec"
P90_LIMIT_MS = 3.1
#: The mixed candidate: one CPU pod beside the GPU fleet, tuner targeting
#: just under the budget (band 2.61-3.19 ms) from the 1,024/2 ms defaults.
MIXED = "cpu=1,target=2.9,tol=0.1"
#: Latency-bound scenario: extra replicas cannot shrink a linger- or
#: single-inference-bound p90, so a deep replica search is wasted runs.
MAX_REPLICAS = 2
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def test_scheduler_planning(benchmark, experiment_runner):
    config = SchedulerConfig.parse(MIXED)
    planner = DeploymentPlanner(
        runner=experiment_runner,
        slo=SLO(p90_latency_ms=P90_LIMIT_MS),
        duration_s=DURATION_S,
        max_replicas=MAX_REPLICAS,
        repetitions=REPETITIONS,
        scheduler_options=(None, config),
    )

    started = time.perf_counter()

    def plan_groceries():
        return planner.plan(
            SCENARIO, [MODEL], instances=[CPU_E2, GPU_T4, GPU_A100]
        )[MODEL]

    plan = run_once(benchmark, plan_groceries)
    wall_clock_s = time.perf_counter() - started

    homogeneous = [o for o in plan.options if o.cpu_replicas == 0]
    mixed = [o for o in plan.options if o.cpu_replicas > 0]

    print()
    print(
        f"--- {SCENARIO.name} (C={SCENARIO.catalog_size:,}, "
        f"{SCENARIO.target_rps} req/s, p90 <= {P90_LIMIT_MS} ms, {MODEL})"
    )
    for option in sorted(plan.options, key=lambda o: o.monthly_cost_usd):
        suffix = f"+{option.cpu_replicas}c" if option.cpu_replicas else ""
        print(
            f"  {option.instance_type:<10} x{option.replicas}{suffix} "
            f"[{option.scheduler or 'homogeneous'}] "
            f"${option.monthly_cost_usd:,.0f}/month "
            f"p90={option.result.p90_at_target_ms:.2f} ms"
        )
    for key, reason in plan.infeasible.items():
        print(f"  {key}: {reason}")

    # (i) No homogeneous fleet fits the budget — CPU is latency-bound,
    # both GPUs are bound by the hardcoded 2 ms batching linger.
    assert not homogeneous
    for name in ("CPU", "GPU-T4", "GPU-A100"):
        assert name in plan.infeasible

    # (ii) Only mixed fleets are feasible (the A100+CPU pair passes too,
    # at 5.6x the price); the cheapest plan is the T4 plus one CPU pod.
    assert mixed
    winner = plan.cheapest()
    assert winner.instance_type == "GPU-T4" and winner.cpu_replicas == 1
    assert winner.result.p90_at_target_ms is not None
    assert winner.result.p90_at_target_ms <= P90_LIMIT_MS

    # (iii) Honest traffic split and a converged tuner: the linger moved
    # off the paper's 2 ms default and then came to rest inside the band.
    section = winner.result.scheduler
    assert section is not None
    assert section["routed_cpu"] > 0 and section["routed_gpu"] > 0
    assert section["offload_short_session"] > 0
    assert winner.result.error_requests == 0
    tuner = section["tuner"]
    assert tuner["moves"] >= 1
    assert tuner["converged"]
    assert tuner["linger_s"] < SchedulerConfig().linger_s

    # (iv) The plan pays for both pod classes.
    expected_cost = GPU_T4.cost_for(winner.replicas) + CPU_E2.cost_for(1)
    assert abs(winner.monthly_cost_usd - expected_cost) < 1e-6

    benchmark.extra_info["mixed_cost_usd"] = round(winner.monthly_cost_usd)
    benchmark.extra_info["mixed_p90_ms"] = round(
        winner.result.p90_at_target_ms, 2
    )

    if not SMOKE:
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "scheduler",
                    "scenario": {
                        "name": SCENARIO.name,
                        "catalog_size": SCENARIO.catalog_size,
                        "target_rps": SCENARIO.target_rps,
                    },
                    "model": MODEL,
                    "duration_s": DURATION_S,
                    "repetitions": REPETITIONS,
                    "p90_limit_ms": P90_LIMIT_MS,
                    "homogeneous_infeasible": {
                        key: reason
                        for key, reason in plan.infeasible.items()
                        if "{" not in key
                    },
                    "winner": {
                        "instance_type": winner.instance_type,
                        "replicas": winner.replicas,
                        "cpu_replicas": winner.cpu_replicas,
                        "scheduler": winner.scheduler,
                        "monthly_cost_usd": round(winner.monthly_cost_usd, 2),
                        "p90_at_target_ms": round(
                            winner.result.p90_at_target_ms, 3
                        ),
                        "routed_cpu": section["routed_cpu"],
                        "routed_gpu": section["routed_gpu"],
                        "tuner": tuner,
                    },
                    "wall_clock_s": round(wall_clock_s, 2),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {RESULTS_PATH.name} (wall clock {wall_clock_s:.1f} s)")
