"""Ablations of ETUDE's own design choices (DESIGN.md Section 5).

Not a paper artifact, but the design-choice evidence DESIGN.md calls for:

- the GPU batching window (2 ms / 1,024) against alternatives;
- backpressure-aware load generation vs. naive open-loop overload;
- the contribution of individual JIT passes.
"""

import numpy as np
from conftest import run_once

from repro.core.registry import AssetRegistry
from repro.hardware import GPU_T4, LatencyModel
from repro.loadgen.generator import LoadGenerator
from repro.metrics.collector import MetricsCollector
from repro.serving.actix import EtudeInferenceServer
from repro.serving.batching import BatchingConfig
from repro.simulation import RandomStreams, Simulator
from repro.tensor import cost_trace
from repro.tensor.jit import (
    eliminate_dead_ops,
    eliminate_dropout,
    fold_constants,
    fuse_elementwise,
    fuse_linear_activation,
    trace as jit_trace,
    ScriptedModule,
    OptimizationReport,
)
from repro.workload import SyntheticWorkloadGenerator, WorkloadStatistics


def _drive_gpu_server(batching, target_rps=800, duration_s=60.0):
    """Run a fixed GPU deployment under the given batching config."""
    registry = AssetRegistry()
    assets = registry.assets("gru4rec", 10_000_000, GPU_T4.device, "jit")
    simulator = Simulator()
    streams = RandomStreams(7)
    server = EtudeInferenceServer(
        simulator,
        GPU_T4.device,
        assets.profile,
        streams.stream("server"),
        batching=batching,
    )
    workload = SyntheticWorkloadGenerator(
        WorkloadStatistics.bol_like(10_000_000), seed=5
    )
    collector = MetricsCollector()
    LoadGenerator(
        simulator,
        server.submit,
        workload.iter_sessions(),
        target_rps=target_rps,
        duration_s=duration_s,
        collector=collector,
    ).start()
    simulator.run()
    return collector


def test_ablation_batching_window(benchmark):
    """No batching cannot sustain the load; the 2 ms window is a good spot."""

    def sweep():
        outcomes = {}
        for label, config in (
            ("no-batching", BatchingConfig(max_batch_size=1, max_delay_s=0.0)),
            ("paper 2ms/1024", BatchingConfig(max_batch_size=1024, max_delay_s=0.002)),
            ("long 20ms/1024", BatchingConfig(max_batch_size=1024, max_delay_s=0.020)),
            ("tiny 2ms/4", BatchingConfig(max_batch_size=4, max_delay_s=0.002)),
        ):
            collector = _drive_gpu_server(config)
            outcomes[label] = (
                collector.percentile_ms(90) if collector.ok else float("inf"),
                collector.achieved_throughput(),
            )
        return outcomes

    outcomes = run_once(benchmark, sweep)
    print()
    print(f"{'batching':<16} {'p90 ms':>10} {'achieved rps':>13}")
    for label, (p90, rps) in outcomes.items():
        print(f"{label:<16} {p90:>10.1f} {rps:>13.1f}")

    paper_p90, paper_rps = outcomes["paper 2ms/1024"]
    nobatch_p90, nobatch_rps = outcomes["no-batching"]
    long_p90, _ = outcomes["long 20ms/1024"]
    tiny_p90, _ = outcomes["tiny 2ms/4"]
    assert nobatch_rps < paper_rps * 0.6 or nobatch_p90 > 5 * paper_p90
    assert long_p90 > paper_p90  # longer linger only adds latency here
    assert tiny_p90 > paper_p90  # tiny batches forfeit amortization


def test_ablation_backpressure(benchmark):
    """Without backpressure an overloaded server's queue runs away; with it
    the generator throttles and the experiment stays interpretable."""

    def run_with_backpressure():
        # Target far above a single T4's capacity at C=1e7.
        return _drive_gpu_server(
            BatchingConfig(), target_rps=3000, duration_s=40.0
        )

    collector = run_once(benchmark, run_with_backpressure)
    # Every accepted request completed: nothing lost, no error avalanche.
    assert collector.errors == 0
    # But far fewer than the open-loop offered integral (3000*40/2 = 60k).
    assert collector.total < 45_000
    print(
        f"\nbackpressure kept {collector.total} requests "
        f"(open-loop would offer ~60,000), p90="
        f"{collector.percentile_ms(90):.0f} ms"
    )


def test_ablation_flash_sale_schedule(benchmark):
    """Beyond the paper's ramp: a 4x flash-sale burst against a GPU
    deployment. The batching buffer absorbs the spike by growing the batch;
    latency rises during the burst window and recovers afterwards."""
    from repro.loadgen import FlashSaleSchedule

    def run_flash_sale():
        registry = AssetRegistry()
        assets = registry.assets("gru4rec", 10_000_000, GPU_T4.device, "jit")
        simulator = Simulator()
        streams = RandomStreams(11)
        server = EtudeInferenceServer(
            simulator, GPU_T4.device, assets.profile,
            streams.stream("server"), batching=BatchingConfig(),
        )
        workload = SyntheticWorkloadGenerator(
            WorkloadStatistics.bol_like(10_000_000), seed=3
        )
        collector = MetricsCollector()
        LoadGenerator(
            simulator, server.submit, workload.iter_sessions(),
            target_rps=200, duration_s=120.0, collector=collector,
            schedule=FlashSaleSchedule(
                baseline_rps=200, burst_factor=4.0,
                burst_start_fraction=0.5, burst_end_fraction=0.7,
            ),
        ).start()
        simulator.run()
        return collector

    collector = run_once(benchmark, run_flash_sale)
    buckets = collector.buckets()
    before = [b for b in buckets if 20 <= b.second < 55 and b.p90_ms() is not None]
    burst = [b for b in buckets if 62 <= b.second < 82 and b.p90_ms() is not None]
    after = [b for b in buckets if 90 <= b.second < 115 and b.p90_ms() is not None]
    p90_before = float(np.median([b.p90_ms() for b in before]))
    p90_burst = float(np.median([b.p90_ms() for b in burst]))
    p90_after = float(np.median([b.p90_ms() for b in after]))
    batch_before = float(np.median([np.mean(b.batch_sizes) for b in before]))
    batch_burst = float(np.median([np.mean(b.batch_sizes) for b in burst]))
    print(
        f"\nflash sale on one T4 (C=1e7): p90 {p90_before:.1f} -> "
        f"{p90_burst:.1f} -> {p90_after:.1f} ms; mean batch "
        f"{batch_before:.1f} -> {batch_burst:.1f}"
    )
    assert p90_burst > p90_before * 1.3, "the burst must be visible"
    assert p90_after < p90_burst, "latency recovers after the burst"
    assert batch_burst > batch_before, "batching absorbs the spike"
    assert collector.errors == 0


def test_ablation_jit_passes(benchmark):
    """Per-pass contribution to launch-count reduction (CPU, C=1e5)."""
    from repro.models import ModelConfig, create_model

    def measure():
        model = create_model("sasrec", ModelConfig.for_catalog(100_000))
        inputs = model.example_inputs()
        contributions = {}
        graph = jit_trace(model, inputs)
        baseline = graph.launch_count()
        contributions["eager"] = baseline
        for label, passes in (
            ("+dropout-elim", [eliminate_dropout]),
            ("+dead-op-elim", [eliminate_dead_ops]),
            ("+const-fold", [fold_constants, eliminate_dead_ops]),
            ("+linear-act-fuse", [fuse_linear_activation]),
            ("+elementwise-fuse", [fuse_elementwise]),
        ):
            for optimization in passes:
                optimization(graph)
            contributions[label] = graph.launch_count()
        # The fully optimized graph must still compute the same answer.
        scripted = ScriptedModule(model, graph, OptimizationReport())
        items, length = inputs
        from repro.tensor.tensor import Tensor

        expected = model(Tensor(items), Tensor(length)).numpy()
        np.testing.assert_array_equal(scripted(items, length).numpy(), expected)
        return contributions

    contributions = run_once(benchmark, measure)
    print()
    print(f"{'pipeline stage':<20} {'kernel launches':>16}")
    for label, launches in contributions.items():
        print(f"{label:<20} {launches:>16d}")
    values = list(contributions.values())
    assert values[-1] < values[0], "the pipeline reduces launches overall"
    assert all(b <= a for a, b in zip(values, values[1:])), "no pass regresses"
