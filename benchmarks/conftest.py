"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the rows/series the paper reports (run with ``-s`` to see them). By default
the load-test durations are scaled down from the paper's ten minutes —
virtual time is free but event processing is not; the *shape* conclusions
are duration-invariant (see EXPERIMENTS.md). Set ``ETUDE_BENCH_FULL=1`` for
paper-scale durations and the three-repetition protocol, or
``ETUDE_BENCH_SMOKE=1`` (``make bench-smoke``) for a tiny configuration
that only proves each artifact still regenerates and its shape assertions
still hold.
"""

import os

import pytest

FULL = os.environ.get("ETUDE_BENCH_FULL", "0") == "1"
SMOKE = os.environ.get("ETUDE_BENCH_SMOKE", "0") == "1" and not FULL

#: Load-test duration (paper: 600 s).
DURATION_S = 600.0 if FULL else (30.0 if SMOKE else 90.0)
#: Repetitions per configuration (paper: 3, dropping best and worst).
REPETITIONS = 3 if FULL else 1
#: Serial requests per microbenchmark point.
MICRO_REQUESTS = 300 if FULL else (40 if SMOKE else 120)
#: Clicks per workload-generator throughput measurement.
WORKLOAD_CLICKS = 500_000 if not SMOKE else 50_000


@pytest.fixture(scope="session")
def experiment_runner():
    from repro.core import ExperimentRunner

    return ExperimentRunner(seed=20240704)


def run_once(benchmark, fn):
    """Time one full regeneration of an artifact (no repetition rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
