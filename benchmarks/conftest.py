"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the rows/series the paper reports (run with ``-s`` to see them). By default
the load-test durations are scaled down from the paper's ten minutes —
virtual time is free but event processing is not; the *shape* conclusions
are duration-invariant (see EXPERIMENTS.md). Set ``ETUDE_BENCH_FULL=1`` for
paper-scale durations and the three-repetition protocol, or
``ETUDE_BENCH_SMOKE=1`` (``make bench-smoke``) for a tiny configuration
that only proves each artifact still regenerates and its shape assertions
still hold.
"""

import os

import pytest

FULL = os.environ.get("ETUDE_BENCH_FULL", "0") == "1"
SMOKE = os.environ.get("ETUDE_BENCH_SMOKE", "0") == "1" and not FULL

#: Load-test duration (paper: 600 s).
DURATION_S = 600.0 if FULL else (30.0 if SMOKE else 90.0)
#: Repetitions per configuration (paper: 3, dropping best and worst).
REPETITIONS = 3 if FULL else 1
#: Serial requests per microbenchmark point.
MICRO_REQUESTS = 300 if FULL else (40 if SMOKE else 120)
#: Clicks per workload-generator throughput measurement.
WORKLOAD_CLICKS = 500_000 if not SMOKE else 50_000


@pytest.fixture(scope="session")
def experiment_runner():
    from repro.core import ExperimentRunner

    return ExperimentRunner(seed=20240704)


def run_once(benchmark, fn):
    """Time one full regeneration of an artifact (no repetition rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def grid_backend(spec=None):
    """The execution backend benchmark grids fan out on.

    Defaults to the ``ETUDE_BACKEND`` env var, then serial — so
    ``ETUDE_BACKEND=mp make bench`` parallelizes every wired grid while
    the artifacts stay bit-identical (docs/parallelism.md).
    """
    from repro.exec import make_backend

    return make_backend(spec)


def run_grid(runner, cells, repetitions=1, backend=None):
    """Run independent keyed ExperimentSpecs on the execution backend.

    ``cells`` is an iterable of ``(key, spec)``; returns ``{key: value}``
    merged in submission order, where a value is a RunResult or — for a
    cell that cannot deploy — a DeploymentError instance, mirroring what
    a serial try/except around ``runner.run_repeated`` would have kept.
    """
    from repro.cluster.kubernetes import DeploymentError
    from repro.exec import ExecTask, make_backend

    backend = make_backend(backend)
    tasks = [
        ExecTask(
            key=key,
            kind="experiment_run",
            payload={
                "spec": spec,
                "seed": runner.seed,
                "repetitions": repetitions,
            },
        )
        for key, spec in cells
    ]
    context = None if backend.config.parallel else runner
    results = {}
    for outcome in backend.run_tasks(tasks, context=context):
        if outcome.memos:
            runner.registry.absorb_memos(outcome.memos)
        value = outcome.value
        if isinstance(value, dict) and "deployment_error" in value:
            value = DeploymentError(value["deployment_error"])
        results[outcome.key] = value
    return results
