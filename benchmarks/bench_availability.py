"""AVAIL — the cost of surviving a zone outage, as a planner dimension.

Runs the Table I planner over the paper's hardest scenario (Platform,
20M items, 1,000 req/s) twice: once unconstrained (the paper's
single-failure-domain planning) and once with ``survive_zones=1`` — every
admitted option must pass a scripted failure drill with one of its two
zones permanently dark (200s keep flowing, full catalog coverage, p90
under the SLO). The pair is the cost-of-availability frontier. Findings
to reproduce:

(i)   the unconstrained winner is not drill-verified: it was planned
      with no zone requirement and carries no availability replicas;
(ii)  a zone-outage-surviving plan exists in the same search space —
      availability is purchasable with replicas, not a redesign;
(iii) it costs strictly more than the unconstrained winner (the premium
      is the frontier gap the report's ``^`` legend points at), and each
      of its shards keeps at least one replica per zone
      (``replicas >= 2``).

Wall-clock for the full regeneration is recorded in
``BENCH_availability.json`` (skipped in ``ETUDE_BENCH_SMOKE=1`` runs,
which shrink the load tests).
"""

import json
import time
from pathlib import Path

from conftest import DURATION_S, REPETITIONS, SMOKE, experiment_runner, run_once

from repro.core import DeploymentPlanner
from repro.core.spec import Scenario
from repro.hardware import GPU_A100, GPU_T4

SCENARIO = Scenario("Platform", 20_000_000, 1_000)
MODEL = "gru4rec"
#: Sharding stays in the search space: Platform is T4-infeasible flat, so
#: the interesting frontier is sharded T4s vs A100s on both sides.
SHARD_COUNTS = (1, 4)
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_availability.json"


def _describe(option):
    suffix = "^" if option.survives_zones else ""
    return (
        f"{option.instance_type} S={option.shards} x{option.replicas}/shard"
        f"{suffix} = {option.total_machines} machines "
        f"${option.monthly_cost_usd:,.0f}/month"
    )


def test_cost_of_availability(benchmark, experiment_runner):
    def make_planner(survive_zones):
        return DeploymentPlanner(
            runner=experiment_runner,
            duration_s=DURATION_S,
            max_replicas=8,
            repetitions=REPETITIONS,
            shard_counts=SHARD_COUNTS,
            survive_zones=survive_zones,
        )

    started = time.perf_counter()

    def plan_frontier():
        return {
            "unconstrained": make_planner(0).plan(
                SCENARIO, [MODEL], instances=[GPU_T4, GPU_A100]
            )[MODEL],
            "survive_1": make_planner(1).plan(
                SCENARIO, [MODEL], instances=[GPU_T4, GPU_A100]
            )[MODEL],
        }

    plans = run_once(benchmark, plan_frontier)
    wall_clock_s = time.perf_counter() - started

    print()
    print(
        f"--- {SCENARIO.name} (C={SCENARIO.catalog_size:,}, "
        f"{SCENARIO.target_rps} req/s, {MODEL})"
    )
    for label, plan in plans.items():
        print(f"  [{label}]")
        for option in sorted(plan.options, key=lambda o: o.monthly_cost_usd):
            print(f"    {_describe(option)}")
        for key, reason in plan.infeasible.items():
            print(f"    {key}: {reason}")

    baseline = plans["unconstrained"].cheapest()
    zoned = plans["survive_1"].cheapest()
    assert baseline is not None and zoned is not None

    # (i) The paper's planning answers a different question: its winner
    # was never drilled and buys no availability.
    assert baseline.survives_zones is None

    # (ii) The same hardware menu contains a drill-verified plan.
    assert zoned.survives_zones == 1
    for option in plans["survive_1"].options:
        assert option.survives_zones == 1
        assert option.replicas >= 2  # one replica per zone, per shard

    # (iii) Availability costs real money — the frontier gap is strict.
    assert zoned.monthly_cost_usd > baseline.monthly_cost_usd
    premium = zoned.monthly_cost_usd - baseline.monthly_cost_usd

    print(
        f"  frontier: ${baseline.monthly_cost_usd:,.0f} unconstrained -> "
        f"${zoned.monthly_cost_usd:,.0f} zone-surviving "
        f"(premium ${premium:,.0f}/month)"
    )

    benchmark.extra_info["baseline_cost_usd"] = round(baseline.monthly_cost_usd)
    benchmark.extra_info["zoned_cost_usd"] = round(zoned.monthly_cost_usd)
    benchmark.extra_info["premium_usd"] = round(premium)

    if not SMOKE:
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "availability",
                    "scenario": {
                        "name": SCENARIO.name,
                        "catalog_size": SCENARIO.catalog_size,
                        "target_rps": SCENARIO.target_rps,
                    },
                    "model": MODEL,
                    "duration_s": DURATION_S,
                    "repetitions": REPETITIONS,
                    "shard_counts": list(SHARD_COUNTS),
                    "frontier": {
                        label: {
                            "options": [
                                {
                                    "instance_type": o.instance_type,
                                    "shards": o.shards,
                                    "replicas": o.replicas,
                                    "total_machines": o.total_machines,
                                    "monthly_cost_usd": round(
                                        o.monthly_cost_usd, 2
                                    ),
                                    "survives_zones": o.survives_zones,
                                }
                                for o in sorted(
                                    plan.options,
                                    key=lambda o: o.monthly_cost_usd,
                                )
                            ],
                            "infeasible": dict(plan.infeasible),
                        }
                        for label, plan in plans.items()
                    },
                    "winner": {
                        "unconstrained": _describe(baseline),
                        "survive_1": _describe(zoned),
                        "premium_usd_per_month": round(premium, 2),
                    },
                    "wall_clock_s": round(wall_clock_s, 2),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {RESULTS_PATH.name} (wall clock {wall_clock_s:.1f} s)")
