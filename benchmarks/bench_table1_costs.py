"""TAB1 — cost-efficient deployment options (paper Table I).

Runs the deployment planner over the five scenarios and the six healthy
models, printing the Table I layout. Paper findings to reproduce:

(i)   both grocery scenarios run on a single $108/month CPU machine;
(ii)  Fashion (1M items) runs on a single GPU-T4 ($268) for all models, and
      the leanest models are also deployable on 3 CPU machines ($324);
(iii) e-Commerce (10M) needs GPUs — five T4s ($1,340) beat two A100s
      ($4,018) on cost; Platform (20M) needs three A100s ($6,026) and is
      infeasible on T4s.
"""

from conftest import DURATION_S, REPETITIONS, experiment_runner, grid_backend, run_once

from repro.core import DeploymentPlanner, SCENARIOS
from repro.core.report import render_scenario_table
from repro.hardware import CPU_E2, GPU_A100, GPU_T4
from repro.models import HEALTHY_MODELS


def test_table1(benchmark, experiment_runner):
    # Candidate evaluations fan out on the execution backend (serial by
    # default; ETUDE_BACKEND=mp parallelizes with a bit-identical table).
    planner = DeploymentPlanner(
        runner=experiment_runner,
        duration_s=DURATION_S,
        max_replicas=8,
        repetitions=REPETITIONS,
        backend=grid_backend(),
    )

    def plan_all():
        return {
            scenario.name: planner.plan(scenario, HEALTHY_MODELS)
            for scenario in SCENARIOS
        }

    plans = run_once(benchmark, plan_all)

    print()
    print(render_scenario_table(plans, HEALTHY_MODELS))

    def option(scenario, model, instance_name):
        for candidate in plans[scenario][model].options:
            if candidate.instance_type == instance_name:
                return candidate
        return None

    # (i) groceries on one CPU machine, for every model.
    for scenario in ("Groceries (small)", "Groceries (large)"):
        for model in HEALTHY_MODELS:
            cpu = option(scenario, model, "CPU")
            assert cpu is not None and cpu.replicas == 1, (scenario, model)
        cheapest = min(
            plans[scenario][m].cheapest().monthly_cost_usd for m in HEALTHY_MODELS
        )
        assert round(cheapest) == 108

    # (ii) Fashion: one T4 for every model; lean models also on CPUs.
    for model in HEALTHY_MODELS:
        t4 = option("Fashion", model, "GPU-T4")
        assert t4 is not None and t4.replicas == 1, model
    for model in ("sasrec", "stamp"):
        cpu = option("Fashion", model, "CPU")
        assert cpu is not None and cpu.replicas <= 3, model
    # CORE cannot handle Fashion with the listed $324 3-CPU option (the
    # paper's empty cell); the planner may still find a larger CPU fleet.
    core_cpu = option("Fashion", "core", "CPU")
    assert core_cpu is None or core_cpu.replicas > 3

    # (iii) e-Commerce: five T4s cheaper than two A100s; Platform A100-only.
    ecommerce_t4 = option("e-Commerce", "gru4rec", "GPU-T4")
    ecommerce_a100 = option("e-Commerce", "gru4rec", "GPU-A100")
    assert ecommerce_t4 is not None and ecommerce_t4.replicas == 5
    assert ecommerce_a100 is not None and ecommerce_a100.replicas == 2
    assert ecommerce_t4.monthly_cost_usd < ecommerce_a100.monthly_cost_usd
    assert option("e-Commerce", "gru4rec", "CPU") is None

    platform = plans["Platform"]["gru4rec"]
    assert option("Platform", "gru4rec", "GPU-T4") is None
    a100 = option("Platform", "gru4rec", "GPU-A100")
    assert a100 is not None and a100.replicas == 3
    assert round(a100.monthly_cost_usd) == 6026

    benchmark.extra_info["scenarios"] = len(SCENARIOS)
    benchmark.extra_info["models"] = len(HEALTHY_MODELS)
