"""FIG4 — end-to-end latency/throughput per scenario and instance type.

For each Table I scenario the paper plots observed latency against offered
throughput for the (JIT) models on different instance types; the figure's
qualitative content is which deployments track the ramp with a flat latency
profile and which diverge. This bench regenerates those per-second series
for a representative deployment per (scenario, instance type).
"""

from conftest import DURATION_S, REPETITIONS, experiment_runner, run_grid, run_once

from repro.core import ExperimentSpec, HardwareSpec
from repro.core.report import render_latency_series
from repro.models import HEALTHY_MODELS

# (scenario name, catalog, target rps, [(instance, replicas)...])
FIG4_PANELS = (
    ("Groceries (small)", 10_000, 100, (("CPU", 1),)),
    ("Fashion", 1_000_000, 500, (("CPU", 3), ("GPU-T4", 1))),
    ("e-Commerce", 10_000_000, 1_000, (("GPU-T4", 5), ("GPU-A100", 2))),
    ("Platform", 20_000_000, 1_000, (("GPU-T4", 5), ("GPU-A100", 3))),
)


def test_fig4_series(benchmark, experiment_runner):
    # Every panel cell is an independent deployment — exactly the grid
    # shape the execution backend fans out (serial by default; set
    # ETUDE_BACKEND=mp to parallelize with bit-identical series).
    cells = [
        (
            (scenario, instance, replicas, model),
            ExperimentSpec(
                model=model,
                catalog_size=catalog,
                target_rps=rps,
                hardware=HardwareSpec(instance, replicas),
                duration_s=DURATION_S,
            ),
        )
        for scenario, catalog, rps, deployments in FIG4_PANELS
        for instance, replicas in deployments
        for model in HEALTHY_MODELS
    ]

    def sweep():
        return run_grid(
            experiment_runner, cells, repetitions=REPETITIONS
        )

    outcomes = run_once(benchmark, sweep)

    print()
    for scenario, catalog, rps, deployments in FIG4_PANELS:
        for instance, replicas in deployments:
            print(f"=== FIG4 {scenario} | {instance} x{replicas} @ {rps} req/s")
            for model in HEALTHY_MODELS:
                result = outcomes[(scenario, instance, replicas, model)]
                if not hasattr(result, "p90_at_target_ms"):
                    print(f"  {model:8s}  infeasible ({result})")
                    continue
                p90 = result.p90_at_target_ms
                print(
                    f"  {model:8s}  p90@target="
                    f"{p90:7.1f} ms  errors={result.error_requests:5d}  "
                    f"ok={'yes' if result.meets_slo(50) else 'NO'}"
                )
            # One representative per-second series per panel.
            sample = outcomes[(scenario, instance, replicas, "gru4rec")]
            if hasattr(sample, "series") and sample.series is not None:
                print(
                    render_latency_series(
                        sample.series,
                        f"{scenario} gru4rec on {instance} x{replicas}",
                        every=max(int(DURATION_S // 9), 1),
                    )
                )

    # Shape assertions mirroring the paper's discussion of Figure 4.
    fashion_t4 = outcomes[("Fashion", "GPU-T4", 1, "gru4rec")]
    assert fashion_t4.meets_slo(50), "one T4 handles the Fashion scenario"
    ecommerce_t4 = outcomes[("e-Commerce", "GPU-T4", 5, "gru4rec")]
    assert ecommerce_t4.meets_slo(50), "five T4s handle e-Commerce"
    platform_t4 = outcomes[("Platform", "GPU-T4", 5, "gru4rec")]
    assert not platform_t4.meets_slo(50), "T4s cannot handle Platform"
    platform_a100 = outcomes[("Platform", "GPU-A100", 3, "gru4rec")]
    assert platform_a100.meets_slo(50), "three A100s handle Platform"
