"""VAL-SYN — synthetic vs. real click-log replay (paper Section III-A).

"We also run a validation experiment for the synthetic click generation,
where we compare the latency measurements achieved by replaying a real
click log from bol.com to the measurements achieved when using a synthetic
workload generated based on statistics from the real click log. We find
that the achieved latencies resemble each other closely."

The proprietary log is replaced by the rich generative surrogate in
:mod:`repro.workload.clicklog`; its marginals are fitted, Algorithm 1
regenerates a synthetic log, and both are replayed against the same
deployment.
"""

import itertools

import numpy as np
import pytest
from conftest import DURATION_S, run_once

from repro.cluster.service import ClusterIPService
from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.hardware import CPU_E2
from repro.loadgen.generator import LoadGenerator
from repro.metrics.collector import MetricsCollector
from repro.workload import (
    SyntheticWorkloadGenerator,
    WorkloadStatistics,
    synthesize_real_clicklog,
)

CATALOG = 100_000
TARGET_RPS = 200


def _replay(runner, session_source):
    """Deploy gru4rec on one CPU and replay the given session stream."""
    assets = runner.registry.assets("gru4rec", CATALOG, CPU_E2.device, "jit")
    artifact = runner._ensure_artifact(assets)
    runner.infra.reset_simulator()
    simulator = runner.infra.simulator
    deployment = runner.infra.cluster.deploy_model(
        name="valsyn",
        instance_type=CPU_E2,
        replicas=1,
        artifact_path=artifact,
        service_profile=assets.profile,
        resident_bytes=assets.resident_bytes,
        score_bytes_per_item=assets.score_bytes_per_item,
    )
    collector = MetricsCollector()

    def coordinator():
        yield deployment.ready_signal
        service = ClusterIPService(
            simulator, deployment, np.random.default_rng(3)
        )
        LoadGenerator(
            simulator,
            service.submit,
            session_source,
            target_rps=TARGET_RPS,
            duration_s=DURATION_S,
            collector=collector,
        ).start()

    simulator.spawn(coordinator())
    simulator.run()
    return collector


def test_valsyn_latencies_resemble(benchmark):
    def run_both():
        runner = ExperimentRunner(seed=424242)
        real_log = synthesize_real_clicklog(CATALOG, 50_000, seed=31)
        fitted = WorkloadStatistics.from_clicklog(real_log, CATALOG)
        synthetic = SyntheticWorkloadGenerator(fitted, seed=17)
        synthetic_log = SyntheticWorkloadGenerator(fitted, seed=18).generate_clicks(
            50_000
        )
        from repro.workload import validate_synthetic

        stats_report = validate_synthetic(real_log, synthetic_log, CATALOG)
        real_collector = _replay(runner, itertools.cycle(real_log.sessions()))
        synthetic_collector = _replay(runner, synthetic.iter_sessions())
        return fitted, stats_report, real_collector, synthetic_collector

    fitted, stats_report, real, synthetic = run_once(benchmark, run_both)
    print()
    print(f"VAL-SYN marginals: {stats_report.summary()}")
    assert stats_report.session_length_ks < 0.2

    rows = []
    for q in (50, 90, 99):
        rows.append((q, real.percentile_ms(q), synthetic.percentile_ms(q)))
    print()
    print(f"VAL-SYN (fitted alpha_l={fitted.alpha_length:.2f}, "
          f"alpha_c={fitted.alpha_clicks:.2f})")
    print(f"{'pct':>4} {'real log (ms)':>14} {'synthetic (ms)':>15}")
    for q, real_ms, synthetic_ms in rows:
        print(f"{q:>4} {real_ms:>14.2f} {synthetic_ms:>15.2f}")

    # "The achieved latencies resemble each other closely."
    for q, real_ms, synthetic_ms in rows:
        assert synthetic_ms == pytest.approx(real_ms, rel=0.30), q
