"""SHARD — catalog sharding as a deployment-planner dimension.

Runs the Table I planner over the two large-catalog scenarios with the
shard count in the search space (``shard_counts=(1, 4)``) and checks that
scatter-gather serving changes the cost picture the way the latency model
predicts. Findings to reproduce:

(i)   e-Commerce (10M items): four T4s each scanning a 2.5M-item slice
      ($1,072) undercut the paper's five full-catalog T4s ($1,340) — the
      catalog scan dominates, so slicing it buys more than the fan-out
      legs and the merge cost take back;
(ii)  Platform (20M items): infeasible on T4s unsharded (Table I's empty
      cell), but S=4 brings the slice within a T4's budget — eight T4s
      ($2,145) beat the three A100s ($6,026) that were previously the
      only option;
(iii) the savings are honest: every sharded option's measured run fans
      out over real network legs and pays a non-zero merge cost, with
      full catalog coverage (no silent partial results).
"""

from conftest import DURATION_S, REPETITIONS, experiment_runner, run_once

from repro.core import DeploymentPlanner
from repro.core.spec import Scenario
from repro.hardware import GPU_A100, GPU_T4

SCENARIOS = (
    Scenario("e-Commerce", 10_000_000, 1_000),
    Scenario("Platform", 20_000_000, 1_000),
)
MODEL = "gru4rec"


def test_sharded_planning(benchmark, experiment_runner):
    planner = DeploymentPlanner(
        runner=experiment_runner,
        duration_s=DURATION_S,
        max_replicas=8,
        repetitions=REPETITIONS,
        shard_counts=(1, 4),
    )

    def plan_all():
        return {
            scenario.name: planner.plan(
                scenario, [MODEL], instances=[GPU_T4, GPU_A100]
            )[MODEL]
            for scenario in SCENARIOS
        }

    plans = run_once(benchmark, plan_all)

    print()
    for name, plan in plans.items():
        print(f"--- {name}")
        for option in sorted(plan.options, key=lambda o: o.monthly_cost_usd):
            print(
                f"  {option.instance_type:<10} S={option.shards} "
                f"x{option.replicas}/shard = {option.total_machines} machines "
                f"${option.monthly_cost_usd:,.0f}/month"
            )
        for key in plan.infeasible:
            print(f"  {key:<10} infeasible")

    def option(plan, instance_name, shards):
        for candidate in plan.options:
            if candidate.instance_type == instance_name and candidate.shards == shards:
                return candidate
        return None

    # (i) e-Commerce: sharded T4s strictly cheaper than the flat T4 fleet,
    # and the scenario's cheapest plan overall is a sharded one.
    ecommerce = plans["e-Commerce"]
    flat_t4 = option(ecommerce, "GPU-T4", 1)
    sharded_t4 = option(ecommerce, "GPU-T4", 4)
    assert flat_t4 is not None and flat_t4.replicas == 5
    assert sharded_t4 is not None
    assert sharded_t4.monthly_cost_usd < flat_t4.monthly_cost_usd
    unsharded_costs = [
        o.monthly_cost_usd for o in ecommerce.options if o.shards == 1
    ]
    cheapest = ecommerce.cheapest()
    assert cheapest.shards > 1
    assert cheapest.monthly_cost_usd <= min(unsharded_costs)

    # (ii) Platform: T4 infeasible at S=1, feasible and cheapest at S=4.
    platform = plans["Platform"]
    assert option(platform, "GPU-T4", 1) is None
    assert "GPU-T4" in platform.infeasible
    platform_t4 = option(platform, "GPU-T4", 4)
    platform_a100 = option(platform, "GPU-A100", 1)
    assert platform_t4 is not None and platform_a100 is not None
    assert platform_t4.monthly_cost_usd < platform_a100.monthly_cost_usd
    assert platform.cheapest() is platform_t4

    # (iii) Honest accounting: the winning options were *measured* with the
    # scatter-gather path — real fan-outs, a charged merge, full coverage.
    for winner in (sharded_t4, platform_t4):
        section = winner.result.sharding
        assert section is not None and section["shards"] == 4
        assert section["fanouts"] > 0
        assert section["merge_cost_s"] > 0.0
        assert section["mean_coverage"] == 1.0
        assert section["partial_responses"] == 0

    benchmark.extra_info["scenarios"] = len(SCENARIOS)
    benchmark.extra_info["cheapest_platform_usd"] = round(
        platform.cheapest().monthly_cost_usd
    )
