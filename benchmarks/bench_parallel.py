"""PAR — serial-vs-multiprocessing wall clock for a planner sweep.

Runs an identical >= 16-candidate deployment-plan sweep on the serial
backend and on multiprocessing pools (2 workers, then one per core),
asserting the plans are bit-identical before comparing wall clocks —
speed that changes the answer is worthless. The trajectory lands in
``BENCH_parallel.json`` so future PRs can see whether the parallel path
keeps paying for itself.

Interpretation notes:

- every sweep starts from a cold registry (fresh runner, fresh worker
  state), so serial and mp both pay full model tracing; nothing leaks
  between timed sweeps;
- on hosts with few cores, mp *loses* to serial — workers re-trace
  models the serial sweep traces once, and fork/pickle overhead is pure
  tax. The >= 2x speedup expectation only applies on >= 4 cores
  (docs/parallelism.md, "when mp loses").
"""

import json
import os
import time
from pathlib import Path

from conftest import REPETITIONS, SMOKE, run_once

from repro.core import DeploymentPlanner
from repro.core.experiment import ExperimentRunner
from repro.core.registry import AssetRegistry
from repro.core.spec import Scenario
from repro.hardware.instances import instance_by_name

SCENARIO = Scenario("parallel-sweep", 20_000, 60)
MODELS = ("gru4rec", "narm")
INSTANCES = ("CPU", "GPU-T4")
SHARD_COUNTS = (1, 2, 4, 8)  # 2 models x 2 instances x 4 = 16 candidates
DURATION_S = 15.0 if SMOKE else 45.0
SEED = 20240704
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _sweep(backend_spec):
    """One cold full sweep; returns (fingerprint, wall_s)."""
    planner = DeploymentPlanner(
        runner=ExperimentRunner(registry=AssetRegistry(), seed=SEED),
        duration_s=DURATION_S,
        max_replicas=4,
        repetitions=REPETITIONS,
        shard_counts=SHARD_COUNTS,
        backend=backend_spec,
    )
    instances = [instance_by_name(name) for name in INSTANCES]
    started = time.perf_counter()
    plans = planner.plan(SCENARIO, list(MODELS), instances=instances)
    wall_s = time.perf_counter() - started
    fingerprint = json.dumps(
        {
            model: {
                "options": [
                    (
                        option.instance_type,
                        option.replicas,
                        option.shards,
                        option.monthly_cost_usd,
                        option.result.p90_at_target_ms,
                        option.result.total_requests,
                        option.result.ok_requests,
                    )
                    for option in plan.options
                ],
                "infeasible": list(plan.infeasible.items()),
            }
            for model, plan in plans.items()
        },
        sort_keys=True,
    )
    return fingerprint, wall_s


def test_parallel_speedup(benchmark):
    cores = os.cpu_count() or 1
    candidates = len(MODELS) * len(INSTANCES) * len(SHARD_COUNTS)
    assert candidates >= 16

    timings = {}
    fingerprints = {}

    def all_sweeps():
        for spec in ("serial", "mp:workers=2", "mp"):
            fingerprints[spec], timings[spec] = _sweep(spec)
        return timings

    run_once(benchmark, all_sweeps)

    print()
    print(
        f"=== PAR {candidates} candidates, duration {DURATION_S:g} s, "
        f"{cores} host core(s)"
    )
    runs = []
    serial_s = timings["serial"]
    for spec, wall_s in timings.items():
        speedup = serial_s / wall_s if wall_s > 0 else float("inf")
        workers = (
            1 if spec == "serial" else (2 if spec == "mp:workers=2" else cores)
        )
        identical = fingerprints[spec] == fingerprints["serial"]
        runs.append(
            {
                "backend": spec,
                "workers": workers,
                "wall_s": round(wall_s, 3),
                "speedup_vs_serial": round(speedup, 3),
                "identical_to_serial": identical,
            }
        )
        print(
            f"  {spec:14s} workers={workers:<2d} wall={wall_s:7.2f} s  "
            f"speedup={speedup:5.2f}x  identical={identical}"
        )

    # Determinism is non-negotiable on every host; speed is conditional.
    for run in runs:
        assert run["identical_to_serial"], run["backend"]
    best_speedup = max(run["speedup_vs_serial"] for run in runs[1:])
    if cores >= 4:
        assert best_speedup >= 2.0, (
            f"expected >= 2x on a {cores}-core host, got {best_speedup:.2f}x"
        )

    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["host_cores"] = cores
    benchmark.extra_info["best_speedup"] = best_speedup

    if not SMOKE:
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "parallel",
                    "scenario": {
                        "name": SCENARIO.name,
                        "catalog_size": SCENARIO.catalog_size,
                        "target_rps": SCENARIO.target_rps,
                    },
                    "models": list(MODELS),
                    "instances": list(INSTANCES),
                    "shard_counts": list(SHARD_COUNTS),
                    "candidates": candidates,
                    "duration_s": DURATION_S,
                    "repetitions": REPETITIONS,
                    "host_cores": cores,
                    "runs": runs,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {RESULTS_PATH.name}")
