"""FIG2 — the serving-infrastructure test (paper Figure 2).

Ramp to 1,000 req/s with no model inference on a 2-vCPU machine.
Paper findings to reproduce:

- TorchServe "cannot keep up with the load and starts to return a large
  number of HTTP errors (due to reaching the internal timeout of 100ms)",
  handling survivors at a p90 between 100 and 200 ms;
- the Actix server "easily handles the load with a p90 latency of around
  one millisecond ... and does not throw any HTTP errors".
"""

from conftest import DURATION_S, run_once

from repro.core import run_infra_test
from repro.core.report import render_latency_series


def test_fig2_torchserve(benchmark):
    result = run_once(
        benchmark,
        lambda: run_infra_test("torchserve", target_rps=1000, duration_s=DURATION_S),
    )
    benchmark.extra_info["p90_ms"] = result.p90_ms
    benchmark.extra_info["error_rate"] = result.error_rate
    print()
    print(render_latency_series(result.series, "FIG2 TorchServe (no inference)"))
    print(
        f"TorchServe: errors={result.errors}/{result.total} "
        f"({result.error_rate * 100:.1f}%), p90={result.p90_ms:.1f} ms"
    )
    assert result.error_rate > 0.1, "TorchServe should shed load via timeouts"
    assert 50 < result.p90_ms < 300, "survivor p90 should sit near the timeout"


def test_fig2_actix(benchmark):
    result = run_once(
        benchmark,
        lambda: run_infra_test("actix", target_rps=1000, duration_s=DURATION_S),
    )
    benchmark.extra_info["p90_ms"] = result.p90_ms
    benchmark.extra_info["error_rate"] = result.error_rate
    print()
    print(render_latency_series(result.series, "FIG2 Actix/ETUDE (no inference)"))
    print(
        f"Actix: errors={result.errors}/{result.total}, p90={result.p90_ms:.2f} ms"
    )
    assert result.errors == 0, "the Actix server throws no HTTP errors"
    assert result.p90_ms < 3.0, "p90 around one millisecond"
