"""CACHE — session-prefix result caching: hit rate and latency wins.

The cache subsystem (``docs/caching.md``) answers repeated session-prefix
requests from memory instead of re-running the model. This benchmark maps
where that pays:

- hit rate and p90 delta versus click-skew (``alpha_c``): the heavier the
  popularity tail, the more prefixes repeat;
- versus the prefix window: shorter windows share more aggressively;
- versus the eviction policy under a constrained capacity;
- sustainable throughput: an overloaded server with the cache on keeps
  more of the offered load than the cache-off baseline;
- planning: the cache-aware planner finds a cheaper-or-equal feasible
  deployment for a Table-I-style scenario.

Every sweep carries the cache-off baseline measured under the identical
seed and workload.
"""

from conftest import DURATION_S, run_once

from repro.cache import CacheConfig
from repro.cache.planning import estimate_hit_rate
from repro.core import DeploymentPlanner, ExperimentRunner, ExperimentSpec, SLO
from repro.core.infra_test import run_infra_test
from repro.core.spec import HardwareSpec, Scenario
from repro.hardware import CPU_E2
from repro.workload.statistics import WorkloadStatistics

CATALOG = 5_000
RPS = 120
ALPHAS = (1.2, 1.5, 1.85)
WINDOWS = (2, 4, 8)
POLICIES = ("lru", "lfu", "segmented")


def _stats(alpha_c):
    return WorkloadStatistics(
        catalog_size=CATALOG, alpha_length=1.85, alpha_clicks=alpha_c
    )


def _run(runner, alpha_c, cache):
    return runner.run(
        ExperimentSpec(
            model="stamp",
            catalog_size=CATALOG,
            target_rps=RPS,
            hardware=HardwareSpec("CPU", 1),
            duration_s=DURATION_S,
            workload=_stats(alpha_c),
            cache=cache,
        )
    )


def test_cache_hit_rate_vs_skew(benchmark):
    """Hit rate and p90 as the click distribution sharpens."""
    runner = ExperimentRunner(seed=71)
    cache = CacheConfig(capacity=4096, window=2, ttl_s=0.0)

    def sweep():
        rows = []
        for alpha_c in ALPHAS:
            off = _run(runner, alpha_c, None)
            on = _run(runner, alpha_c, cache)
            rows.append(
                {
                    "alpha_c": alpha_c,
                    "hit_rate": on.cache["hit_rate"],
                    "p90_off": off.p90_ms,
                    "p90_on": on.p90_ms,
                    "p90_hit": on.cache["p90_hit_ms"],
                    "p90_miss": on.cache["p90_miss_ms"],
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"CACHE hit rate vs skew (C={CATALOG:,}, {RPS} rps, window=2)")
    print(f"{'alpha_c':>8} {'hit%':>6} {'p90 off':>9} {'p90 on':>8} "
          f"{'p90 hit':>8} {'p90 miss':>9}")
    for row in rows:
        print(
            f"{row['alpha_c']:>8.2f} {row['hit_rate'] * 100:>5.1f}% "
            f"{row['p90_off']:>7.2f}ms {row['p90_on']:>6.2f}ms "
            f"{row['p90_hit']:>6.2f}ms {row['p90_miss']:>7.2f}ms"
        )
    hit_rates = [row["hit_rate"] for row in rows]
    assert all(a <= b for a, b in zip(hit_rates, hit_rates[1:])), (
        "hit rate should grow with click skew"
    )
    peak = rows[-1]  # the high-skew point: the measurable-win claim
    assert peak["hit_rate"] > 0.3
    assert peak["p90_hit"] < peak["p90_miss"]
    assert peak["p90_on"] <= peak["p90_off"]
    benchmark.extra_info["peak_hit_rate"] = peak["hit_rate"]


def test_cache_hit_rate_vs_window(benchmark):
    """Longer prefix windows match more strictly and hit less."""
    runner = ExperimentRunner(seed=72)

    def sweep():
        rows = []
        for window in WINDOWS:
            cache = CacheConfig(capacity=4096, window=window, ttl_s=0.0)
            on = _run(runner, 1.85, cache)
            rows.append({"window": window, "hit_rate": on.cache["hit_rate"]})
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"CACHE hit rate vs prefix window (alpha_c=1.85)")
    for row in rows:
        print(f"  window={row['window']}: {row['hit_rate'] * 100:.1f}% hits")
    rates = [row["hit_rate"] for row in rows]
    assert all(a >= b for a, b in zip(rates, rates[1:])), (
        "hit rate should not grow with a stricter (longer) window"
    )


def test_cache_policy_comparison(benchmark):
    """Eviction families under a capacity squeeze (replay estimator +
    one verifying run for the winner)."""

    def sweep():
        statistics = _stats(1.85)
        rows = []
        for policy in POLICIES:
            cache = CacheConfig(
                capacity=256, policy=policy, window=2, ttl_s=0.0
            )
            rows.append(
                {
                    "policy": policy,
                    "hit_rate": estimate_hit_rate(
                        statistics, cache, target_rps=RPS
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("CACHE eviction policies at capacity=256 (replay estimate)")
    for row in rows:
        print(f"  {row['policy']:<10} {row['hit_rate'] * 100:.1f}% hits")
    assert all(row["hit_rate"] > 0.05 for row in rows)


def test_cache_sustainable_throughput(benchmark):
    """Past the no-cache capacity, hits absorbed in the HTTP layer keep
    the server standing where the baseline collapses."""
    overload_rps = 6_000  # ~3x the 2-vCPU Figure 2 server's capacity

    def measure():
        off = run_infra_test(
            "actix", target_rps=overload_rps, duration_s=DURATION_S / 2, seed=7
        )
        on = run_infra_test(
            "actix", target_rps=overload_rps, duration_s=DURATION_S / 2, seed=7,
            cache=CacheConfig(capacity=65536, window=2, ttl_s=0.0),
        )
        return off, on

    off, on = run_once(benchmark, measure)
    print()
    print(f"CACHE sustainable throughput at {overload_rps} rps offered")
    print(f"  cache-off: p90={off.p90_ms:>8.1f} ms  ok={off.ok}")
    print(f"  cache-on:  p90={on.p90_ms:>8.1f} ms  ok={on.ok} "
          f"({on.cache['hit_rate'] * 100:.1f}% hits, "
          f"{on.cache['coalesced']} coalesced)")
    assert on.cache["hit_rate"] > 0.2
    assert on.p90_ms < off.p90_ms
    assert on.ok >= off.ok
    benchmark.extra_info["p90_off_ms"] = off.p90_ms
    benchmark.extra_info["p90_on_ms"] = on.p90_ms


def test_cache_aware_planning(benchmark):
    """Table-I-style planning: the cache-aware planner's verified plan for
    Fashion-on-CPU costs no more than the cache-less plan."""
    scenario = Scenario("Fashion", 1_000_000, 500)
    # Floor at 20 s: the TIMEPROP ramp only offers the target rate in its
    # final ticks, and the smoke-mode 15 s run leaves a single at-target
    # window whose presence flips with provisioning jitter at this seed.
    plan_duration_s = max(DURATION_S / 2, 20.0)

    def plan_both():
        plain = DeploymentPlanner(
            runner=ExperimentRunner(seed=73),
            slo=SLO(p90_latency_ms=50.0),
            duration_s=plan_duration_s,
            max_replicas=6,
        )
        cached = DeploymentPlanner(
            runner=ExperimentRunner(seed=73),
            slo=SLO(p90_latency_ms=50.0),
            duration_s=plan_duration_s,
            max_replicas=6,
            cache=CacheConfig(capacity=65536, window=2, ttl_s=0.0),
        )
        return (
            plain.min_feasible_replicas("stamp", scenario, CPU_E2),
            cached.min_feasible_replicas("stamp", scenario, CPU_E2),
            cached.expected_hit_rate(scenario),
        )

    plain_option, cached_option, hit_rate = run_once(benchmark, plan_both)
    print()
    print(f"CACHE-aware planning, {scenario.name} on CPU "
          f"(expected hit rate {hit_rate * 100:.1f}%)")
    print(f"  plain:  x{plain_option.replicas} "
          f"${plain_option.monthly_cost_usd:,.0f}/month")
    print(f"  cached: x{cached_option.replicas} "
          f"${cached_option.monthly_cost_usd:,.0f}/month")
    assert plain_option is not None and cached_option is not None
    assert hit_rate > 0.0
    assert cached_option.monthly_cost_usd <= plain_option.monthly_cost_usd
    benchmark.extra_info["plain_cost"] = plain_option.monthly_cost_usd
    benchmark.extra_info["cached_cost"] = cached_option.monthly_cost_usd
