"""FIG3 — single-machine microbenchmark (paper Figure 3).

Serial requests, p90 prediction latency, for all ten models across catalog
sizes 1e4..1e7, CPU vs GPU-T4, eager vs JIT. Paper findings to reproduce:

- latency scales linearly with the catalog size;
- from one million items the GPU is more than an order of magnitude
  faster (and the CPU needs >50 ms for the heavier implementations);
- at ten thousand items the CPU is on par with or lower than the GPU in
  six out of ten cases;
- JIT optimization always helps and never hurts;
- LightSANs cannot be JIT-optimized (dynamic code paths).
"""

from conftest import MICRO_REQUESTS, run_once

from repro.core import serial_microbenchmark
from repro.core.report import render_microbench_table
from repro.hardware import CPU_E2, GPU_T4
from repro.models import BENCHMARK_MODELS

CATALOG_SIZES = (10_000, 100_000, 1_000_000, 10_000_000)
MODELS = tuple(m for m in BENCHMARK_MODELS)


def _sweep():
    results = []
    for model in MODELS:
        for instance in (CPU_E2, GPU_T4):
            for mode in ("eager", "jit"):
                for catalog_size in CATALOG_SIZES:
                    results.append(
                        serial_microbenchmark(
                            model,
                            catalog_size,
                            instance,
                            mode,
                            num_requests=MICRO_REQUESTS,
                        )
                    )
    return results


def test_fig3_microbenchmark(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print(render_microbench_table(results, CATALOG_SIZES))

    by_key = {
        (r.model, r.instance_type, r.execution_requested, r.catalog_size): r
        for r in results
    }

    # Linear scaling in C (checked on the two largest decades, CPU, jit).
    for model in ("gru4rec", "sasrec", "stamp"):
        mid = by_key[(model, "CPU", "jit", 1_000_000)].p90_ms
        big = by_key[(model, "CPU", "jit", 10_000_000)].p90_ms
        assert 5.0 < big / mid < 25.0, (model, mid, big)

    # GPU more than an order of magnitude faster at >= 1e6.
    gpu_speedups = []
    for model in ("gru4rec", "narm", "stamp", "sasrec", "sine"):
        cpu = by_key[(model, "CPU", "jit", 1_000_000)].p90_ms
        gpu = by_key[(model, "GPU-T4", "jit", 1_000_000)].p90_ms
        gpu_speedups.append(cpu / gpu)
    assert min(gpu_speedups) > 10.0

    # CPU on par or lower at 1e4 in roughly six of ten cases.
    cpu_lower = sum(
        1
        for model in MODELS
        if by_key[(model, "CPU", "jit", 10_000)].p90_ms
        <= by_key[(model, "GPU-T4", "jit", 10_000)].p90_ms
    )
    print(f"CPU on par/lower at C=1e4: {cpu_lower}/10 models (paper: 6/10)")
    assert 4 <= cpu_lower <= 8

    # JIT always helps (or at worst is a wash), never hurts.
    regressions = []
    for model in MODELS:
        for instance in ("CPU", "GPU-T4"):
            for catalog_size in CATALOG_SIZES:
                eager = by_key[(model, instance, "eager", catalog_size)].p90_ms
                jit = by_key[(model, instance, "jit", catalog_size)].p90_ms
                if jit > eager * 1.05:
                    regressions.append((model, instance, catalog_size))
    assert not regressions, f"JIT should never hurt: {regressions}"

    # LightSANs falls back to eager.
    lightsans = by_key[("lightsans", "CPU", "jit", 10_000)]
    assert lightsans.jit_failed and lightsans.execution_effective == "eager"

    benchmark.extra_info["configurations"] = len(results)
