"""TENANCY — what co-locating a model fleet saves, as a planner answer.

Runs the bin-packing fleet planner over a three-tenant fleet (two
models, skewed traffic weights, per-tenant SLOs) and prices the
alternative the paper's Table I planning would give: one isolated
deployment per tenant, each at the same SLO and its entitled share of
the traffic. Findings to reproduce:

(i)   a co-located deployment exists in which *every* tenant meets its
      own p90 contract under its own traffic share (the per-tenant rows
      in ``RunResult.tenancy`` are the evidence, not the blended p90);
(ii)  at identical per-tenant SLOs, the co-located fleet costs no more
      than the sum of the standalone per-tenant winners — bin-packing
      can only exploit the capacity the per-tenant ceil() rounding
      strands (``savings_usd >= 0``);
(iii) the winning option carries the fleet spec (``option.tenants``),
      so the Table I report can label co-located rows.

Wall-clock for the full regeneration is recorded in
``BENCH_tenancy.json`` (skipped in ``ETUDE_BENCH_SMOKE=1`` runs, which
shrink the load tests).
"""

import json
import time
from pathlib import Path

from conftest import DURATION_S, SMOKE, experiment_runner, run_once

from repro.core.spec import SLO
from repro.hardware import CPU_E2, GPU_T4
from repro.tenancy import TenancyConfig
from repro.tenancy.placement import FleetPlanner

#: Two models, 3:1:1 weights, per-tenant contracts. SLOs are loose
#: enough for CPU serving at this catalog so the frontier compares
#: replica *counts*, not device classes.
FLEET = "home=gru4rec:3,slo=120;search=narm:1,slo=200;related=gru4rec:1,slo=200"
CATALOG_SIZE = 100_000
TARGET_RPS = 90
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_tenancy.json"


def _describe(option):
    return (
        f"{option.instance_type} x{option.replicas} "
        f"${option.monthly_cost_usd:,.0f}/month"
    )


def test_colocation_savings(benchmark, experiment_runner):
    tenancy = TenancyConfig.parse(FLEET)
    planner = FleetPlanner(
        runner=experiment_runner,
        slo=SLO(),
        duration_s=DURATION_S,
        max_replicas=6,
    )

    started = time.perf_counter()
    plan = run_once(
        benchmark,
        lambda: planner.plan(
            tenancy, CATALOG_SIZE, TARGET_RPS, instances=[CPU_E2, GPU_T4]
        ),
    )
    wall_clock_s = time.perf_counter() - started

    print()
    print(
        f"--- {tenancy.describe()} (C={CATALOG_SIZE:,}, "
        f"{TARGET_RPS} req/s)"
    )
    for option in sorted(plan.options, key=lambda o: o.monthly_cost_usd):
        rows = (option.result.tenancy or {}).get("tenants", {})
        p90s = ", ".join(
            f"{name}={row['p90_ms']:.1f}ms" for name, row in rows.items()
        )
        print(f"  co-located {_describe(option)} ({p90s})")
    for name, reason in plan.infeasible.items():
        print(f"  {name}: infeasible ({reason})")

    winner = plan.cheapest()
    assert winner is not None, "no feasible co-located fleet"

    # (i) Every tenant's own contract holds on the winning option.
    rows = winner.result.tenancy["tenants"]
    for tenant in tenancy.primaries:
        row = rows[tenant.name]
        assert row["p90_ms"] is not None
        assert row["p90_ms"] <= tenant.slo_ms
        assert row["slo_met"] is True

    # (iii) The option is labeled as a fleet deployment.
    assert winner.tenants == tenancy.spec_string()

    # (ii) Cheaper-or-equal than isolated per-tenant deployments at the
    # same SLOs.
    for name, option in plan.standalone.items():
        label = _describe(option) if option is not None else "infeasible"
        print(f"  standalone {name}: {label}")
    total = plan.standalone_total_usd
    assert total is not None, "a tenant had no standalone baseline"
    assert winner.monthly_cost_usd <= total
    savings = plan.savings_usd
    print(
        f"  frontier: ${total:,.0f} isolated -> "
        f"${winner.monthly_cost_usd:,.0f} co-located "
        f"(saves ${savings:,.0f}/month)"
    )

    benchmark.extra_info["colocated_cost_usd"] = round(winner.monthly_cost_usd)
    benchmark.extra_info["standalone_cost_usd"] = round(total)
    benchmark.extra_info["savings_usd"] = round(savings)

    if not SMOKE:
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "tenancy",
                    "fleet": tenancy.spec_string(),
                    "catalog_size": CATALOG_SIZE,
                    "target_rps": TARGET_RPS,
                    "duration_s": DURATION_S,
                    "colocated": {
                        "options": [
                            {
                                "instance_type": o.instance_type,
                                "replicas": o.replicas,
                                "monthly_cost_usd": round(
                                    o.monthly_cost_usd, 2
                                ),
                                "per_tenant": {
                                    name: {
                                        "p90_ms": row["p90_ms"],
                                        "slo_ms": row["slo_ms"],
                                        "slo_met": row["slo_met"],
                                        "rps": row["rps"],
                                    }
                                    for name, row in (
                                        o.result.tenancy or {}
                                    )
                                    .get("tenants", {})
                                    .items()
                                },
                            }
                            for o in sorted(
                                plan.options,
                                key=lambda o: o.monthly_cost_usd,
                            )
                        ],
                        "infeasible": dict(plan.infeasible),
                    },
                    "standalone": {
                        name: (
                            {
                                "instance_type": o.instance_type,
                                "replicas": o.replicas,
                                "monthly_cost_usd": round(
                                    o.monthly_cost_usd, 2
                                ),
                            }
                            if o is not None
                            else None
                        )
                        for name, o in plan.standalone.items()
                    },
                    "winner": {
                        "colocated": _describe(winner),
                        "standalone_total_usd": round(total, 2),
                        "savings_usd_per_month": round(savings, 2),
                    },
                    "wall_clock_s": round(wall_clock_s, 2),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {RESULTS_PATH.name} (wall clock {wall_clock_s:.1f} s)")
