"""Backend selection: the ``serial|mp[:workers=N]`` grammar and env var."""

import os

import pytest

from repro.exec import BACKEND_ENV_VAR, BackendConfig, resolve_backend
from repro.exec.backend import (
    MultiprocessingBackend,
    SerialBackend,
    make_backend,
)


class TestGrammar:
    def test_serial(self):
        config = BackendConfig.parse("serial")
        assert config.kind == "serial"
        assert not config.parallel
        assert config.effective_workers() == 1

    def test_mp_defaults_to_all_cores(self):
        config = BackendConfig.parse("mp")
        assert config.kind == "mp"
        assert config.parallel
        assert config.workers == 0
        assert config.effective_workers() == (os.cpu_count() or 1)

    def test_mp_with_workers(self):
        config = BackendConfig.parse("mp:workers=4")
        assert config.workers == 4
        assert config.effective_workers() == 4

    def test_whitespace_and_case_normalized(self):
        assert BackendConfig.parse("  MP : workers = 2 ") == BackendConfig(
            "mp", 2
        )

    def test_empty_means_serial(self):
        assert BackendConfig.parse("") == BackendConfig("serial")

    @pytest.mark.parametrize(
        "spec",
        [
            "threads",
            "mp:workers=0",
            "mp:workers=-1",
            "mp:workers=two",
            "mp:cores=4",
            "serial:workers=2",
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            BackendConfig.parse(spec)

    def test_spec_string_round_trips(self):
        for spec in ("serial", "mp", "mp:workers=3"):
            config = BackendConfig.parse(spec)
            assert BackendConfig.parse(config.spec_string()) == config

    def test_negative_workers_rejected_directly(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="mp", workers=-1)
        with pytest.raises(ValueError):
            BackendConfig(kind="serial", workers=2)
        with pytest.raises(ValueError):
            BackendConfig(kind="threads")


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == BackendConfig("serial")

    def test_env_var_used_when_no_explicit_spec(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "mp:workers=2")
        assert resolve_backend() == BackendConfig("mp", 2)

    def test_explicit_spec_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "mp:workers=8")
        assert resolve_backend("serial") == BackendConfig("serial")

    def test_config_passes_through(self):
        config = BackendConfig("mp", 3)
        assert resolve_backend(config) is config

    def test_make_backend_builds_the_right_type(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(make_backend(), SerialBackend)
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("mp:workers=2")
        assert isinstance(backend, MultiprocessingBackend)
        assert backend.config.workers == 2

    def test_make_backend_honors_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "mp")
        assert isinstance(make_backend(), MultiprocessingBackend)

    def test_make_backend_passes_backends_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend
