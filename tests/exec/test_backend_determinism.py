"""Cross-backend determinism: serial and mp plans must be bit-identical.

The whole value of the parallel execution backend rests on one property:
for any scenario grid, ``DeploymentPlanner.plan`` produces *bit-identical*
``ScenarioPlan`` payloads — option list including tie-break order, every
measured number inside every RunResult, and infeasible-candidate messages
in grid order — whatever the backend and worker count. Hypothesis drives
random small grids through serial and mp(2); a fixed wider grid (with
infeasible and skipped candidates in it) also checks mp(4).
"""

import json
from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeploymentPlanner
from repro.core.experiment import ExperimentRunner
from repro.core.registry import AssetRegistry
from repro.core.spec import Scenario
from repro.hardware.instances import instance_by_name
from repro.scheduler import SchedulerConfig


def plan_payload(plans):
    """Canonical JSON of every plan: full results, order-preserving."""
    return json.dumps(
        {
            model: {
                "options": [
                    {
                        "instance_type": option.instance_type,
                        "replicas": option.replicas,
                        "shards": option.shards,
                        "retrieval": option.retrieval,
                        "recall": option.recall,
                        "scheduler": option.scheduler,
                        "cpu_replicas": option.cpu_replicas,
                        "monthly_cost_usd": option.monthly_cost_usd,
                        "result": asdict(option.result),
                    }
                    for option in plan.options
                ],
                "infeasible": list(plan.infeasible.items()),
                "cheapest": (
                    plan.cheapest().instance_type
                    if plan.cheapest() is not None
                    else None
                ),
            }
            for model, plan in plans.items()
        },
        sort_keys=True,
    )


def run_plan(backend, scenario, models, instance_names, seed, **planner_kwargs):
    """One cold sweep: fresh runner + registry per call, nothing shared."""
    planner = DeploymentPlanner(
        runner=ExperimentRunner(registry=AssetRegistry(), seed=seed),
        backend=backend,
        **planner_kwargs,
    )
    instances = [instance_by_name(name) for name in instance_names]
    return plan_payload(planner.plan(scenario, models, instances=instances))


@settings(max_examples=3, deadline=None)
@given(
    catalog=st.integers(min_value=1_000, max_value=20_000),
    rps=st.integers(min_value=10, max_value=60),
    seed=st.integers(min_value=0, max_value=2**20),
    models=st.lists(
        st.sampled_from(["gru4rec", "narm"]),
        min_size=1,
        max_size=2,
        unique=True,
    ),
    use_gpu=st.booleans(),
)
def test_random_grids_serial_equals_mp2(catalog, rps, seed, models, use_gpu):
    scenario = Scenario("hyp", catalog, rps)
    instance_names = ["CPU"] + (["GPU-T4"] if use_gpu else [])
    kwargs = dict(duration_s=5.0, max_replicas=2)
    serial = run_plan("serial", scenario, models, instance_names, seed, **kwargs)
    mp2 = run_plan(
        "mp:workers=2", scenario, models, instance_names, seed, **kwargs
    )
    assert serial == mp2


def test_fixed_grid_with_infeasibles_all_backends():
    """A grid that exercises every outcome class: feasible options (with
    cost ties resolved by the canonical tie-break), infeasible candidates
    (scheduler on a CPU primary; replica cap too low), and quietly
    skipped ones (scheduler x sharding)."""
    scenario = Scenario("fixed", 8_000, 40)
    models = ["gru4rec"]
    instance_names = ["CPU", "GPU-T4"]
    kwargs = dict(
        duration_s=5.0,
        max_replicas=1,  # tight cap: some candidates become infeasible
        shard_counts=(1, 2),
        scheduler_options=(None, SchedulerConfig.parse("cpu=1,target=20")),
    )
    payloads = {
        backend: run_plan(
            backend, scenario, models, instance_names, seed=99, **kwargs
        )
        for backend in ("serial", "mp:workers=2", "mp:workers=4")
    }
    assert payloads["mp:workers=2"] == payloads["serial"]
    assert payloads["mp:workers=4"] == payloads["serial"]
    # The grid really contained infeasible candidates — the equality
    # above must cover their messages and ordering, not just options.
    decoded = json.loads(payloads["serial"])
    assert decoded["gru4rec"]["infeasible"], "expected infeasible candidates"
    messages = dict(decoded["gru4rec"]["infeasible"])
    assert any("accelerator" in message for message in messages.values())
