"""Backend mechanics: ordered deterministic merge, error propagation,
memo shipping, and the exec_task observability wiring."""

import pytest

from repro.core.registry import AssetRegistry
from repro.exec import (
    ExecError,
    ExecTask,
    MultiprocessingBackend,
    SerialBackend,
    TaskOutcome,
    task_kind,
)
from repro.obs import Telemetry

# Toy task kinds, module-level so fork()ed pool workers inherit them.


@task_kind("test_square")
def _square(payload, context):
    return payload["x"] ** 2, None


@task_kind("test_boom")
def _boom(payload, context):
    raise RuntimeError(f"boom on {payload['x']}")


def squares(n):
    return [
        ExecTask(key=("sq", i), kind="test_square", payload={"x": i})
        for i in range(n)
    ]


class TestSerialBackend:
    def test_values_in_submission_order(self):
        outcomes = SerialBackend().run_tasks(squares(5))
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]
        assert [o.key for o in outcomes] == [("sq", i) for i in range(5)]
        assert all(o.ok and o.worker == "parent" for o in outcomes)

    def test_duplicate_keys_rejected(self):
        tasks = squares(2) + [
            ExecTask(key=("sq", 0), kind="test_square", payload={"x": 7})
        ]
        with pytest.raises(ValueError, match="duplicate"):
            SerialBackend().run_tasks(tasks)

    def test_error_raises_with_key_and_traceback(self):
        tasks = squares(1) + [
            ExecTask(key=("bad",), kind="test_boom", payload={"x": 1})
        ]
        with pytest.raises(ExecError, match="boom on 1") as excinfo:
            SerialBackend().run_tasks(tasks)
        assert excinfo.value.key == ("bad",)

    def test_error_captured_when_not_raising(self):
        tasks = [
            ExecTask(key=("bad",), kind="test_boom", payload={"x": 2})
        ] + squares(1)
        outcomes = SerialBackend().run_tasks(tasks, raise_on_error=False)
        assert not outcomes[0].ok
        assert "boom on 2" in outcomes[0].error
        assert outcomes[1].value == 0  # later tasks still ran

    def test_unknown_kind_is_an_error(self):
        task = ExecTask(key=("k",), kind="no_such_kind")
        with pytest.raises(ExecError, match="no_such_kind"):
            SerialBackend().run_tasks([task])


class TestMultiprocessingBackend:
    def test_values_in_submission_order_regardless_of_workers(self):
        for workers in (1, 2, 4):
            outcomes = MultiprocessingBackend(workers=workers).run_tasks(
                squares(9)
            )
            assert [o.value for o in outcomes] == [i * i for i in range(9)]
            assert [o.key for o in outcomes] == [("sq", i) for i in range(9)]

    def test_worker_identity_recorded(self):
        outcomes = MultiprocessingBackend(workers=2).run_tasks(squares(4))
        assert all(o.worker.startswith("pid:") for o in outcomes)

    def test_child_error_ships_traceback(self):
        tasks = squares(2) + [
            ExecTask(key=("bad",), kind="test_boom", payload={"x": 3})
        ]
        with pytest.raises(ExecError, match="boom on 3"):
            MultiprocessingBackend(workers=2).run_tasks(tasks)

    def test_empty_task_list(self):
        assert MultiprocessingBackend(workers=2).run_tasks([]) == []


class TestMemoShipping:
    def test_export_absorb_round_trip(self):
        source = AssetRegistry()
        source._recalls[("m", 1000, "ivf", 21, 42, 32)] = 0.97
        source._profiles[("m", 1000, "CPU", "jit", 21, 42, None)] = "profile"
        memos = source.export_memos()
        assert set(memos) == {"recalls", "profiles"}

        target = AssetRegistry()
        assert target.absorb_memos(memos) == 2
        assert target._recalls == source._recalls
        # Existing entries win on re-absorb; nothing is double-counted.
        assert target.absorb_memos(memos) == 0

    def test_export_skip_filters_shipped_keys(self):
        source = AssetRegistry()
        source._recalls[("a",)] = 0.9
        source._recalls[("b",)] = 0.8
        memos = source.export_memos(skip={"recalls": {("a",)}})
        assert memos == {"recalls": {("b",): 0.8}}

    def test_planner_mp_ships_memos_back_to_parent(self):
        from repro.core import DeploymentPlanner
        from repro.core.experiment import ExperimentRunner
        from repro.core.spec import Scenario
        from repro.hardware.instances import instance_by_name

        registry = AssetRegistry()
        planner = DeploymentPlanner(
            runner=ExperimentRunner(registry=registry, seed=11),
            duration_s=5.0,
            max_replicas=1,
            backend="mp:workers=2",
        )
        planner.plan(
            Scenario("memo", 2_000, 20), ["gru4rec"],
            instances=[instance_by_name("CPU")],
        )
        # The worker measured the profile; the parent never built one
        # itself, so any entry here must have been shipped and absorbed.
        assert registry._profiles


class TestObservability:
    def test_serial_counters_and_spans(self):
        telemetry = Telemetry()
        SerialBackend().run_tasks(squares(3), telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot['exec_tasks_total{backend="serial"}'] == 3
        assert snapshot['exec_task_failures_total{backend="serial"}'] == 0
        assert snapshot['exec_workers{backend="serial"}'] == 1
        spans = [s for s in telemetry.trace.spans if s.name == "exec_task"]
        assert len(spans) == 3
        assert [s.attrs["key"] for s in spans] == [
            str(("sq", i)) for i in range(3)
        ]
        assert all(s.attrs["backend"] == "serial" for s in spans)

    def test_failures_counted(self):
        telemetry = Telemetry()
        tasks = squares(1) + [
            ExecTask(key=("bad",), kind="test_boom", payload={"x": 9})
        ]
        SerialBackend().run_tasks(
            tasks, telemetry=telemetry, raise_on_error=False
        )
        snapshot = telemetry.metrics.snapshot()
        assert snapshot['exec_tasks_total{backend="serial"}'] == 2
        assert snapshot['exec_task_failures_total{backend="serial"}'] == 1

    def test_mp_spans_in_submission_order(self):
        telemetry = Telemetry()
        MultiprocessingBackend(workers=2).run_tasks(
            squares(4), telemetry=telemetry
        )
        snapshot = telemetry.metrics.snapshot()
        assert snapshot['exec_tasks_total{backend="mp"}'] == 4
        assert snapshot['exec_workers{backend="mp"}'] == 2
        spans = [s for s in telemetry.trace.spans if s.name == "exec_task"]
        # Spans are emitted by the parent after the deterministic merge,
        # so their order never depends on completion order either.
        assert [s.attrs["key"] for s in spans] == [
            str(("sq", i)) for i in range(4)
        ]
