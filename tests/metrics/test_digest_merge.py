"""Regression: ``LatencyDigest.merge`` must be order-independent.

Parallel result folding merges per-worker digests in whatever grouping
is convenient; the fold is only deterministic if ``merge(a, b)`` and
``merge(b, a)`` agree *exactly* — including the exact tracked min/max
(which ``percentile`` clamps to, so a drifted min leaks into every
quantile) and the bin counts behind every percentile query.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.percentile import LatencyDigest


def digest_of(latencies):
    digest = LatencyDigest()
    digest.record_many(latencies)
    return digest


def assert_identical(x: LatencyDigest, y: LatencyDigest):
    assert x.count == y.count
    assert np.array_equal(x._counts, y._counts)
    assert x._sum == y._sum
    assert x._min == y._min
    assert x._max == y._max
    for q in (0, 1, 25, 50, 75, 90, 99, 100):
        assert x.percentile(q) == y.percentile(q)


latency_lists = st.lists(
    st.floats(min_value=1e-6, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(a=latency_lists, b=latency_lists)
def test_merge_commutes_exactly(a, b):
    assert_identical(digest_of(a).merge(digest_of(b)),
                     digest_of(b).merge(digest_of(a)))


def test_exact_min_path_is_order_independent():
    # The tracked minimum is exact (not binned); percentile(0) returns it
    # and every other percentile clamps to it from below.
    small = digest_of([0.0002, 0.0003])
    large = digest_of([0.2, 0.3])
    ab, ba = small.merge(large), large.merge(small)
    assert ab.percentile(0) == ba.percentile(0) == 0.0002
    assert ab.min() == ba.min()
    assert ab.max() == ba.max() == 0.3


def test_percentile_clamp_path_is_order_independent():
    # One-sample digests force the clamp-to-envelope path: the bin edge
    # sits above the observation, so every percentile must clamp to the
    # same exact value whichever digest came first.
    x, y = digest_of([0.0123]), digest_of([4.56])
    ab, ba = x.merge(y), y.merge(x)
    for q in (1, 50, 99, 100):
        assert ab.percentile(q) == ba.percentile(q)


def test_merge_chains_associate():
    parts = [digest_of([0.001 * (i + 1), 0.1 * (i + 1)]) for i in range(4)]
    left = parts[0].merge(parts[1]).merge(parts[2]).merge(parts[3])
    right = parts[3].merge(parts[2].merge(parts[1].merge(parts[0])))
    assert_identical(left, right)


def test_merge_does_not_mutate_inputs():
    a, b = digest_of([0.01]), digest_of([0.02])
    a_counts, b_counts = a._counts.copy(), b._counts.copy()
    a.merge(b)
    assert np.array_equal(a._counts, a_counts)
    assert np.array_equal(b._counts, b_counts)
    assert a.count == 1 and b.count == 1
