"""Result archive over the bucket."""

import pytest

from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.metrics import ResultStore


@pytest.fixture(scope="module")
def runner_with_results():
    runner = ExperimentRunner(seed=808)
    for model, rps in (("stamp", 50), ("stamp", 100), ("narm", 50)):
        runner.run(
            ExperimentSpec(
                model=model, catalog_size=10_000, target_rps=rps,
                hardware=HardwareSpec("CPU", 1), duration_s=15.0,
            )
        )
    return runner


class TestResultStore:
    def test_counts_persisted_runs(self, runner_with_results):
        store = ResultStore(runner_with_results.infra.bucket)
        assert len(store) == 3

    def test_roundtrip_preserves_fields(self, runner_with_results):
        store = ResultStore(runner_with_results.infra.bucket)
        results = list(store.iter_results())
        assert all(result.ok_requests > 0 for result in results)
        assert {result.model for result in results} == {"stamp", "narm"}

    def test_query_filters(self, runner_with_results):
        store = ResultStore(runner_with_results.infra.bucket)
        assert len(store.query(model="stamp")) == 2
        assert len(store.query(model="narm")) == 1
        assert len(store.query(min_target_rps=80)) == 1
        assert len(store.query(instance_type="GPU-T4")) == 0
        assert len(store.query(catalog_size=10_000)) == 3

    def test_feasible_filter(self, runner_with_results):
        store = ResultStore(runner_with_results.infra.bucket)
        assert len(store.feasible(p90_limit_ms=50.0)) == 3
        assert len(store.feasible(p90_limit_ms=0.001)) == 0

    def test_csv_export(self, runner_with_results):
        store = ResultStore(runner_with_results.infra.bucket)
        csv = store.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("model,instance_type,")
        assert len(lines) == 4
        assert any("stamp" in line for line in lines[1:])
