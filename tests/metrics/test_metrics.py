"""Percentile digests, the collector, and result containers."""

import numpy as np
import pytest

from repro.metrics import (
    LatencyDigest,
    LatencySeries,
    MetricsCollector,
    RunResult,
    exact_percentile,
)
from repro.serving.request import HTTP_OK, HTTP_SERVICE_UNAVAILABLE, RecommendationResponse


class TestExactPercentile:
    def test_matches_numpy(self):
        values = list(np.random.default_rng(0).random(1000))
        assert exact_percentile(values, 90) == pytest.approx(
            float(np.percentile(values, 90))
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_percentile([], 50)


class TestLatencyDigest:
    def test_percentiles_within_bin_resolution(self):
        digest = LatencyDigest()
        rng = np.random.default_rng(1)
        samples = rng.lognormal(mean=np.log(0.010), sigma=0.5, size=50_000)
        for sample in samples:
            digest.record(sample)
        for q in (50, 90, 99):
            exact = float(np.percentile(samples, q))
            estimate = digest.percentile(q)
            assert estimate == pytest.approx(exact, rel=0.06), q

    def test_mean_and_max_exact(self):
        digest = LatencyDigest()
        digest.record_many([0.001, 0.002, 0.003])
        assert digest.mean() == pytest.approx(0.002)
        assert digest.max() == pytest.approx(0.003)
        assert digest.count == 3

    def test_merge(self):
        a, b = LatencyDigest(), LatencyDigest()
        a.record_many([0.001] * 50)
        b.record_many([0.1] * 50)
        merged = a.merge(b)
        assert merged.count == 100
        assert merged.percentile(25) == pytest.approx(0.001, rel=0.05)
        assert merged.percentile(75) == pytest.approx(0.1, rel=0.05)

    def test_merge_resolution_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatencyDigest(50).merge(LatencyDigest(10))

    def test_empty_digest_queries_raise(self):
        with pytest.raises(ValueError):
            LatencyDigest().percentile(50)
        with pytest.raises(ValueError):
            LatencyDigest().mean()

    def test_out_of_range_clamped(self):
        digest = LatencyDigest()
        digest.record(1e-9)
        digest.record(1e6)
        assert digest.count == 2


def ok_response(request_id, sent_at, latency, batch=1):
    return RecommendationResponse(
        request_id=request_id,
        status=HTTP_OK,
        completed_at=sent_at + latency,
        latency_s=latency,
        inference_s=latency / 2,
        batch_size=batch,
    )


class TestCollector:
    def test_buckets_by_send_second(self):
        collector = MetricsCollector()
        collector.note_sent(0.5)
        collector.record(0.5, ok_response(0, 0.5, 0.010))
        collector.note_sent(2.2)
        collector.record(2.2, ok_response(1, 2.2, 0.020))
        buckets = collector.buckets()
        assert [b.second for b in buckets] == [0, 2]
        assert buckets[0].ok == 1 and buckets[1].ok == 1

    def test_error_accounting(self):
        collector = MetricsCollector()
        collector.note_sent(1.0)
        collector.record(
            1.0,
            RecommendationResponse(
                request_id=0, status=HTTP_SERVICE_UNAVAILABLE,
                completed_at=1.1, latency_s=0.1,
            ),
        )
        assert collector.errors == 1
        assert collector.buckets()[0].error_rate == 1.0

    def test_achieved_throughput(self):
        collector = MetricsCollector()
        for index in range(100):
            sent = index * 0.01
            collector.note_sent(sent)
            collector.record(sent, ok_response(index, sent, 0.005))
        assert collector.achieved_throughput() == pytest.approx(100.0, rel=0.05)


class TestLatencySeries:
    def _collector(self):
        collector = MetricsCollector()
        for second in range(10):
            for index in range(second + 1):  # growing offered load
                sent = second + index / (second + 1)
                collector.note_sent(sent)
                collector.record(sent, ok_response(0, sent, 0.010 + second * 0.001))
        return collector

    def test_from_collector(self):
        series = LatencySeries.from_collector(self._collector())
        assert series.offered_rps == list(range(1, 11))
        assert all(p90 is not None for p90 in series.p90_ms)

    def test_p90_at_load(self):
        series = LatencySeries.from_collector(self._collector())
        value = series.p90_at_load(10)
        assert value is not None and value > 15.0  # ~19ms at the last second

    def test_p90_at_unreached_load_is_none(self):
        series = LatencySeries.from_collector(self._collector())
        assert series.p90_at_load(500) is None


class TestRunResult:
    def _result(self, p90_at_target=30.0, errors=0):
        return RunResult(
            model="stamp", instance_type="CPU", replicas=1, catalog_size=1000,
            target_rps=100, duration_s=60.0, execution_mode="jit",
            total_requests=1000, ok_requests=1000 - errors, error_requests=errors,
            achieved_rps=95.0, p50_ms=10.0, p90_ms=25.0, p99_ms=60.0,
            p90_at_target_ms=p90_at_target,
        )

    def test_meets_slo(self):
        assert self._result(30.0).meets_slo(50.0)
        assert not self._result(55.0).meets_slo(50.0)
        assert not self._result(None).meets_slo(50.0)
        assert not self._result(30.0, errors=100).meets_slo(50.0)

    def test_json_roundtrip(self):
        original = self._result()
        restored = RunResult.from_json(original.to_json())
        assert restored.model == "stamp"
        assert restored.p90_at_target_ms == pytest.approx(30.0)
        assert restored.error_rate == 0.0
