"""Throughput accounting: ok-rate vs total-response rate regressions."""

import pytest

from repro.metrics import MetricsCollector
from repro.serving.request import (
    HTTP_GATEWAY_TIMEOUT,
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationResponse,
)


def respond(collector, sent_at, completed_at, status=HTTP_OK):
    collector.note_sent(sent_at)
    collector.record(
        sent_at,
        RecommendationResponse(
            request_id=0,
            status=status,
            completed_at=completed_at,
            latency_s=completed_at - sent_at,
        ),
    )


class TestAchievedThroughput:
    def test_all_ok(self):
        collector = MetricsCollector()
        for second in range(10):
            respond(collector, float(second), second + 0.05)
        # 10 ok over the 9.05 s window from first send to last ok completion.
        assert collector.achieved_throughput() == pytest.approx(10 / 9.05)

    def test_error_only_run_reports_zero(self):
        collector = MetricsCollector()
        for second in range(5):
            respond(collector, float(second), second + 0.05, HTTP_SERVICE_UNAVAILABLE)
        assert collector.achieved_throughput() == 0.0

    def test_trailing_errors_do_not_deflate_ok_rate(self):
        """Regression: timeouts firing long after the last success used to
        stretch the denominator (last *overall* completion) and underreport
        the ok throughput."""
        collector = MetricsCollector()
        for second in range(10):
            respond(collector, float(second), second + 0.05)
        # A straggler times out 30 s after the last success.
        respond(collector, 10.0, 40.0, HTTP_GATEWAY_TIMEOUT)
        assert collector.achieved_throughput() == pytest.approx(10 / 9.05)

    def test_empty_collector(self):
        assert MetricsCollector().achieved_throughput() == 0.0


class TestTotalResponseRate:
    def test_error_only_run_still_has_a_rate(self):
        """An overloaded deployment answering only 503s is not idle; the
        total-response rate shows how fast it was failing."""
        collector = MetricsCollector()
        for second in range(5):
            respond(collector, float(second), second + 0.05, HTTP_SERVICE_UNAVAILABLE)
        assert collector.achieved_throughput() == 0.0
        assert collector.total_response_rate() == pytest.approx(5 / 4.05)

    def test_counts_ok_and_errors_over_full_window(self):
        collector = MetricsCollector()
        respond(collector, 0.0, 0.5)
        respond(collector, 1.0, 1.5, HTTP_SERVICE_UNAVAILABLE)
        respond(collector, 2.0, 2.5)
        # 3 responses over the 2.5 s window ending at the last completion.
        assert collector.total_response_rate() == pytest.approx(3 / 2.5)

    def test_empty_collector(self):
        assert MetricsCollector().total_response_rate() == 0.0
