"""Repo-wide pytest fixtures.

The only global behaviour here is the hang guard: a discrete-event
simulation bug (a worker that never yields, a signal that never fires)
shows up as a test that spins forever, which on CI means a 6-hour job
timeout with no traceback. ``faulthandler.dump_traceback_later`` turns
that into a dumped stack for every thread followed by a hard exit, per
test.

Override the budget with ``ETUDE_TEST_TIMEOUT`` (seconds); ``0`` disables
the guard (e.g. when stepping through a test under a debugger).
"""

import faulthandler
import os

import pytest

#: Per-test wall-clock budget in seconds. Generous: the slowest legitimate
#: tests (long deployed-benchmark integrations) finish well under this.
DEFAULT_TIMEOUT_S = 120.0


@pytest.fixture(autouse=True)
def _hang_guard():
    timeout_s = float(os.environ.get("ETUDE_TEST_TIMEOUT", DEFAULT_TIMEOUT_S))
    if timeout_s <= 0 or not hasattr(faulthandler, "dump_traceback_later"):
        yield
        return
    faulthandler.dump_traceback_later(timeout_s, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
