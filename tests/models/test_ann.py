"""IVF-Flat approximate nearest-neighbor search."""

import numpy as np
import pytest

from repro.ann import AnnSessionRecModel, IVFFlatIndex, recall_at_k
from repro.models import ModelConfig, create_model
from repro.tensor import Tensor, cost_trace

CONFIG = ModelConfig.for_catalog(20_000, top_k=10)


@pytest.fixture(scope="module")
def model():
    return create_model("gru4rec", CONFIG)


@pytest.fixture(scope="module")
def index(model):
    return IVFFlatIndex(model.item_embedding, nlist=64, nprobe=8, kmeans_iterations=6)


class TestIndexConstruction:
    def test_all_items_in_exactly_one_list(self, index):
        members = np.concatenate(index.lists)
        assert members.shape[0] == index.data.shape[0]
        assert np.unique(members).shape[0] == members.shape[0]

    def test_default_nlist_sqrt(self, model):
        auto = IVFFlatIndex(model.item_embedding, kmeans_iterations=2)
        assert auto.nlist == int(np.sqrt(model.item_embedding.materialized))

    def test_nprobe_clamped(self, model):
        clamped = IVFFlatIndex(
            model.item_embedding, nlist=16, nprobe=100, kmeans_iterations=2
        )
        assert clamped.nprobe == 16

    def test_invalid_nlist(self, model):
        with pytest.raises(ValueError):
            IVFFlatIndex(model.item_embedding, nlist=0)

    def test_probed_fraction(self, index):
        fraction = index.probed_fraction()
        assert fraction == pytest.approx(index.nprobe / index.nlist, rel=1e-6)


class TestSearch:
    def test_full_probe_equals_exact(self, model, index):
        """nprobe == nlist visits everything: results match the exact scan."""
        everything = index.with_nprobe(index.nlist)
        query = Tensor(
            np.random.default_rng(0).random(CONFIG.embedding_dim).astype(np.float32)
        )
        from repro.tensor import functional as F

        exact = F.topk(
            F.linear(query, model.item_embedding.scoring_weight()), 10
        ).numpy()
        approx = everything.search(query, 10).numpy()
        np.testing.assert_array_equal(np.sort(exact), np.sort(approx))

    def test_recall_monotone_in_nprobe(self, model, index):
        rng = np.random.default_rng(1)
        queries = [
            Tensor(rng.random(CONFIG.embedding_dim).astype(np.float32))
            for _ in range(15)
        ]
        from repro.tensor import functional as F

        def mean_recall(nprobe):
            probed = index.with_nprobe(nprobe)
            recalls = []
            for query in queries:
                exact = F.topk(
                    F.linear(query, model.item_embedding.scoring_weight()), 10
                ).numpy()
                approx = probed.search(query, 10).numpy()
                recalls.append(recall_at_k(exact, approx))
            return np.mean(recalls)

        low, mid, high = mean_recall(1), mean_recall(8), mean_recall(32)
        assert low <= mid + 0.05
        assert mid <= high + 0.05
        assert high > 0.8

    def test_cost_scales_with_nprobe(self, index):
        query = Tensor(np.ones(CONFIG.embedding_dim, dtype=np.float32))
        with cost_trace() as narrow:
            index.with_nprobe(1).search(query, 10)
        with cost_trace() as wide:
            index.with_nprobe(32).search(query, 10)
        assert wide.total_param_bytes > 5 * narrow.total_param_bytes

    def test_cost_far_below_exact_scan(self, model, index):
        query = Tensor(np.ones(CONFIG.embedding_dim, dtype=np.float32))
        from repro.tensor import functional as F

        with cost_trace() as exact:
            F.linear(query, model.item_embedding.scoring_weight())
        with cost_trace() as ann:
            index.search(query, 10)
        assert ann.total_param_bytes < 0.4 * exact.total_param_bytes

    def test_invalid_k(self, index):
        with pytest.raises(ValueError):
            index.search(Tensor(np.ones(CONFIG.embedding_dim)), 0)


class TestBuildAndAccounting:
    def test_build_determinism(self, model):
        first = IVFFlatIndex(
            model.item_embedding, nlist=32, nprobe=4, kmeans_iterations=4
        )
        second = IVFFlatIndex(
            model.item_embedding, nlist=32, nprobe=4, kmeans_iterations=4
        )
        np.testing.assert_array_equal(first.centroids, second.centroids)
        for list_a, list_b in zip(first.lists, second.lists):
            np.testing.assert_array_equal(list_a, list_b)

    def test_logical_nlist_clamped_to_materialized_rows(self):
        from repro.tensor.layers import CatalogEmbedding

        virtual = CatalogEmbedding(5_000, 8, materialized_cap=100)
        index = IVFFlatIndex(virtual, nlist=500, nprobe=8, kmeans_iterations=2)
        assert index.logical_nlist == 500
        assert index.nlist == 100  # only 100 rows exist to cluster
        assert index.catalog_scale == pytest.approx(50.0)

    def test_nlist_above_catalog_rejected(self, model):
        with pytest.raises(ValueError):
            IVFFlatIndex(model.item_embedding, nlist=CONFIG.num_items + 1)

    def test_virtualized_full_probe_matches_exact_plus_centroids(self):
        """Above the materialized cap, a full probe's booked traffic must be
        the exact scan's plus the (logical) centroid table — the scale
        handling cannot leak into the totals."""
        config = ModelConfig.for_catalog(100_000, top_k=10)
        big = create_model("gru4rec", config)
        assert big.item_embedding.catalog_scale > 1.0
        index = IVFFlatIndex(
            big.item_embedding, nlist=64, nprobe=64, kmeans_iterations=2
        )
        from repro.tensor import functional as F

        query = Tensor(np.ones(config.embedding_dim, dtype=np.float32))
        with cost_trace() as exact:
            F.linear(query, big.item_embedding.scoring_weight())
        with cost_trace() as full_probe:
            index.search(query, 10)
        centroid_bytes = index.logical_nlist * config.embedding_dim * 4.0
        assert full_probe.total_param_bytes == pytest.approx(
            exact.total_param_bytes + centroid_bytes, rel=1e-6
        )


class TestAnnModel:
    def test_recommend_contract(self, model):
        ann = AnnSessionRecModel(model, nlist=64, nprobe=8)
        recs = ann.recommend([3, 99, 17])
        assert recs.shape == (10,)
        assert np.all((recs >= 0) & (recs < CONFIG.num_items))

    def test_recall_against_exact(self, model):
        ann = AnnSessionRecModel(model, nlist=64, nprobe=32)
        rng = np.random.default_rng(4)
        sessions = [
            rng.integers(0, CONFIG.num_items, size=4).tolist() for _ in range(10)
        ]
        assert ann.recall_against_exact(sessions) > 0.6

    def test_score_bytes_reflect_probing(self, model):
        ann = AnnSessionRecModel(model, nlist=64, nprobe=8)
        assert ann.score_bytes_per_item() < 0.3 * model.score_bytes_per_item()

    def test_fused_scoring_models_rejected(self):
        repeatnet = create_model("repeatnet", CONFIG)
        with pytest.raises(ValueError):
            AnnSessionRecModel(repeatnet)

    def test_recall_at_k_validation(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([]), np.array([1]))
        assert recall_at_k(np.array([1, 2]), np.array([2, 3])) == 0.5
