"""VMIS-kNN: the non-neural baseline of the paper's conclusion."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, LatencyModel
from repro.models import ModelConfig, create_model
from repro.models.vmisknn import SessionIndex, VMISKNN
from repro.tensor import Tensor, cost_trace

CONFIG = ModelConfig.for_catalog(10_000, top_k=8)

HISTORY = [
    [1, 2, 3],
    [2, 3, 4],
    [3, 4, 5],
    [100, 101],
    [1, 2, 3, 4],
    [7, 8, 9, 7],
]


@pytest.fixture(scope="module")
def model():
    return VMISKNN(
        CONFIG,
        historic_sessions=[np.asarray(s) for s in HISTORY],
        neighbours=5,
        last_items=5,
    )


class TestSessionIndex:
    def test_postings_per_item(self):
        index = SessionIndex([np.asarray(s) for s in HISTORY])
        np.testing.assert_array_equal(index.item_index[1], [0, 4])
        np.testing.assert_array_equal(index.item_index[100], [3])

    def test_recency_cap(self):
        sessions = [np.asarray([42])] * 10
        index = SessionIndex(sessions, max_sessions_per_item=3)
        np.testing.assert_array_equal(index.item_index[42], [7, 8, 9])

    def test_candidates_union(self):
        index = SessionIndex([np.asarray(s) for s in HISTORY])
        candidates = index.candidates_for(np.asarray([1, 100]))
        np.testing.assert_array_equal(candidates, [0, 3, 4])

    def test_unknown_items_no_candidates(self):
        index = SessionIndex([np.asarray(s) for s in HISTORY])
        assert index.candidates_for(np.asarray([9999])).size == 0

    def test_popularity_ranking(self):
        index = SessionIndex([np.asarray(s) for s in HISTORY])
        assert index.popular_items[0] == 3  # most-clicked item


class TestInference:
    def test_neighbour_items_recommended(self, model):
        recs = model.recommend([2, 3]).tolist()
        # Sessions containing 2 and 3 contain 1, 4, 5: they should rank.
        assert {1, 4}.issubset(set(recs))

    def test_returns_k_distinct_items(self, model):
        recs = model.recommend([2, 3])
        assert recs.shape == (CONFIG.top_k,)
        assert len(set(recs.tolist())) == CONFIG.top_k

    def test_cold_session_falls_back_to_popular(self, model):
        recs = model.recommend([5000]).tolist()
        assert recs[0] == 3  # global most-popular historic item

    def test_deterministic(self, model):
        np.testing.assert_array_equal(
            model.recommend([2, 3]), model.recommend([2, 3])
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.recommend([])
        with pytest.raises(ValueError):
            model.recommend([99_999_999])


class TestCatalogIndependence:
    """The conclusion's claim: non-neural cost does not grow with C."""

    def _latency(self, catalog_size):
        history = SyntheticHistory(catalog_size)
        knn = VMISKNN(
            ModelConfig.for_catalog(catalog_size, top_k=21),
            historic_sessions=history.sessions,
        )
        items, length = knn.prepare_inputs(history.sessions[0][:3].tolist())
        with cost_trace() as trace:
            knn.forward(Tensor(items), Tensor(length))
        return LatencyModel(CPU_E2.device).profile(trace).latency(1)

    def test_latency_flat_in_catalog_size(self):
        small = self._latency(100_000)
        huge = self._latency(20_000_000)
        assert huge < small * 3  # no O(C) term (neural models grow ~200x)

    def test_resident_bytes_are_index_not_table(self):
        knn = create_model("vmisknn", ModelConfig.for_catalog(20_000_000))
        neural_table = 20_000_000 * 67 * 4
        assert knn.resident_bytes() < 0.02 * neural_table

    def test_no_score_vector(self):
        knn = create_model("vmisknn", ModelConfig.for_catalog(1_000_000))
        assert knn.score_bytes_per_item() == 0.0


class SyntheticHistory:
    """A reproducible historic log drawn from the bol-like workload."""

    def __init__(self, catalog_size, clicks=30_000):
        from repro.workload import SyntheticWorkloadGenerator, WorkloadStatistics

        generator = SyntheticWorkloadGenerator(
            WorkloadStatistics.bol_like(catalog_size), seed=5
        )
        self.sessions = generator.generate_clicks(clicks).sessions()


class TestServingIntegration:
    def test_registry_and_experiment_run(self):
        from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec

        runner = ExperimentRunner(seed=606)
        result = runner.run(
            ExperimentSpec(
                model="vmisknn",
                catalog_size=20_000_000,
                target_rps=500,
                hardware=HardwareSpec("CPU", 1),
                duration_s=45.0,
                execution="eager",
            )
        )
        # One CPU machine serves the Platform-scale catalog: the paper's
        # closing "much cheaper with non-neural approaches" observation.
        assert result.meets_slo(50.0)
        assert result.p90_at_target_ms < 10.0
