"""JIT behaviour of the model zoo: nine compile, LightSANs does not."""

import numpy as np
import pytest

from repro.models import BENCHMARK_MODELS, ModelConfig, create_model
from repro.tensor import JitCompilationError, Tensor, cost_trace, optimize_for_inference

CONFIG = ModelConfig.for_catalog(3_000, top_k=7)

JITTABLE = tuple(m for m in BENCHMARK_MODELS if m != "lightsans")


@pytest.fixture(scope="module")
def scripted_models():
    result = {}
    for name in JITTABLE:
        model = create_model(name, CONFIG)
        result[name] = (model, optimize_for_inference(model, model.example_inputs()))
    return result


class TestJitCompilation:
    def test_lightsans_cannot_be_jitted(self):
        """The paper's Section III-B finding, reproduced mechanically."""
        model = create_model("lightsans", CONFIG)
        with pytest.raises(JitCompilationError):
            optimize_for_inference(model, model.example_inputs())

    @pytest.mark.parametrize("name", JITTABLE)
    def test_other_models_compile(self, scripted_models, name):
        _model, scripted = scripted_models[name]
        assert scripted.report.total_eliminated() >= 0


class TestJitEquivalence:
    @pytest.mark.parametrize("name", JITTABLE)
    def test_scripted_matches_eager(self, scripted_models, name):
        model, scripted = scripted_models[name]
        rng = np.random.default_rng(5)
        for _trial in range(5):
            length = int(rng.integers(1, 12))
            session = rng.integers(0, CONFIG.num_items, size=length).tolist()
            items, length_arr = model.prepare_inputs(session)
            eager = model(Tensor(items), Tensor(length_arr)).numpy()
            replay = scripted(items, length_arr).numpy()
            np.testing.assert_array_equal(eager, replay, err_msg=name)


class TestJitSpeedup:
    @pytest.mark.parametrize("name", JITTABLE)
    def test_jit_never_increases_launches(self, scripted_models, name):
        """Paper: "JIT-optimisation is always beneficial and never hurts"."""
        model, scripted = scripted_models[name]
        items, length = model.example_inputs()
        with cost_trace() as eager_trace:
            model(Tensor(items), Tensor(length))
        with cost_trace() as jit_trace:
            scripted(items, length)
        assert jit_trace.total_launches <= eager_trace.total_launches, name

    @pytest.mark.parametrize("name", JITTABLE)
    def test_jit_removes_dropout(self, scripted_models, name):
        _model, scripted = scripted_models[name]
        items, length = _model.example_inputs()
        with cost_trace() as jit_trace:
            scripted(items, length)
        assert not any(r.op == "dropout" for r in jit_trace), name
