"""Architecture-specific behavioural tests, one class per model.

These pin the *mechanisms* each paper describes — causality, masking,
attention normalization, gating — rather than just the I/O contract.
"""

import numpy as np
import pytest

from repro.models import ModelConfig, create_model
from repro.tensor import Tensor, cost_trace

CONFIG = ModelConfig.for_catalog(3_000, top_k=6)


def encode(model, session):
    items, length = model.prepare_inputs(session)
    return model.encode_session(Tensor(items), Tensor(length)).numpy()


class TestGRU4Rec:
    def test_last_click_dominates(self):
        """A recurrent encoder keyed on the final hidden state must react
        to the last click more than to the first."""
        model = create_model("gru4rec", CONFIG)
        base = encode(model, [10, 20, 30])
        change_last = encode(model, [10, 20, 999])
        change_first = encode(model, [999, 20, 30])
        delta_last = np.linalg.norm(base - change_last)
        delta_first = np.linalg.norm(base - change_first)
        assert delta_last > delta_first

    def test_padding_does_not_leak(self):
        model = create_model("gru4rec", CONFIG)
        short = encode(model, [5, 6])
        # Same logical session re-encoded: identical (padding is sliced off
        # by the length gather, and the GRU is causal).
        again = encode(model, [5, 6])
        np.testing.assert_array_equal(short, again)


class TestNARM:
    def test_hybrid_representation_uses_both_views(self):
        """Zeroing the decoder's local half must change the output — both
        the global and local encoders contribute."""
        model = create_model("narm", CONFIG)
        before = encode(model, [1, 2, 3, 4])
        half = model.hidden_size
        weights = model.decoder.weight.data.copy()
        model.decoder.weight.data[:, half:] = 0.0  # kill the local view
        after = encode(model, [1, 2, 3, 4])
        model.decoder.weight.data = weights
        assert not np.allclose(before, after)


class TestSTAMP:
    def test_session_order_matters_through_last_click(self):
        model = create_model("stamp", CONFIG)
        forward = model.recommend([7, 8, 9])
        reordered = model.recommend([9, 8, 7])
        assert not np.array_equal(forward, reordered)

    def test_trilinear_head_is_elementwise_product(self):
        model = create_model("stamp", CONFIG)
        representation = encode(model, [7, 8, 9])
        # The representation is h_s * h_t with both through tanh: bounded.
        assert np.all(np.abs(representation) <= 1.0 + 1e-5)


class TestSASRec:
    def test_causal_mask_blocks_future(self):
        """Changing items after the (gathered) last position changes
        nothing, because the causal transformer cannot look ahead: encode a
        2-click prefix of a 4-click session vs the standalone 2-click
        session — identical representations."""
        model = create_model("sasrec", CONFIG)
        items_long, _ = model.prepare_inputs([1, 2, 3, 4])
        length_two = np.array([2], dtype=np.int64)
        prefix_view = model.encode_session(
            Tensor(items_long), Tensor(length_two)
        ).numpy()
        items_short, length_short = model.prepare_inputs([1, 2])
        standalone = model.encode_session(
            Tensor(items_short), Tensor(length_short)
        ).numpy()
        np.testing.assert_allclose(prefix_view, standalone, rtol=1e-5, atol=1e-6)


class TestCORE:
    def test_session_representation_is_unit_norm(self):
        model = create_model("core", CONFIG)
        representation = encode(model, [4, 5, 6])
        assert np.linalg.norm(representation) == pytest.approx(1.0, rel=1e-4)

    def test_scores_are_bounded_cosine_over_temperature(self):
        from repro.tensor import functional as F

        model = create_model("core", CONFIG)
        items, length = model.prepare_inputs([4, 5, 6])
        representation = model.encode_session(Tensor(items), Tensor(length))
        scores = model.score_catalog(representation).numpy()
        assert np.all(np.abs(scores) <= 1.0 / model.TEMPERATURE + 1e-3)


class TestSINE:
    def test_multiple_interests_contribute(self):
        model = create_model("sine", CONFIG)
        base = encode(model, [1, 2, 3])
        # Collapse the intent gate to the first interest only.
        weights = model.intent_proj.weight.data.copy()
        model.intent_proj.weight.data = np.zeros_like(weights)
        model.intent_proj.weight.data[0, :] = 10.0  # one-hot-ish softmax
        single = encode(model, [1, 2, 3])
        model.intent_proj.weight.data = weights
        assert not np.allclose(base, single)


class TestLightSANs:
    def test_low_rank_attention_dimensions(self):
        model = create_model("lightsans", CONFIG)
        assert model.k_interests < CONFIG.max_session_length
        representation = encode(model, [3, 4, 5])
        assert representation.shape == (CONFIG.embedding_dim,)

    def test_eager_path_uses_item_extraction(self):
        """The dynamic branch actually executes eagerly (no guard hit)."""
        model = create_model("lightsans", CONFIG)
        assert model.recommend([1, 2]).shape == (CONFIG.top_k,)


class TestRepeatNet:
    def test_gate_balances_repeat_and_explore(self):
        model = create_model("repeatnet", CONFIG)
        items, length = model.prepare_inputs([11, 22, 33])
        from repro.tensor import functional as F

        embeddings = model.emb_dropout(model.embed_session(Tensor(items)))
        hidden, _final = model.gru(embeddings)
        last = model.last_position(hidden, Tensor(length))
        mode = F.softmax(model.gate(last), axis=-1).numpy()
        assert mode.shape == (2,)
        assert mode.sum() == pytest.approx(1.0, rel=1e-5)
        assert np.all(mode > 0)

    def test_dense_onehot_traffic_scales_with_catalog(self):
        small = create_model("repeatnet", ModelConfig.for_catalog(2_000))
        big = create_model("repeatnet", ModelConfig.for_catalog(1_000_000))
        session = [1, 2, 3]

        def transfer(model):
            items, length = model.prepare_inputs(session)
            with cost_trace() as trace:
                model(Tensor(items), Tensor(length))
            return trace.total_transfer_bytes

        assert transfer(big) > 100 * transfer(small)


class TestGraphModels:
    def test_srgnn_repeat_clicks_share_graph_nodes(self):
        """[a, b, a] builds a 2-node graph; the alias maps both 'a' clicks
        to the same node."""
        from repro.models.srgnn import _session_alias, _session_nodes

        items = np.array([10, 20, 10, 0, 0], dtype=np.int64)
        length = np.array([3], dtype=np.int64)
        nodes = _session_nodes(items, length)
        alias = _session_alias(items, length)
        assert set(nodes[:2].tolist()) == {10, 20}
        assert alias[0] == alias[2]

    def test_srgnn_adjacency_row_normalized(self):
        from repro.models.srgnn import _session_adjacency

        items = np.array([1, 2, 3, 1, 0], dtype=np.int64)
        length = np.array([4], dtype=np.int64)
        adjacency = _session_adjacency(items, length)
        max_len = items.shape[0]
        outgoing = adjacency[max_len:]
        row_sums = outgoing.sum(axis=1)
        for row_sum in row_sums:
            assert row_sum == pytest.approx(1.0) or row_sum == pytest.approx(0.0)

    def test_gcsan_blends_attention_and_gnn(self):
        model = create_model("gcsan", CONFIG)
        assert 0.0 < model.BLEND_WEIGHT < 1.0
        representation = encode(model, [5, 6, 7, 5])
        assert representation.shape == (CONFIG.embedding_dim,)
