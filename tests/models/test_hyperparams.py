"""Hyperparameter heuristics from the paper."""

import pytest

from repro.models.hyperparams import (
    ModelConfig,
    attention_heads_for,
    embedding_dim_for_catalog,
)


class TestEmbeddingDimHeuristic:
    @pytest.mark.parametrize(
        "catalog,expected",
        [
            (10_000, 10),
            (100_000, 18),
            (1_000_000, 32),
            (10_000_000, 57),
            (20_000_000, 67),
        ],
    )
    def test_paper_catalog_sizes(self, catalog, expected):
        """ceil(C ** 0.25) for the exact catalog sizes the paper uses."""
        assert embedding_dim_for_catalog(catalog) == expected

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            embedding_dim_for_catalog(0)


class TestAttentionHeads:
    def test_divisibility(self):
        for dim in (10, 18, 32, 57, 67, 64):
            heads = attention_heads_for(dim)
            assert dim % heads == 0
            assert 1 <= heads <= 4

    def test_prefers_more_heads(self):
        assert attention_heads_for(32) == 4
        assert attention_heads_for(18) == 2
        assert attention_heads_for(57) == 1


class TestModelConfig:
    def test_for_catalog_applies_heuristic(self):
        config = ModelConfig.for_catalog(1_000_000)
        assert config.embedding_dim == 32
        assert config.num_items == 1_000_000

    def test_defaults(self):
        config = ModelConfig.for_catalog(100)
        assert config.top_k == 21  # paper's recommendation count
        assert config.max_session_length == 50
