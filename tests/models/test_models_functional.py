"""Functional behaviour shared by all ten SBR models."""

import numpy as np
import pytest

from repro.models import (
    BENCHMARK_MODELS,
    ModelConfig,
    create_model,
)
from repro.tensor import Tensor, cost_trace

CONFIG = ModelConfig.for_catalog(5_000, top_k=10)
SESSION = [3, 99, 3, 4702, 17]


@pytest.fixture(scope="module")
def models():
    return {name: create_model(name, CONFIG) for name in BENCHMARK_MODELS}


class TestRecommendContract:
    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_returns_top_k_item_ids(self, models, name):
        recs = models[name].recommend(SESSION)
        assert recs.shape == (10,)
        assert recs.dtype == np.int64
        assert np.all(recs >= 0) and np.all(recs < CONFIG.num_items)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_recommendations_are_distinct(self, models, name):
        recs = models[name].recommend(SESSION)
        assert len(set(recs.tolist())) == len(recs)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_deterministic(self, models, name):
        first = models[name].recommend(SESSION)
        second = models[name].recommend(SESSION)
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_input_sensitivity(self, models, name):
        """Different sessions should (generally) produce different output."""
        if name == "noop":
            pytest.skip("noop returns a static answer by design")
        a = models[name].recommend([1, 2, 3])
        b = models[name].recommend([4000, 4500, 4999])
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_single_click_session(self, models, name):
        recs = models[name].recommend([42])
        assert recs.shape == (10,)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_long_session_truncated(self, models, name):
        long_session = list(range(1, 200))
        recs = models[name].recommend(long_session)
        assert recs.shape == (10,)

    def test_empty_session_rejected(self, models):
        with pytest.raises(ValueError):
            models["gru4rec"].recommend([])

    def test_out_of_catalog_item_rejected(self, models):
        with pytest.raises(ValueError):
            models["gru4rec"].recommend([CONFIG.num_items + 5])


class TestPaddingInvariance:
    """Padding must never leak into the representation."""

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_prefix_consistency(self, models, name):
        """The same session encoded alone or as prefix of padded input
        must yield identical recommendations (padding is masked/causal)."""
        model = models[name]
        items_a, length_a = model.prepare_inputs([7, 8, 9])
        out_a = model(Tensor(items_a), Tensor(length_a)).numpy()
        # identical logical session, manually re-padded
        items_b = items_a.copy()
        out_b = model(Tensor(items_b), Tensor(length_a)).numpy()
        np.testing.assert_array_equal(out_a, out_b)


class TestRepeatNetBehaviour:
    def test_repeat_mechanism_surfaces_session_items(self):
        model = create_model("repeatnet", CONFIG)
        session = [11, 222, 3333]
        recs = model.recommend(session).tolist()
        # The repeat decoder concentrates probability mass on clicked items.
        assert any(item in recs for item in session)


class TestStampLastClickFocus:
    def test_changing_last_click_changes_output(self):
        model = create_model("stamp", CONFIG)
        a = model.recommend([5, 6, 7])
        b = model.recommend([5, 6, 4000])
        assert not np.array_equal(a, b)


class TestCostFootprints:
    def test_repeatnet_is_most_expensive_by_traffic(self, models):
        """The dense one-hot bug dominates everything else at equal C."""
        traffic = {}
        for name in ("repeatnet", "gru4rec", "stamp", "sasrec"):
            model = models[name]
            items, length = model.prepare_inputs(SESSION)
            with cost_trace() as trace:
                model(Tensor(items), Tensor(length))
            traffic[name] = trace.total_activation_bytes
        assert traffic["repeatnet"] > 5 * traffic["gru4rec"]
        assert traffic["repeatnet"] > 5 * traffic["stamp"]

    def test_gnn_models_have_host_ops(self, models):
        for name in ("srgnn", "gcsan"):
            model = models[name]
            items, length = model.prepare_inputs(SESSION)
            with cost_trace() as trace:
                model(Tensor(items), Tensor(length))
            assert trace.host_op_count >= 3, name

    def test_non_gnn_models_have_no_host_ops(self, models):
        for name in ("gru4rec", "narm", "stamp", "sasrec", "sine", "core", "lightsans"):
            model = models[name]
            items, length = model.prepare_inputs(SESSION)
            with cost_trace() as trace:
                model(Tensor(items), Tensor(length))
            assert trace.host_op_count == 0, name

    def test_core_scoring_head_is_heavier_than_sasrec(self, models):
        """CORE normalizes the full table per predict: ~3x param traffic."""
        param_bytes = {}
        for name in ("core", "sasrec"):
            model = models[name]
            items, length = model.prepare_inputs(SESSION)
            with cost_trace() as trace:
                model(Tensor(items), Tensor(length))
            param_bytes[name] = trace.total_param_bytes
        assert param_bytes["core"] > 2 * param_bytes["sasrec"]


class TestResidentBytes:
    def test_virtual_catalog_counted_logically(self):
        config = ModelConfig.for_catalog(10_000_000)
        model = create_model("gru4rec", config)
        expected_table = 10_000_000 * config.embedding_dim * 4
        assert model.resident_bytes() >= expected_table
        # but the actual numpy allocation stays capped
        assert model.item_embedding.weight.nbytes < 100e6

    def test_score_bytes_per_item(self):
        config = ModelConfig.for_catalog(1_000_000)
        model = create_model("stamp", config)
        assert model.score_bytes_per_item() == 4_000_000
