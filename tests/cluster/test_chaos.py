"""Chaos schedules: parsing, event semantics, and the crash→503→restart path."""

import numpy as np
import pytest

from repro.cluster import (
    ChaosSchedule,
    ClusterIPService,
    CrashStorm,
    NetworkDelay,
    PodCrash,
    SlowNode,
    make_infra,
)
from repro.hardware import CPU_E2, LatencyModel
from repro.loadgen.generator import LoadGenerator
from repro.metrics.collector import MetricsCollector
from repro.tensor.ops import CostRecord, CostTrace


def profile_with_latency(seconds):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=seconds * CPU_E2.device.weight_bandwidth)
    )
    return LatencyModel(CPU_E2.device).profile(trace)


def deploy(infra, replicas, service_seconds=0.004, name="t"):
    infra.bucket.upload("m", b"x" * 64)
    return infra.cluster.deploy_model(
        name=name,
        instance_type=CPU_E2,
        replicas=replicas,
        artifact_path="m",
        service_profile=profile_with_latency(service_seconds),
        resident_bytes=1e6,
        score_bytes_per_item=4e3,
    )


def drive_with_chaos(infra, deployment, schedule, target_rps, duration_s,
                     retry_policy=None):
    """Load + chaos installed at load start; returns (collector, state)."""
    collector = MetricsCollector()
    sim = infra.simulator
    state = {}

    def sessions():
        while True:
            yield np.array([1, 2, 3], dtype=np.int64)

    def coordinator():
        yield deployment.ready_signal
        service = ClusterIPService(sim, deployment, np.random.default_rng(0))
        LoadGenerator(
            sim, service.submit, sessions(),
            target_rps=target_rps, duration_s=duration_s, collector=collector,
            retry_policy=retry_policy,
            retry_rng=np.random.default_rng(1) if retry_policy else None,
        ).start()
        state["service"] = service
        state["load_started"] = sim.now
        if schedule is not None:
            state["controller"] = schedule.install(
                sim, cluster=infra.cluster, deployment=deployment,
                service=service,
            )

    sim.spawn(coordinator())
    sim.run()
    return collector, state


class TestParsing:
    def test_every_kind_parses(self):
        schedule = ChaosSchedule.parse(
            "crash@150:pod=1:restart=20,"
            "storm@200:count=3:stagger=0.5:restart=none,"
            "slow@100:factor=3:dur=30,"
            "netdelay@50:add=0.005:dur=30"
        )
        kinds = [event.kind for event in schedule.events]
        assert kinds == ["crash", "storm", "slow", "netdelay"]
        crash, storm, slow, netdelay = schedule.events
        assert crash == PodCrash(at_s=150.0, pod_index=1, restart_after_s=20.0)
        assert storm.restart_after_s is None
        assert slow.duration_s == 30.0
        assert netdelay.extra_s == 0.005

    def test_spec_string_round_trip(self):
        text = "crash@150:pod=1:restart=none,slow@100:pod=0:factor=3:dur=30"
        schedule = ChaosSchedule.parse(text)
        assert ChaosSchedule.parse(schedule.spec_string()) == schedule

    def test_bad_event_kind_raises(self):
        with pytest.raises(ValueError):
            ChaosSchedule.parse("explode@10")

    def test_missing_time_raises(self):
        with pytest.raises(ValueError):
            ChaosSchedule.parse("crash")

    def test_unknown_option_raises(self):
        with pytest.raises(ValueError):
            ChaosSchedule.parse("crash@10:sponge=3")

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowNode(factor=0.0)
        with pytest.raises(ValueError):
            CrashStorm(count=0)
        with pytest.raises(ValueError):
            NetworkDelay(extra_s=-1.0)
        with pytest.raises(ValueError):
            ChaosSchedule(events=(PodCrash(at_s=-5.0),))


class TestCrashEvents:
    def test_crash_then_restart_rejoins_rotation(self):
        """S5 path: crash → 503s while down → restarted pod serves again."""
        infra = make_infra(seed=11)
        deployment = deploy(infra, replicas=1)
        schedule = ChaosSchedule(
            events=(PodCrash(at_s=60.0, restart_after_s=15.0),)
        )
        collector, state = drive_with_chaos(
            infra, deployment, schedule, target_rps=40, duration_s=180
        )
        # The outage produced client-visible errors...
        assert collector.errors > 0
        # ...including 503s served by the ClusterIP with zero ready pods.
        assert state["service"].rejected_no_backend > 0
        # The restarted pod rejoined and served the tail of the run.
        assert len(deployment.ready_pods) == 1
        restart_second = int(state["load_started"] + 60.0 + 15.0)
        late_ok = sum(
            bucket.ok for bucket in collector.buckets()
            if bucket.second > restart_second + 30
        )
        assert late_ok > 0
        assert collector.total == collector.ok + collector.errors

    def test_crash_without_restart_stays_down(self):
        infra = make_infra(seed=12)
        deployment = deploy(infra, replicas=2)
        schedule = ChaosSchedule(
            events=(PodCrash(at_s=30.0, pod_index=0, restart_after_s=None),)
        )
        collector, state = drive_with_chaos(
            infra, deployment, schedule, target_rps=60, duration_s=90
        )
        assert len(deployment.ready_pods) == 1
        assert state["controller"].events_fired == 1
        # The survivor kept the service up.
        assert collector.ok > collector.errors

    def test_storm_crashes_multiple_pods(self):
        infra = make_infra(seed=13)
        deployment = deploy(infra, replicas=3)
        schedule = ChaosSchedule(
            events=(CrashStorm(at_s=30.0, count=2, stagger_s=1.0,
                               restart_after_s=None),)
        )
        _collector, _state = drive_with_chaos(
            infra, deployment, schedule, target_rps=60, duration_s=90
        )
        assert len(deployment.ready_pods) == 1

    def test_event_log_records_fired_events(self):
        infra = make_infra(seed=14)
        deployment = deploy(infra, replicas=1)
        schedule = ChaosSchedule.parse("crash@20:restart=10,slow@50:factor=2:dur=5")
        _collector, state = drive_with_chaos(
            infra, deployment, schedule, target_rps=20, duration_s=90
        )
        fired = state["controller"].fired
        assert [event["kind"] for event in fired] == ["crash", "slow"]
        # Times are absolute simulator stamps at/after load start + at_s.
        assert fired[0]["at_s"] >= state["load_started"] + 20.0


class TestDegradationEvents:
    def test_slow_node_degrades_then_restores(self):
        infra = make_infra(seed=15)
        deployment = deploy(infra, replicas=1, service_seconds=0.004)
        schedule = ChaosSchedule(
            events=(SlowNode(at_s=30.0, factor=10.0, duration_s=20.0),)
        )
        collector, state = drive_with_chaos(
            infra, deployment, schedule, target_rps=30, duration_s=120
        )
        started = state["load_started"]
        window = [b for b in collector.buckets()
                  if started + 32 < b.second < started + 48 and b.p90_ms()]
        nominal = [b for b in collector.buckets()
                   if started + 60 < b.second < started + 110 and b.p90_ms()]
        assert window and nominal
        degraded_p90 = np.median([b.p90_ms() for b in window])
        nominal_p90 = np.median([b.p90_ms() for b in nominal])
        assert degraded_p90 > 3.0 * nominal_p90
        # Slowdown factor restored after the window.
        assert deployment.pods[0].server.slowdown == 1.0

    def test_network_delay_window(self):
        infra = make_infra(seed=16)
        deployment = deploy(infra, replicas=1)
        schedule = ChaosSchedule(
            events=(NetworkDelay(at_s=30.0, extra_s=0.05, duration_s=20.0),)
        )
        collector, state = drive_with_chaos(
            infra, deployment, schedule, target_rps=20, duration_s=120
        )
        started = state["load_started"]
        window = [b for b in collector.buckets()
                  if started + 32 < b.second < started + 48 and b.p90_ms()]
        after = [b for b in collector.buckets()
                 if started + 60 < b.second < started + 110 and b.p90_ms()]
        # Both network legs carry the extra 50 ms during the window.
        assert np.median([b.p90_ms() for b in window]) > 100.0
        assert np.median([b.p90_ms() for b in after]) < 50.0
        assert state["service"].extra_latency_s == 0.0

    def test_netdelay_without_service_raises_at_fire_time(self):
        infra = make_infra(seed=17)
        schedule = ChaosSchedule(events=(NetworkDelay(at_s=0.0),))
        schedule.install(infra.simulator)
        with pytest.raises(ValueError):
            infra.simulator.run()


class TestRetryUnderChaos:
    def test_retries_bridge_a_restart(self):
        """The PR's acceptance scenario: same seed, one mid-ramp crash —
        retries cut the terminal error rate by an order of magnitude."""
        from repro.loadgen import RetryPolicy

        rates = {}
        for label, policy in (
            ("off", None),
            ("on", RetryPolicy(max_retries=8, base_backoff_s=0.5,
                               max_backoff_s=5.0, jitter=0.5)),
        ):
            infra = make_infra(seed=18)
            deployment = deploy(infra, replicas=1)
            schedule = ChaosSchedule(
                events=(PodCrash(at_s=15.0, restart_after_s=10.0),)
            )
            collector, _state = drive_with_chaos(
                infra, deployment, schedule, target_rps=40, duration_s=60,
                retry_policy=policy,
            )
            total = collector.ok + collector.errors
            rates[label] = collector.errors / total
        assert rates["off"] > 0.05
        assert rates["on"] < rates["off"] / 5.0
