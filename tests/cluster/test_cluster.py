"""Kubernetes-like cluster: storage, deployments, readiness, service."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ClusterIPService,
    DeploymentError,
    StorageBucket,
    make_infra,
)
from repro.hardware import CPU_E2, GPU_T4, GPU_A100, LatencyModel
from repro.serving.batching import BatchingConfig
from repro.serving.request import RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def small_profile(device):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e4))
    return LatencyModel(device).profile(trace)


class TestStorageBucket:
    def test_upload_download_roundtrip(self):
        bucket = StorageBucket()
        bucket.upload("models/a.pt", b"payload")
        payload, transfer_s = bucket.download("models/a.pt")
        assert payload == b"payload"
        assert transfer_s == pytest.approx(7 / StorageBucket.DOWNLOAD_BANDWIDTH)

    def test_missing_blob_raises(self):
        with pytest.raises(KeyError):
            StorageBucket().download("nope")

    def test_list_with_prefix(self):
        bucket = StorageBucket()
        bucket.upload("models/a", b"1")
        bucket.upload("models/b", b"2")
        bucket.upload("results/r", b"3")
        assert bucket.list_blobs("models/") == ["models/a", "models/b"]

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            StorageBucket().upload("", b"x")

    def test_delete_is_idempotent(self):
        bucket = StorageBucket()
        bucket.upload("x", b"1")
        bucket.delete("x")
        bucket.delete("x")
        assert not bucket.exists("x")


class TestDeploymentLifecycle:
    def _deploy(self, replicas=2):
        infra = make_infra(seed=5)
        infra.bucket.upload("models/test.pt", b"x" * 1000)
        deployment = infra.cluster.deploy_model(
            name="test",
            instance_type=CPU_E2,
            replicas=replicas,
            artifact_path="models/test.pt",
            service_profile=small_profile(CPU_E2.device),
            resident_bytes=1e6,
            score_bytes_per_item=4e3,
        )
        return infra, deployment

    def test_pods_become_ready_after_provisioning(self):
        infra, deployment = self._deploy()
        assert not deployment.all_ready
        infra.simulator.run()
        assert deployment.all_ready
        assert deployment.ready_signal.fired
        for pod in deployment.pods:
            assert pod.server is not None
            # provision (>=25s) + boot (8s) at minimum
            assert pod.ready_at > 30.0

    def test_ready_signal_fires_once_all_pods_up(self):
        infra, deployment = self._deploy(replicas=3)
        ready_times = []
        def watcher():
            yield deployment.ready_signal
            ready_times.append(infra.simulator.now)
        infra.simulator.spawn(watcher())
        infra.simulator.run()
        assert ready_times[0] == pytest.approx(
            max(p.ready_at for p in deployment.pods)
        )

    def test_missing_artifact_rejected(self):
        infra = make_infra(seed=5)
        with pytest.raises(DeploymentError):
            infra.cluster.deploy_model(
                name="test",
                instance_type=CPU_E2,
                replicas=1,
                artifact_path="models/absent.pt",
                service_profile=small_profile(CPU_E2.device),
                resident_bytes=1e6,
                score_bytes_per_item=4e3,
            )

    def test_invalid_replicas(self):
        infra = make_infra(seed=5)
        infra.bucket.upload("m", b"x")
        with pytest.raises(ValueError):
            infra.cluster.deploy_model(
                name="t", instance_type=CPU_E2, replicas=0, artifact_path="m",
                service_profile=small_profile(CPU_E2.device),
                resident_bytes=1.0, score_bytes_per_item=1.0,
            )


class TestMemoryFeasibility:
    def test_oversized_model_rejected_on_gpu(self):
        """A 20M-item catalog table cannot even load on a T4 next to its
        score buffers... unless batch is capped, which fit_batching does —
        here we force an impossible residency."""
        with pytest.raises(DeploymentError):
            Cluster.fit_batching(GPU_T4, resident_bytes=15e9, score_bytes_per_item=8e7)

    def test_batch_capped_to_memory(self):
        config = Cluster.fit_batching(
            GPU_T4, resident_bytes=2.3e9, score_bytes_per_item=4e7
        )
        expected = int((16e9 - 2.3e9 - 2e9) // 4e7)
        assert config.max_batch_size == expected
        assert config.max_batch_size < 1024

    def test_small_model_keeps_requested_batch(self):
        config = Cluster.fit_batching(
            GPU_A100, resident_bytes=1e8, score_bytes_per_item=4e4,
            requested=BatchingConfig(max_batch_size=512),
        )
        assert config.max_batch_size == 512

    def test_cpu_not_capped(self):
        config = Cluster.fit_batching(
            CPU_E2, resident_bytes=1e9, score_bytes_per_item=1e9
        )
        assert config.max_batch_size == BatchingConfig().max_batch_size


class TestClusterIPService:
    def test_round_robin_over_ready_pods(self):
        infra = make_infra(seed=6)
        infra.bucket.upload("m", b"x" * 100)
        deployment = infra.cluster.deploy_model(
            name="rr", instance_type=CPU_E2, replicas=3, artifact_path="m",
            service_profile=small_profile(CPU_E2.device),
            resident_bytes=1e6, score_bytes_per_item=4e3,
        )
        sim = infra.simulator
        responses = []

        def run_traffic():
            yield deployment.ready_signal
            service = ClusterIPService(sim, deployment, np.random.default_rng(0))
            for index in range(9):
                request = RecommendationRequest(
                    request_id=index, session_id=index,
                    session_items=np.array([1], dtype=np.int64), sent_at=sim.now,
                )
                service.submit(request, responses.append)
                yield 0.01

        sim.spawn(run_traffic())
        sim.run()
        assert len(responses) == 9
        # Round robin: each pod served 3 requests.
        counts = [pod.server.completed for pod in deployment.pods]
        assert counts == [3, 3, 3]

    def test_network_latency_added(self):
        infra = make_infra(seed=7)
        infra.bucket.upload("m", b"x")
        deployment = infra.cluster.deploy_model(
            name="net", instance_type=CPU_E2, replicas=1, artifact_path="m",
            service_profile=small_profile(CPU_E2.device),
            resident_bytes=1e6, score_bytes_per_item=4e3,
        )
        sim = infra.simulator
        holder = {}

        def run_one():
            yield deployment.ready_signal
            service = ClusterIPService(sim, deployment, np.random.default_rng(0))
            request = RecommendationRequest(
                request_id=0, session_id=0,
                session_items=np.array([1], dtype=np.int64), sent_at=sim.now,
            )
            service.submit(request, lambda r: holder.update(response=r))

        sim.spawn(run_one())
        sim.run()
        response = holder["response"]
        # e2e latency > pure inference (network both ways + overheads).
        assert response.latency_s > response.inference_s

    def test_submit_before_ready_raises(self):
        infra = make_infra(seed=8)
        infra.bucket.upload("m", b"x")
        deployment = infra.cluster.deploy_model(
            name="early", instance_type=CPU_E2, replicas=1, artifact_path="m",
            service_profile=small_profile(CPU_E2.device),
            resident_bytes=1e6, score_bytes_per_item=4e3,
        )
        service = ClusterIPService(
            infra.simulator, deployment, np.random.default_rng(0)
        )
        request = RecommendationRequest(
            request_id=0, session_id=0,
            session_items=np.array([1], dtype=np.int64), sent_at=0.0,
        )
        with pytest.raises(RuntimeError):
            service.submit(request, lambda r: None)


class TestInfrastructure:
    def test_make_infra_provisions_components(self):
        infra = make_infra(seed=1)
        assert infra.bucket is not None
        assert infra.cluster is not None
        assert infra.service_accounts

    def test_reset_simulator_keeps_bucket(self):
        infra = make_infra(seed=1)
        infra.bucket.upload("keep", b"me")
        old_sim = infra.simulator
        infra.reset_simulator()
        assert infra.simulator is not old_sim
        assert infra.bucket.exists("keep")
