"""Failure injection and horizontal pod autoscaling."""

import itertools

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterIPService,
    HorizontalPodAutoscaler,
    make_infra,
)
from repro.hardware import CPU_E2, LatencyModel
from repro.loadgen.generator import LoadGenerator
from repro.metrics.collector import MetricsCollector
from repro.tensor.ops import CostRecord, CostTrace


def profile_with_latency(seconds):
    """A CPU profile whose single-request latency is ~`seconds`."""
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=seconds * CPU_E2.device.weight_bandwidth)
    )
    return LatencyModel(CPU_E2.device).profile(trace)


def deploy(infra, replicas, service_seconds=0.004, name="t"):
    infra.bucket.upload("m", b"x" * 64)
    return infra.cluster.deploy_model(
        name=name,
        instance_type=CPU_E2,
        replicas=replicas,
        artifact_path="m",
        service_profile=profile_with_latency(service_seconds),
        resident_bytes=1e6,
        score_bytes_per_item=4e3,
    )


def drive(infra, deployment, target_rps, duration_s, collector=None):
    """Standard loadgen against the deployment; returns the collector."""
    collector = collector or MetricsCollector()
    sim = infra.simulator

    def sessions():
        while True:
            yield np.array([1, 2, 3], dtype=np.int64)

    def coordinator():
        yield deployment.ready_signal
        service = ClusterIPService(sim, deployment, np.random.default_rng(0))
        LoadGenerator(
            sim, service.submit, sessions(),
            target_rps=target_rps, duration_s=duration_s, collector=collector,
        ).start()

    sim.spawn(coordinator())
    return collector


class TestPodFailure:
    def test_crash_fails_queued_requests(self):
        infra = make_infra(seed=1)
        deployment = deploy(infra, replicas=2)
        collector = drive(infra, deployment, target_rps=100, duration_s=120)
        # Crash pod 0 mid-run, never restart it.
        infra.cluster.inject_pod_failure(
            deployment, 0, at_time=150.0, restart_after=None
        )
        infra.simulator.run()
        assert collector.errors > 0  # the crash dropped in-flight requests
        # Survivor kept serving: large majority of traffic succeeded.
        assert collector.ok > collector.errors * 5
        assert len(deployment.ready_pods) == 1

    def test_restart_restores_capacity(self):
        infra = make_infra(seed=2)
        deployment = deploy(infra, replicas=2)
        collector = drive(infra, deployment, target_rps=80, duration_s=200)
        infra.cluster.inject_pod_failure(
            deployment, 0, at_time=150.0, restart_after=15.0
        )
        infra.simulator.run()
        assert len(deployment.ready_pods) == 2
        restarted = deployment.pods[0]
        assert restarted.server.name.endswith("restarted")
        assert restarted.ready_at > 150.0

    def test_total_outage_yields_503s_not_crashes(self):
        infra = make_infra(seed=3)
        deployment = deploy(infra, replicas=1)
        collector = drive(infra, deployment, target_rps=50, duration_s=200)
        infra.cluster.inject_pod_failure(
            deployment, 0, at_time=150.0, restart_after=None
        )
        infra.simulator.run()
        assert collector.errors > 0
        # The run completed without exceptions and every request got an
        # answer (conservation despite the outage).
        assert collector.total == collector.ok + collector.errors

    def test_requests_conserved_through_failures(self):
        """Every request sent receives exactly one response."""
        infra = make_infra(seed=4)
        deployment = deploy(infra, replicas=3)
        collector = drive(infra, deployment, target_rps=120, duration_s=180)
        infra.cluster.inject_pod_failure(deployment, 1, 130.0, restart_after=10.0)
        infra.cluster.inject_pod_failure(deployment, 2, 160.0, restart_after=None)
        infra.simulator.run()
        sent = sum(bucket.sent for bucket in collector.buckets())
        assert sent == collector.ok + collector.errors


class TestAutoscaler:
    def test_scales_up_under_pressure(self):
        infra = make_infra(seed=5)
        # One slow pod (~25 ms/request, 5 workers -> ~200 rps capacity)
        # facing a 400 rps ramp: queue pressure must trigger scale-up.
        deployment = deploy(infra, replicas=1, service_seconds=0.025)
        autoscaler = HorizontalPodAutoscaler(
            infra.cluster, deployment,
            AutoscalerConfig(min_replicas=1, max_replicas=4,
                             target_queue_per_pod=3.0, interval_s=10.0),
        )
        collector = drive(infra, deployment, target_rps=400, duration_s=300)

        def start_hpa():
            yield deployment.ready_signal
            autoscaler.start()

        infra.simulator.spawn(start_hpa())
        infra.simulator.run(until=500.0)
        up_events = [e for e in autoscaler.events if e.direction == "up"]
        assert up_events, "expected at least one scale-up"
        assert max(e.to_replicas for e in up_events) >= 2
        # New pods actually came up at some point during the run.
        assert sum(1 for p in deployment.pods if p.ready_at < 500.0) >= 2
        # After the ramp ended the controller scaled back down.
        down_events = [e for e in autoscaler.events if e.direction == "down"]
        assert down_events and down_events[-1].time > up_events[-1].time

    def test_respects_max_replicas(self):
        infra = make_infra(seed=6)
        deployment = deploy(infra, replicas=1, service_seconds=0.05)
        autoscaler = HorizontalPodAutoscaler(
            infra.cluster, deployment,
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             target_queue_per_pod=1.0, interval_s=10.0),
        )
        drive(infra, deployment, target_rps=600, duration_s=240)

        def start_hpa():
            yield deployment.ready_signal
            autoscaler.start()

        infra.simulator.spawn(start_hpa())
        infra.simulator.run(until=500.0)
        assert len(deployment.pods) <= 2

    def test_scales_down_after_stabilization(self):
        infra = make_infra(seed=7)
        deployment = deploy(infra, replicas=3, service_seconds=0.002)
        autoscaler = HorizontalPodAutoscaler(
            infra.cluster, deployment,
            AutoscalerConfig(min_replicas=1, max_replicas=4,
                             target_queue_per_pod=2.0, interval_s=10.0,
                             scale_down_intervals=2),
        )
        # Nearly idle traffic.
        drive(infra, deployment, target_rps=5, duration_s=200)

        def start_hpa():
            yield deployment.ready_signal
            autoscaler.start()

        infra.simulator.spawn(start_hpa())
        infra.simulator.run(until=400.0)
        down_events = [e for e in autoscaler.events if e.direction == "down"]
        assert down_events
        assert len(deployment.ready_pods) < 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=3, max_replicas=1)
        with pytest.raises(ValueError):
            AutoscalerConfig(target_queue_per_pod=0)
