"""Health-aware routing: policy parsing, outlier ejection / half-open
probes, LOR steering, the no-backend round-trip charge, and round-robin
correctness under rotation-membership churn."""

import numpy as np
import pytest

from repro.cluster import ClusterIPService, RoutingPolicy, make_infra
from repro.cluster.routing import partition_by_shard
from repro.hardware import CPU_E2, LatencyModel
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.simulation import Signal, Simulator
from repro.tensor.ops import CostRecord, CostTrace


def profile_with_latency(seconds):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=seconds * CPU_E2.device.weight_bandwidth)
    )
    return LatencyModel(CPU_E2.device).profile(trace)


def deploy(infra, replicas, service_seconds=0.004, name="t"):
    infra.bucket.upload("m", b"x" * 64)
    return infra.cluster.deploy_model(
        name=name,
        instance_type=CPU_E2,
        replicas=replicas,
        artifact_path="m",
        service_profile=profile_with_latency(service_seconds),
        resident_bytes=1e6,
        score_bytes_per_item=4e3,
    )


def make_request(request_id, now):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1, 2, 3], dtype=np.int64),
        sent_at=now,
    )


class TestRoutingPolicyParsing:
    def test_defaults(self):
        policy = RoutingPolicy.parse("")
        assert policy == RoutingPolicy()
        assert policy.discipline == "rr"
        assert policy.eject_after is None

    def test_full_spec_round_trips(self):
        policy = RoutingPolicy.parse("lor,eject=3,cooldown=15,lag=2")
        assert policy.discipline == "lor"
        assert policy.eject_after == 3
        assert policy.cooldown_s == 15.0
        assert policy.endpoint_lag_s == 2.0
        assert RoutingPolicy.parse(policy.spec_string()) == policy

    def test_unknown_tokens_rejected(self):
        with pytest.raises(ValueError):
            RoutingPolicy.parse("p2c")
        with pytest.raises(ValueError):
            RoutingPolicy.parse("ejekt=3")
        with pytest.raises(ValueError):
            RoutingPolicy(eject_after=0)


class TestNoBackendRoundTrip:
    """The service-answered 503 charges both network legs (satellite fix)."""

    def _no_backend_latency(self, telemetry=None):
        infra = make_infra(seed=3)
        sim = infra.simulator
        deployment = deploy(infra, replicas=1)
        if telemetry is not None:
            telemetry.bind(sim)
        responses = []

        def coordinator():
            yield deployment.ready_signal
            # Crash the only pod permanently, then submit into the void.
            infra.cluster.inject_pod_failure(
                deployment, 0, at_time=sim.now + 1.0, restart_after=None
            )
            service = ClusterIPService(
                sim, deployment, np.random.default_rng(0), telemetry=telemetry
            )
            # Pin the network legs so the latency is exactly countable.
            service._network_delay = lambda: 0.001
            yield 5.0
            service.submit(make_request(7, sim.now), responses.append)

        sim.spawn(coordinator())
        sim.run()
        (response,) = responses
        assert response.status == HTTP_SERVICE_UNAVAILABLE
        return response

    def test_latency_covers_both_network_legs(self):
        response = self._no_backend_latency()
        assert response.latency_s == pytest.approx(0.002)

    def test_rejection_emits_the_sent_span(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        self._no_backend_latency(telemetry)
        sent_spans = [
            s for s in telemetry.trace.find("sent") if s.trace_id == 7
        ]
        assert len(sent_spans) == 1
        assert sent_spans[0].finished
        assert sent_spans[0].attrs.get("no_backend") is True


class TestOutlierEjection:
    def _drive(self, routing, crash_at=10.0, restart_after=None, duration=40.0):
        """Steady 20 req/s against 2 replicas; pod 0 crashes ``crash_at``
        seconds after readiness (times below are relative to load start)."""
        infra = make_infra(seed=4)
        sim = infra.simulator
        deployment = deploy(infra, replicas=2)
        responses = []
        holder = {}

        def coordinator():
            yield deployment.ready_signal
            infra.cluster.inject_pod_failure(
                deployment, 0, at_time=sim.now + crash_at,
                restart_after=restart_after,
            )
            service = ClusterIPService(
                sim, deployment, np.random.default_rng(0), routing=routing
            )
            holder["service"] = service
            holder["started_at"] = sim.now
            for index in range(int(duration / 0.05)):
                service.submit(make_request(index, sim.now), responses.append)
                yield 0.05

        sim.spawn(coordinator())
        sim.run()
        return holder["service"], responses, holder["started_at"]

    def test_consecutive_503s_eject_the_dead_pod(self):
        policy = RoutingPolicy(eject_after=3, cooldown_s=5.0, endpoint_lag_s=60.0)
        service, responses, _ = self._drive(policy)
        errors = [r for r in responses if r.status != HTTP_OK]
        assert service.ejections >= 1
        # The breaker caps the damage at roughly eject_after failures plus
        # the occasional half-open probe; without it the 60 s endpoint lag
        # would feed the dead pod half the traffic for the rest of the run.
        no_eject_policy = RoutingPolicy(endpoint_lag_s=60.0)
        _, baseline_responses, _ = self._drive(no_eject_policy)
        baseline_errors = [
            r for r in baseline_responses if r.status != HTTP_OK
        ]
        assert len(errors) < len(baseline_errors)

    def test_half_open_probe_restores_a_recovered_pod(self):
        policy = RoutingPolicy(eject_after=3, cooldown_s=4.0, endpoint_lag_s=60.0)
        service, responses, started_at = self._drive(
            policy, crash_at=10.0, restart_after=8.0
        )
        assert service.ejections >= 1
        assert service.probe_recoveries >= 1
        # After recovery + probe, both pods serve again: the tail of the
        # run is error-free.
        tail = [r for r in responses if r.completed_at > started_at + 35.0]
        assert tail
        assert all(r.status == HTTP_OK for r in tail)

    def test_lor_steers_away_from_a_slow_pod(self):
        infra = make_infra(seed=5)
        sim = infra.simulator
        deployment = deploy(infra, replicas=2, service_seconds=0.004)
        responses = []
        counts = {}

        def coordinator():
            yield deployment.ready_signal
            deployment.pods[0].server.set_slowdown(25.0)
            service = ClusterIPService(
                sim, deployment, np.random.default_rng(0),
                routing=RoutingPolicy(discipline="lor"),
            )
            for index in range(400):
                service.submit(make_request(index, sim.now), responses.append)
                yield 0.005
            counts["slow"] = deployment.pods[0].server.completed
            counts["fast"] = deployment.pods[1].server.completed

        sim.spawn(coordinator())
        sim.run()
        # Least-outstanding-requests sends the bulk of traffic to the fast
        # replica; plain round-robin would split 50/50.
        assert deployment.pods[1].server.completed > 2 * deployment.pods[0].server.completed


class FakePod:
    def __init__(self, name):
        self.name = name
        self.ready = True
        self.server = object()  # non-None: pod exists for the lag window


class FakeDeployment:
    def __init__(self, pods):
        self.pods = pods
        self.ready_signal = Signal("fake-ready")

    @property
    def ready_pods(self):
        return [p for p in self.pods if p.ready]


class TestRoundRobinChurn:
    """Property test: the rotation stays correct while pods churn in and
    out of readiness (fixed seed)."""

    def test_selection_is_valid_and_fair_under_churn(self):
        rng = np.random.default_rng(20240806)
        sim = Simulator()
        pods = [FakePod(f"pod-{i}") for i in range(5)]
        deployment = FakeDeployment(pods)
        service = ClusterIPService(
            sim,
            deployment,
            np.random.default_rng(0),
            routing=RoutingPolicy(discipline="rr"),
        )
        for _round in range(300):
            # Random membership churn, never fully empty.
            for pod in pods:
                pod.ready = bool(rng.integers(0, 2))
            if not any(p.ready for p in pods):
                pods[int(rng.integers(0, len(pods)))].ready = True
            view = service._routing_view()
            assert [p.name for p in view] == [
                p.name for p in pods if p.ready
            ]  # lag=0: the view is exactly the ready set, in pod order
            # Within one stable membership, a full cycle visits every pod
            # the same number of times (the cursor advances by one per
            # pick over a fixed-size candidate list).
            picks = []
            for _ in range(len(view) * 3):
                pod = service._select_pod(service._routing_view())
                assert pod.ready
                picks.append(pod.name)
            counts = {name: picks.count(name) for name in set(picks)}
            assert set(counts) == {p.name for p in view}
            assert all(count == 3 for count in counts.values())

    def test_membership_growth_does_not_starve_new_pods(self):
        sim = Simulator()
        pods = [FakePod("a"), FakePod("b")]
        deployment = FakeDeployment(pods)
        service = ClusterIPService(
            sim,
            deployment,
            np.random.default_rng(0),
            routing=RoutingPolicy(discipline="rr"),
        )
        for _ in range(3):
            service._select_pod(service._routing_view())
        pods.append(FakePod("c"))
        picks = [
            service._select_pod(service._routing_view()).name for _ in range(6)
        ]
        assert picks.count("c") == 2


class TestShardedEjectionContainment:
    """Regression: outlier ejection x catalog sharding. Back-to-back
    crash storms on one shard fully eject its rotation; the fail-open
    guardrail must trip *within that shard group only* — the other
    shards' breakers stay closed and their round-robin stays fair."""

    def _make(self):
        sim = Simulator()
        pods = [FakePod(f"pod-{i}") for i in range(4)]
        for index, pod in enumerate(pods):
            pod.shard = index // 2  # pods 0,1 -> shard 0; pods 2,3 -> shard 1
        deployment = FakeDeployment(pods)
        service = ClusterIPService(
            sim,
            deployment,
            np.random.default_rng(0),
            routing=RoutingPolicy(eject_after=2, cooldown_s=30.0),
        )
        return service

    def _fail(self, service, pod):
        service._observe(
            pod,
            RecommendationResponse(
                request_id=0,
                status=HTTP_SERVICE_UNAVAILABLE,
                completed_at=service.simulator.now,
                latency_s=0.001,
            ),
        )

    def test_storm_on_one_shard_leaves_other_rotations_closed(self):
        service = self._make()
        groups = partition_by_shard(service._routing_view())
        assert set(groups) == {0, 1}
        # Two back-to-back storms against shard 0: every leg routed to it
        # answers 503 until both replicas are ejected, then keeps failing
        # through the fail-open fallback.
        for _storm in range(2):
            for _ in range(2 * len(groups[0])):
                picked = service._select_pod(list(groups[0]))
                assert picked.shard == 0  # never borrows another shard's pod
                self._fail(service, picked)
        assert all(service.pod_ejected(p) for p in groups[0])
        assert service.ejections == len(groups[0])  # re-ejections not recounted
        # Shard 1's breaker never saw those failures: nothing is ejected
        # and a full cycle is still a fair round-robin over its own pods.
        assert not any(service.pod_ejected(p) for p in groups[1])
        picks = [service._select_pod(list(groups[1])).name for _ in range(6)]
        assert {p.name for p in groups[1]} == set(picks)
        assert all(picks.count(name) == 3 for name in set(picks))
        # Shard 0 fails open within its own group: selection degrades to
        # "try an ejected replica" rather than skipping the shard (which
        # would silently drop its catalog slice from every merge).
        fallback = service._select_pod(list(groups[0]))
        assert fallback.shard == 0

    def test_recovered_shard_rejoins_without_disturbing_others(self):
        service = self._make()
        sim = service.simulator
        groups = partition_by_shard(service._routing_view())
        for _ in range(2 * len(groups[0])):
            self._fail(service, service._select_pod(list(groups[0])))
        assert all(service.pod_ejected(p) for p in groups[0])
        # Cooldown elapses; the half-open probe succeeds and shard 0's
        # rotation heals — still without touching shard 1's state.
        sim.run()  # drain nothing: advances no time, keeps determinism
        for state in service._pod_states.values():
            if state.ejected_until is not None:
                state.ejected_until = sim.now  # cooldown expires "now"
        probe = service._select_pod(list(groups[0]))
        assert probe.shard == 0
        service._observe(
            probe,
            RecommendationResponse(
                request_id=1,
                status=HTTP_OK,
                completed_at=sim.now,
                latency_s=0.001,
            ),
        )
        assert service.probe_recoveries == 1
        assert not service.pod_ejected(probe)
        assert not any(service.pod_ejected(p) for p in groups[1])