"""Failure domains: placement spread, home-zone restarts, zone chaos."""

import pytest

from repro.cluster import make_infra
from repro.cluster.chaos import ChaosSchedule, ZoneOutage
from repro.cluster.kubernetes import zone_name
from repro.hardware import CPU_E2, LatencyModel
from repro.sharding.config import ShardingConfig
from repro.tensor.ops import CostRecord, CostTrace


def small_profile(device):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e4))
    return LatencyModel(device).profile(trace)


def deploy(infra, replicas=2, shards=1, zones=1):
    infra.bucket.upload("models/test.pt", b"x" * 1000)
    return infra.cluster.deploy_model(
        name="test",
        instance_type=CPU_E2,
        replicas=replicas,
        artifact_path="models/test.pt",
        service_profile=small_profile(CPU_E2.device),
        resident_bytes=1e6,
        score_bytes_per_item=4e3,
        sharding=ShardingConfig(shards=shards) if shards > 1 else None,
        zones=zones,
    )


class TestZonePlacement:
    def test_zone_names(self):
        assert zone_name(0) == "z0" and zone_name(3) == "z3"

    def test_default_single_domain_assigns_no_zone(self):
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=3)
        assert all(pod.zone == "" for pod in deployment.pods)
        assert deployment.zones == 1
        assert deployment.zone_names == []

    def test_shard_replicas_never_colocate(self):
        """Anti-affinity: with replicas <= zones, each shard's replicas
        occupy pairwise-distinct zones."""
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, shards=3, zones=2)
        assert deployment.zones == 2
        assert deployment.zone_names == ["z0", "z1"]
        by_shard = {}
        for pod in deployment.pods:
            by_shard.setdefault(pod.shard, []).append(pod.zone)
        assert set(by_shard) == {0, 1, 2}
        for shard, zones in by_shard.items():
            assert len(set(zones)) == len(zones), (shard, zones)

    def test_spread_is_even_across_zones(self):
        """More replicas than zones: per-zone counts differ by at most 1."""
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=5, zones=3)
        counts = [len(deployment.pods_in_zone(z)) for z in deployment.zone_names]
        assert sum(counts) == 5
        assert max(counts) - min(counts) <= 1

    def test_zones_must_be_positive(self):
        infra = make_infra(seed=5)
        with pytest.raises(ValueError):
            deploy(infra, zones=0)

    def test_autoscaled_pod_lands_in_least_loaded_zone(self):
        """add_pod backfills the zone where its shard has fewest pods."""
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, zones=3)
        infra.simulator.run()
        # replicas 0,1 sit in z0,z1 -> the new replica must take z2.
        new_pod = infra.cluster.add_pod(deployment)
        assert new_pod.zone == "z2"
        infra.simulator.run()
        counts = [len(deployment.pods_in_zone(z)) for z in deployment.zone_names]
        assert counts == [1, 1, 1]


class TestHomeZoneRestart:
    def test_restarted_pod_keeps_its_zone(self):
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, zones=2)
        infra.simulator.run()
        victim = deployment.pods[1]
        assert victim.zone == "z1" and victim.ready
        crashed_at = infra.simulator.now
        infra.cluster.inject_pod_failure(
            deployment, 1, at_time=crashed_at, restart_after=5.0
        )
        infra.simulator.run()
        assert victim.ready
        assert victim.zone == "z1"
        assert victim.ready_at > crashed_at


class TestZoneOutageChaos:
    def _install(self, infra, deployment, spec):
        schedule = ChaosSchedule.parse(spec)
        return schedule.install(
            infra.simulator,
            cluster=infra.cluster,
            deployment=deployment,
            start_at=infra.simulator.now,
        )

    def test_outage_crashes_exactly_the_domain(self):
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, shards=2, zones=2)
        infra.simulator.run()
        controller = self._install(infra, deployment, "zone@5:name=z0:restart=none")
        infra.simulator.run()
        for pod in deployment.pods:
            assert pod.ready == (pod.zone != "z0"), pod.name
        assert len(controller.zone_outages) == 1
        outage = controller.zone_outages[0]
        assert outage["zone"] == "z0"
        assert len(outage["pods"]) == 2
        assert outage["restart_after_s"] is None
        assert controller.fired[0]["kind"] == "zone"

    def test_outage_restarts_into_home_zone(self):
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, zones=2)
        infra.simulator.run()
        controller = self._install(infra, deployment, "zone@5:name=z0:restart=4")
        infra.simulator.run()
        assert all(pod.ready for pod in deployment.pods)
        assert [pod.zone for pod in deployment.pods] == ["z0", "z1"]
        outage = controller.zone_outages[0]
        victim = deployment.pods[0]
        assert victim.ready_at > outage["at_s"]

    def test_empty_zone_is_a_noop(self):
        """zones=1 placement has no z0 pods: the event fires and logs an
        empty victim list instead of crashing anything."""
        infra = make_infra(seed=5)
        deployment = deploy(infra, replicas=2, zones=1)
        infra.simulator.run()
        controller = self._install(infra, deployment, "zone@5:name=z0")
        infra.simulator.run()
        assert all(pod.ready for pod in deployment.pods)
        assert controller.zone_outages[0]["pods"] == []

    def test_zone_chaos_requires_a_deployment(self):
        from repro.simulation import Simulator

        simulator = Simulator()
        schedule = ChaosSchedule(events=(ZoneOutage(at_s=1.0, zone="z0"),))
        controller = schedule.install(simulator, servers=[])
        with pytest.raises(ValueError):
            simulator.run()

    def test_needs_a_zone_name(self):
        with pytest.raises(ValueError):
            ZoneOutage(at_s=1.0, zone="")
