"""Property: the chaos grammar round-trips for every event kind.

``ChaosSchedule.spec_string()`` is what spec files persist and what the
CLI re-parses; ``parse(spec_string(s)) == s`` must hold for arbitrary
schedules — all five event kinds, every option combination, including
``None`` ("none") optionals and string-valued options (a
:class:`ZoneOutage` zone name, which ``format(value, 'g')`` used to
reject with a TypeError).

Float caveat: ``'g'`` formatting keeps six significant digits, so the
property quantifies over floats that are ``'g'``-stable — exactly the
values a user could have written in a spec string in the first place.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.chaos import (
    ChaosSchedule,
    CrashStorm,
    NetworkDelay,
    PodCrash,
    SlowNode,
    ZoneOutage,
)


def _g_stable(lo, hi):
    """Floats that survive ``format(x, 'g')`` unchanged."""
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    ).map(lambda x: float(format(x, "g")))


times = _g_stable(0.0, 1e6)
optional_restart = st.one_of(st.none(), _g_stable(0.0, 1e4))
optional_duration = st.one_of(st.none(), _g_stable(0.0, 1e4))
#: Zone names must avoid the grammar's structural characters (,:@=) and
#: whitespace — the charset real placements use (z0, eu-west-1b, ...).
zone_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,11}", fullmatch=True)

crashes = st.builds(
    PodCrash,
    at_s=times,
    pod_index=st.integers(0, 64),
    restart_after_s=optional_restart,
    shard=st.one_of(st.none(), st.integers(0, 16)),
)
storms = st.builds(
    CrashStorm,
    at_s=times,
    count=st.integers(1, 32),
    stagger_s=_g_stable(0.0, 60.0),
    restart_after_s=optional_restart,
)
slow_nodes = st.builds(
    SlowNode,
    at_s=times,
    pod_index=st.integers(0, 64),
    factor=_g_stable(0.001, 100.0),
    duration_s=optional_duration,
)
net_delays = st.builds(
    NetworkDelay,
    at_s=times,
    extra_s=_g_stable(0.0, 10.0),
    duration_s=optional_duration,
)
zone_outages = st.builds(
    ZoneOutage,
    at_s=times,
    zone=zone_names,
    restart_after_s=optional_restart,
)

events = st.one_of(crashes, storms, slow_nodes, net_delays, zone_outages)
schedules = st.builds(
    ChaosSchedule, events=st.lists(events, max_size=8).map(tuple)
)


class TestChaosGrammarRoundTrip:
    @given(schedule=schedules)
    @settings(max_examples=300, deadline=None)
    def test_parse_spec_string_identity(self, schedule):
        assert ChaosSchedule.parse(schedule.spec_string()) == schedule

    @given(schedule=schedules)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_a_fixed_point(self, schedule):
        """One round trip reaches the canonical string: re-serializing the
        parsed schedule reproduces it character for character."""
        text = schedule.spec_string()
        assert ChaosSchedule.parse(text).spec_string() == text

    def test_known_kind_examples(self):
        """One worked example per kind (the docstring grammar)."""
        text = (
            "crash@150:pod=0:restart=20,"
            "storm@200:count=3:stagger=1:restart=none,"
            "slow@100:pod=1:factor=3:dur=30,"
            "netdelay@50:add=0.005:dur=30,"
            "zone@60:name=z0:restart=25"
        )
        schedule = ChaosSchedule.parse(text)
        assert [e.kind for e in schedule.events] == [
            "crash", "storm", "slow", "netdelay", "zone",
        ]
        assert ChaosSchedule.parse(schedule.spec_string()) == schedule
