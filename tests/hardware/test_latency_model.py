"""Roofline latency model semantics."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_A100, GPU_T4, LatencyModel
from repro.hardware.device import DeviceModel
from repro.tensor.ops import CostRecord, CostTrace


def trace_of(*records):
    trace = CostTrace()
    for record in records:
        trace.append(record)
    return trace


class TestProfileDecomposition:
    def test_gpu_weight_bytes_go_to_fixed(self):
        record = CostRecord(op="linear", launches=1, param_bytes=1e9)
        profile = LatencyModel(GPU_T4.device).profile(trace_of(record))
        expected = 1e9 / GPU_T4.device.weight_bandwidth
        assert profile.fixed_s == pytest.approx(
            expected + GPU_T4.device.launch_overhead_s
        )

    def test_gpu_activation_bytes_go_to_per_item(self):
        record = CostRecord(op="topk", read_bytes=6e8, write_bytes=0.0)
        profile = LatencyModel(GPU_T4.device).profile(trace_of(record))
        expected = 6e8 / GPU_T4.device.activation_bandwidth
        assert profile.per_item_s == pytest.approx(
            expected + GPU_T4.device.per_request_overhead_s
        )

    def test_cpu_everything_is_per_item(self):
        record = CostRecord(op="linear", launches=1, param_bytes=1e8)
        profile = LatencyModel(CPU_E2.device).profile(trace_of(record))
        assert profile.fixed_s == 0.0
        assert profile.per_item_s > 1e8 / CPU_E2.device.weight_bandwidth

    def test_catalog_scale_multiplies_costs(self):
        unscaled = CostRecord(op="linear", param_bytes=1e6)
        scaled = CostRecord(op="linear", param_bytes=1e6, catalog_scale=100.0)
        model = LatencyModel(GPU_T4.device)
        small = model.profile(trace_of(unscaled))
        large = model.profile(trace_of(scaled))
        ratio = (large.fixed_s - GPU_T4.device.launch_overhead_s) / (
            small.fixed_s - GPU_T4.device.launch_overhead_s
        )
        assert ratio == pytest.approx(100.0)

    def test_batch_invariant_record_amortizes_on_gpu(self):
        """CORE-style table normalization: charged once per batch."""
        invariant = CostRecord(
            op="normalize", read_bytes=1e9, write_bytes=1e9, batch_invariant=True
        )
        profile = LatencyModel(GPU_A100.device).profile(trace_of(invariant))
        assert profile.fixed_s > 0
        assert profile.per_item_s == pytest.approx(
            GPU_A100.device.per_request_overhead_s
        )

    def test_host_op_charges_pcie_and_sync_on_gpu(self):
        host = CostRecord(op="host[x]", host_op=True, transfer_bytes=1.2e7)
        gpu_profile = LatencyModel(GPU_T4.device).profile(trace_of(host))
        base = GPU_T4.device.per_request_overhead_s
        expected = (
            GPU_T4.device.host_sync_overhead_s
            + 1.2e7 / GPU_T4.device.pcie_bandwidth
        )
        assert gpu_profile.per_item_s == pytest.approx(base + expected)

    def test_host_op_cheap_on_cpu(self):
        host = CostRecord(op="host[x]", host_op=True, transfer_bytes=1.2e7)
        cpu_profile = LatencyModel(CPU_E2.device).profile(trace_of(host))
        gpu_profile = LatencyModel(GPU_T4.device).profile(trace_of(host))
        assert cpu_profile.per_item_s < gpu_profile.per_item_s

    def test_compute_vs_memory_roofline(self):
        """Whichever side of the roofline is higher dominates."""
        compute_heavy = CostRecord(op="matmul", flops=1e12)
        memory_heavy = CostRecord(op="scan", read_bytes=1e10)
        model = LatencyModel(GPU_T4.device)
        c = model.profile(trace_of(compute_heavy))
        m = model.profile(trace_of(memory_heavy))
        assert c.per_item_s == pytest.approx(
            1e12 / GPU_T4.device.flops_per_s + GPU_T4.device.per_request_overhead_s
        )
        assert m.per_item_s == pytest.approx(
            1e10 / GPU_T4.device.activation_bandwidth
            + GPU_T4.device.per_request_overhead_s
        )


class TestServiceTimeProfile:
    def test_latency_is_affine_in_batch(self):
        record = CostRecord(op="linear", param_bytes=1e8, write_bytes=1e6)
        profile = LatencyModel(GPU_T4.device).profile(trace_of(record))
        t1, t2, t11 = profile.latency(1), profile.latency(2), profile.latency(11)
        assert t2 - t1 == pytest.approx(profile.per_item_s)
        assert t11 == pytest.approx(profile.fixed_s + 11 * profile.per_item_s)

    def test_rejects_bad_batch(self):
        profile = LatencyModel(GPU_T4.device).profile(trace_of())
        with pytest.raises(ValueError):
            profile.latency(0)

    def test_max_stable_throughput_monotonic_in_batch(self):
        record = CostRecord(op="linear", param_bytes=1e8, write_bytes=1e6)
        profile = LatencyModel(GPU_T4.device).profile(trace_of(record))
        assert profile.max_stable_throughput(256) > profile.max_stable_throughput(4)


class TestMemoryFit:
    def test_fits_small_model(self):
        model = LatencyModel(GPU_T4.device)
        assert model.fits_in_memory(1e9, 128, 4e6)

    def test_rejects_oversized_batch_buffers(self):
        model = LatencyModel(GPU_T4.device)
        assert not model.fits_in_memory(5e9, 1024, 8e7)


class TestDeviceValidation:
    def test_gpu_requires_pcie(self):
        with pytest.raises(ValueError):
            DeviceModel(
                name="bad",
                kind="gpu",
                flops_per_s=1.0,
                weight_bandwidth=1.0,
                activation_bandwidth=1.0,
                launch_overhead_s=0.0,
                per_request_overhead_s=0.0,
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel(
                name="bad",
                kind="tpu",
                flops_per_s=1.0,
                weight_bandwidth=1.0,
                activation_bandwidth=1.0,
                launch_overhead_s=0.0,
                per_request_overhead_s=0.0,
            )

    def test_batching_only_on_accelerators(self):
        assert GPU_T4.device.supports_batching()
        assert not CPU_E2.device.supports_batching()
