"""Multi-cloud instance catalogs."""

import pytest

from repro.hardware.clouds import (
    AWS_INSTANCES,
    AZURE_INSTANCES,
    GCP_INSTANCES,
    all_clouds,
    cloud_catalog,
)
from repro.hardware.instances import instance_by_name


class TestCatalogs:
    def test_gcp_is_the_paper_catalog(self):
        assert [i.name for i in GCP_INSTANCES] == ["CPU", "GPU-T4", "GPU-A100"]

    def test_every_cloud_has_three_tiers(self):
        for catalog in (GCP_INSTANCES, AWS_INSTANCES, AZURE_INSTANCES):
            kinds = [i.device.kind for i in catalog]
            assert kinds.count("cpu") == 1
            assert kinds.count("gpu") == 2

    def test_shared_silicon_shared_devices(self):
        """Same accelerator across clouds = the same roofline model."""
        gcp_t4 = next(i for i in GCP_INSTANCES if "T4" in i.name)
        aws_t4 = next(i for i in AWS_INSTANCES if "T4" in i.name)
        assert gcp_t4.device is aws_t4.device

    def test_lookup_by_cloud(self):
        assert cloud_catalog("aws") is AWS_INSTANCES
        assert cloud_catalog("AZURE") is AZURE_INSTANCES
        with pytest.raises(KeyError):
            cloud_catalog("oraclecloud")

    def test_all_clouds_flat(self):
        assert len(all_clouds()) == 9

    def test_cross_cloud_lookup_by_name(self):
        assert instance_by_name("AWS-g4dn-T4").monthly_cost_usd == 232.0
        assert instance_by_name("azure-nc-a100").device.name == "gpu-a100"
        with pytest.raises(KeyError):
            instance_by_name("AWS-nonexistent")

    def test_prices_positive_and_ordered(self):
        for catalog in (AWS_INSTANCES, AZURE_INSTANCES):
            cpu, t4, a100 = catalog
            assert 0 < cpu.monthly_cost_usd < t4.monthly_cost_usd < a100.monthly_cost_usd


class TestCrossCloudPlanning:
    def test_planner_accepts_aws_instances(self):
        from repro.core import DeploymentPlanner, ExperimentRunner
        from repro.core.spec import Scenario

        planner = DeploymentPlanner(
            runner=ExperimentRunner(seed=77), duration_s=45.0, max_replicas=2
        )
        scenario = Scenario("cross-cloud", 10_000, 100)
        plans = planner.plan(
            scenario, ["stamp"], instances=cloud_catalog("aws")
        )
        cheapest = plans["stamp"].cheapest()
        assert cheapest is not None
        assert cheapest.instance_type == "AWS-m6i"
