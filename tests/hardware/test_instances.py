"""The GCP instance catalog and the paper's prices."""

import pytest

from repro.hardware import (
    CPU_E2,
    GPU_A100,
    GPU_T4,
    INSTANCE_TYPES,
    instance_by_name,
)


class TestCatalog:
    def test_paper_monthly_prices(self):
        """Section III-C: $108.09 / $268.09 / $2,008.80 per month."""
        assert CPU_E2.monthly_cost_usd == pytest.approx(108.09)
        assert GPU_T4.monthly_cost_usd == pytest.approx(268.09)
        assert GPU_A100.monthly_cost_usd == pytest.approx(2008.80)

    def test_paper_table1_costs_scale_linearly(self):
        """Derived Table I cells: 3x CPU = $324, 5x T4 = $1,343 (rounded),
        2x A100 = $4,017, 3x A100 = $6,026."""
        assert round(CPU_E2.cost_for(3)) == 324
        assert round(GPU_T4.cost_for(5)) == 1340  # paper rounds to $1,343
        assert round(GPU_A100.cost_for(2)) == 4018
        assert round(GPU_A100.cost_for(3)) == 6026

    def test_gpu_memory_sizes(self):
        assert GPU_T4.device.memory_bytes == pytest.approx(16e9)
        assert GPU_A100.device.memory_bytes == pytest.approx(40e9)

    def test_lookup_by_name(self):
        assert instance_by_name("GPU-T4") is GPU_T4
        assert instance_by_name("CPU") is CPU_E2

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            instance_by_name("TPU-v5")

    def test_three_instance_types(self):
        assert len(INSTANCE_TYPES) == 3

    def test_device_speed_ordering(self):
        """A100 > T4 > CPU on every streaming axis."""
        assert (
            GPU_A100.device.weight_bandwidth
            > GPU_T4.device.weight_bandwidth
            > CPU_E2.device.weight_bandwidth
        )
        assert (
            GPU_A100.device.flops_per_s
            > GPU_T4.device.flops_per_s
            > CPU_E2.device.flops_per_s
        )
