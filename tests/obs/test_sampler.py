"""Gauge sampler: tick alignment to virtual seconds, and termination."""

import pytest

from repro.obs import MetricRegistry, Sampler, Telemetry
from repro.simulation import Simulator


def run_with_workload(duration_s, interval_s=1.0, registry=None):
    """A simulator kept busy for ``duration_s`` with an attached sampler."""
    sim = Simulator()
    registry = registry or MetricRegistry()
    registry.gauge("clock", fn=lambda: sim.now)
    sampler = Sampler(sim, registry, interval_s=interval_s)

    def workload():
        yield duration_s

    sim.spawn(workload())
    sampler.start()
    sim.run()
    return sim, sampler


class TestTickAlignment:
    def test_ticks_land_on_whole_intervals(self):
        _sim, sampler = run_with_workload(5.0)
        times = sampler.timestamps()
        # One tick per virtual second starting at t=0.
        assert times == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        assert sampler.ticks == len(times)

    def test_sampled_values_read_gauges_at_tick_time(self):
        _sim, sampler = run_with_workload(3.0)
        assert sampler.values("clock") == pytest.approx(sampler.timestamps())

    def test_custom_interval(self):
        _sim, sampler = run_with_workload(2.0, interval_s=0.5)
        assert sampler.timestamps() == pytest.approx(
            [0.0, 0.5, 1.0, 1.5, 2.0]
        )

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            Sampler(Simulator(), MetricRegistry(), interval_s=0.0)


class TestTermination:
    def test_sampler_does_not_keep_simulation_alive(self):
        """Self-parking: once the sampler is the only pending event the run
        must drain — the clock stops within one interval of the workload."""
        sim, _sampler = run_with_workload(7.3)
        assert sim.now <= 7.3 + 1.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        registry = MetricRegistry()
        registry.gauge("clock", fn=lambda: sim.now)
        sampler = Sampler(sim, registry, interval_s=1.0)

        def workload():
            yield 2.5
            sampler.stop()
            yield 2.5

        sim.spawn(workload())
        sampler.start()
        sim.run()
        assert all(t <= 2.5 for t in sampler.timestamps())

    def test_start_is_idempotent(self):
        sim, sampler = run_with_workload(0.0)
        before = sampler.ticks
        sampler.start()  # second call must not restart sampling
        sim.run()
        assert sampler.ticks == before


class TestTelemetryBundle:
    def test_bind_starts_sampler_on_simulator_clock(self):
        sim = Simulator()
        telemetry = Telemetry()
        assert telemetry.now() == 0.0
        telemetry.metrics.gauge("pending", fn=lambda: 1)
        telemetry.bind(sim)

        def workload():
            yield 2.0

        sim.spawn(workload())
        sim.run()
        assert telemetry.bound
        assert telemetry.sampler.ticks >= 3
        assert telemetry.now() == sim.now

    def test_rebind_replaces_sampler(self):
        telemetry = Telemetry()
        first = Simulator()
        telemetry.bind(first)
        old_sampler = telemetry.sampler
        telemetry.bind(Simulator())
        assert telemetry.sampler is not old_sampler
        assert old_sampler._stopped
