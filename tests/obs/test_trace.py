"""Span recording: nesting, ordering, and virtual-clock timestamps."""

import pytest

from repro.obs import Span, Trace
from repro.simulation import Simulator


class TestNesting:
    def test_first_span_becomes_root(self):
        trace = Trace()
        root = trace.begin("request", trace_id=7)
        assert trace.root(7) is root
        assert root.parent_id is None

    def test_children_auto_parent_to_root(self):
        trace = Trace()
        root = trace.begin("request", trace_id=7)
        queued = trace.begin("queued", trace_id=7)
        inference = trace.begin("inference", trace_id=7)
        assert queued.parent_id == root.span_id
        assert inference.parent_id == root.span_id
        assert [s.name for s in trace.children(root)] == ["queued", "inference"]

    def test_explicit_parent_overrides_root(self):
        trace = Trace()
        trace.begin("request", trace_id=7)
        outer = trace.begin("inference", trace_id=7)
        inner = trace.begin("kernel", trace_id=7, parent=outer)
        assert inner.parent_id == outer.span_id

    def test_traces_are_independent(self):
        trace = Trace()
        a = trace.begin("request", trace_id=1)
        b = trace.begin("request", trace_id=2)
        child = trace.begin("queued", trace_id=2)
        assert child.parent_id == b.span_id
        assert trace.root(1) is a
        assert len(trace.by_trace()) == 2


class TestVirtualClock:
    def test_timestamps_follow_simulator_clock(self):
        sim = Simulator()
        trace = Trace(clock=lambda: sim.now)
        spans = {}

        def process():
            spans["root"] = trace.begin("request", trace_id=0)
            spans["queued"] = trace.begin("queued", trace_id=0)
            yield 0.25
            trace.finish(spans["queued"])
            yield 0.5
            trace.finish(spans["root"])

        sim.spawn(process())
        sim.run()
        assert spans["queued"].start == pytest.approx(0.0)
        assert spans["queued"].end == pytest.approx(0.25)
        assert spans["queued"].duration_s == pytest.approx(0.25)
        assert spans["root"].end == pytest.approx(0.75)

    def test_span_finish_without_trace_uses_bound_clock(self):
        """Span.finish() called directly (no Trace.finish) still stamps
        the virtual clock it was created under."""
        sim = Simulator()
        trace = Trace(clock=lambda: sim.now)
        span = trace.begin("queued", trace_id=0)

        def process():
            yield 1.5
            span.finish()

        sim.spawn(process())
        sim.run()
        assert span.end == pytest.approx(1.5)

    def test_ordering_matches_event_order(self):
        """Spans recorded by interleaved processes appear in event order."""
        sim = Simulator()
        trace = Trace(clock=lambda: sim.now)

        def worker(trace_id, delay):
            yield delay
            with trace.span("inference", trace_id=trace_id):
                yield 0.01

        sim.spawn(worker(1, 0.3))
        sim.spawn(worker(2, 0.1))
        sim.spawn(worker(3, 0.2))
        sim.run()
        starts = [s.start for s in trace.find("inference")]
        assert starts == sorted(starts)
        assert [s.trace_id for s in trace.find("inference")] == [2, 3, 1]

    def test_backdating_with_at(self):
        sim = Simulator()
        trace = Trace(clock=lambda: sim.now)

        def process():
            yield 2.0
            # One combined event split into two adjacent spans after the fact.
            span = trace.begin("inference", trace_id=0, at=1.0)
            span.finish(at=1.5)
            yield 0.0

        sim.spawn(process())
        sim.run()
        (span,) = trace.find("inference")
        assert (span.start, span.end) == (1.0, 1.5)


class TestLifecycle:
    def test_finish_is_idempotent(self):
        trace = Trace()
        span = trace.begin("queued", trace_id=0)
        span.finish(at=1.0)
        span.finish(at=9.0)
        assert span.end == 1.0

    def test_finish_merges_attributes(self):
        trace = Trace()
        span = trace.begin("request", trace_id=0, session_id=4)
        span.finish(at=1.0, status=200, batch_size=3)
        assert span.attrs == {"session_id": 4, "status": 200, "batch_size": 3}

    def test_context_manager_closes_on_exit(self):
        trace = Trace()
        with trace.span("inference", trace_id=0, batch_id=2) as span:
            assert not span.finished
        assert span.finished
        assert span.attrs["batch_id"] == 2

    def test_open_span_has_no_duration(self):
        trace = Trace()
        span = trace.begin("queued", trace_id=0)
        assert span.duration_s is None
        assert not span.finished

    def test_to_dict_round_trip_fields(self):
        trace = Trace()
        span = trace.begin("inference", trace_id=3, batch_id=1)
        span.finish(at=0.5)
        payload = span.to_dict()
        assert payload["name"] == "inference"
        assert payload["trace_id"] == 3
        assert payload["attrs"] == {"batch_id": 1}
        assert payload["end"] == 0.5
