"""The telemetry exporters on hand-built inputs: JSON round-trip of the
span trace, stage attribution arithmetic on known spans, and renderer
smoke on the empty / single-sample edge cases."""

import json

import pytest

from repro.obs.registry import MetricRegistry
from repro.obs.export import (
    STAGE_ORDER,
    render_breakdown,
    render_timeline,
    stage_breakdown,
    trace_to_json,
)
from repro.obs.sampler import Sampler
from repro.obs.trace import Trace
from repro.simulation import Simulator


def build_request_trace(trace, trace_id, start, stages, status=200):
    """One finished request trace: root + named stage spans.

    ``stages`` is a list of ``(name, offset_s, duration_s)`` tuples;
    the root covers start .. start + max stage end + 0.001 (respond hop).
    """
    last = max((offset + duration for _, offset, duration in stages), default=0.0)
    root = trace.begin("request", trace_id, at=start, status=status)
    for name, offset, duration in stages:
        trace.begin(name, trace_id, at=start + offset).finish(
            at=start + offset + duration
        )
    root.finish(at=start + last + 0.001)
    return root


class TestTraceToJson:
    def test_round_trip_preserves_spans(self):
        trace = Trace()
        build_request_trace(
            trace, 1, 0.0, [("queued", 0.0, 0.002), ("inference", 0.002, 0.010)]
        )
        open_span = trace.begin("queued", 2, at=5.0)  # deliberately open
        payload = json.loads(trace_to_json(trace))
        assert payload["span_count"] == len(trace.spans) == 4
        assert payload["trace_count"] == 2
        by_name = {span["name"]: span for span in payload["spans"]}
        assert by_name["request"]["trace_id"] == 1
        assert by_name["inference"]["start"] == 0.002
        assert by_name["inference"]["end"] == 0.012
        # Open spans serialize with end: null instead of blowing up.
        open_dicts = [s for s in payload["spans"] if s["trace_id"] == 2]
        assert open_dicts[0]["end"] is None
        assert not open_span.finished

    def test_attrs_survive_and_numpy_coerces(self):
        import numpy as np

        trace = Trace()
        trace.begin("request", 1, at=0.0, status=np.int64(200)).finish(at=0.5)
        payload = json.loads(trace_to_json(trace, indent=2))
        assert payload["spans"][0]["attrs"]["status"] == 200


class TestStageBreakdown:
    def test_attribution_on_hand_built_spans(self):
        trace = Trace()
        # Two identical requests: 1 ms send, 2 ms queue, 10 ms inference,
        # 1 ms uncovered respond hop -> 14 ms end to end.
        for trace_id in (1, 2):
            build_request_trace(
                trace,
                trace_id,
                float(trace_id),
                [
                    ("sent", 0.0, 0.001),
                    ("queued", 0.001, 0.002),
                    ("inference", 0.003, 0.010),
                ],
            )
        report = stage_breakdown(trace)
        assert report is not None
        assert report.requests == 2
        assert report.end_to_end.mean_ms == pytest.approx(14.0)
        assert report.stage("inference").count == 2
        assert report.stage("inference").mean_ms == pytest.approx(10.0)
        assert report.stage("queued").mean_ms == pytest.approx(2.0)
        # Uncovered time lands in "other"; shares sum to 1.
        assert report.stage("other").mean_ms == pytest.approx(1.0)
        assert sum(s.share for s in report.stages) == pytest.approx(1.0)

    def test_failed_and_unfinished_requests_are_excluded(self):
        trace = Trace()
        build_request_trace(trace, 1, 0.0, [("inference", 0.0, 0.010)])
        build_request_trace(
            trace, 2, 1.0, [("inference", 0.0, 0.500)], status=503
        )
        trace.begin("request", 3, at=2.0)  # never finished
        report = stage_breakdown(trace)
        assert report.requests == 1
        assert report.stage("inference").mean_ms == pytest.approx(10.0)

    def test_non_request_roots_are_ignored(self):
        """Sub-request traces root at 'sent' (scatter-gather legs) and
        housekeeping spans must not pollute the attribution."""
        trace = Trace()
        build_request_trace(trace, 1, 0.0, [("inference", 0.0, 0.010)])
        trace.begin("sent", -1_000_000, at=0.0).finish(at=0.004)
        trace.begin("chaos", -1, at=0.0).finish(at=9.9)
        report = stage_breakdown(trace)
        assert report.requests == 1

    def test_shard_stages_are_recognized(self):
        assert "shard_fanout" in STAGE_ORDER and "shard_merge" in STAGE_ORDER
        trace = Trace()
        build_request_trace(
            trace,
            1,
            0.0,
            [("shard_fanout", 0.0, 0.004), ("shard_merge", 0.004, 0.001)],
        )
        report = stage_breakdown(trace)
        assert report.stage("shard_fanout").mean_ms == pytest.approx(4.0)
        assert report.stage("shard_merge").mean_ms == pytest.approx(1.0)

    def test_empty_trace_yields_none(self):
        assert stage_breakdown(Trace()) is None


class TestRendererSmoke:
    def test_render_breakdown_none(self):
        assert render_breakdown(None) == "(no finished request traces)"

    def test_render_breakdown_single_request(self):
        trace = Trace()
        build_request_trace(trace, 1, 0.0, [("inference", 0.0, 0.010)])
        text = render_breakdown(stage_breakdown(trace))
        assert "1 ok requests" in text
        assert "inference" in text and "end-to-end" in text

    def test_render_timeline_empty(self):
        assert render_timeline(None) == "(no sampled series)"
        sampler = Sampler(Simulator(), MetricRegistry())
        assert render_timeline(sampler) == "(no sampled series)"

    def test_render_timeline_single_sample(self):
        simulator = Simulator()
        registry = MetricRegistry()
        registry.gauge("queue_depth", fn=lambda: 3.0)
        sampler = Sampler(simulator, registry)
        sampler.start()
        simulator.run()  # one immediate snapshot, then the run ends
        sampler.stop()
        assert sampler.ticks >= 1
        text = render_timeline(sampler)
        assert "queue_depth" in text
        assert "min=3 max=3" in text
