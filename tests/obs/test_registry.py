"""Metric registry: instrument semantics and percentile agreement."""

import numpy as np
import pytest

from repro.metrics.percentile import LatencyDigest
from repro.obs import Counter, Gauge, Histogram, MetricRegistry, metric_key


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("queue_depth") == "queue_depth"

    def test_labels_sorted(self):
        key = metric_key("queue_depth", {"server": "a", "model": "gru"})
        assert key == 'queue_depth{model="gru",server="a"}'


class TestCounter:
    def test_monotonic(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("requests_total").inc(-1)


class TestGauge:
    def test_settable(self):
        gauge = Gauge("pending")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.read() == 2

    def test_callback_backed_reads_live_state(self):
        state = {"depth": 0}
        gauge = Gauge("queue_depth", fn=lambda: state["depth"])
        assert gauge.read() == 0
        state["depth"] = 7
        assert gauge.read() == 7

    def test_callback_backed_rejects_set(self):
        gauge = Gauge("queue_depth", fn=lambda: 1)
        with pytest.raises(ValueError):
            gauge.set(5)


class TestHistogram:
    def test_percentiles_agree_with_latency_digest(self):
        """The acceptance contract: a Histogram and a LatencyDigest fed the
        same samples answer percentile queries identically (same bins)."""
        histogram = Histogram("stage_latency")
        digest = LatencyDigest()
        samples = np.random.default_rng(3).lognormal(
            mean=np.log(0.01), sigma=0.8, size=20_000
        )
        for sample in samples:
            histogram.observe(float(sample))
            digest.record(float(sample))
        assert histogram.count == len(digest)
        assert histogram.mean() == pytest.approx(digest.mean())
        for q in (10, 50, 90, 99, 99.9):
            assert histogram.percentile(q) == digest.percentile(q), q


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricRegistry()
        first = registry.counter("sent_total", labels={"server": "a"})
        second = registry.counter("sent_total", labels={"server": "a"})
        assert first is second
        assert len(registry) == 1

    def test_same_name_different_labels_are_distinct(self):
        registry = MetricRegistry()
        a = registry.counter("sent_total", labels={"server": "a"})
        b = registry.counter("sent_total", labels={"server": "b"})
        assert a is not b
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("depth")
        with pytest.raises(ValueError):
            registry.gauge("depth")

    def test_lookup_by_name_and_labels(self):
        registry = MetricRegistry()
        gauge = registry.gauge("pending", labels={"pod": "p1"})
        assert registry.get("pending", {"pod": "p1"}) is gauge
        assert registry.get("pending") is None

    def test_snapshot_covers_counters_and_gauges_only(self):
        registry = MetricRegistry()
        registry.counter("sent_total").inc(3)
        registry.gauge("pending", fn=lambda: 2)
        registry.histogram("latency").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot == {"sent_total": 3, "pending": 2}

    def test_kind_listings(self):
        registry = MetricRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert [i.name for i in registry.counters()] == ["a"]
        assert [i.name for i in registry.gauges()] == ["b"]
        assert [i.name for i in registry.histograms()] == ["c"]
