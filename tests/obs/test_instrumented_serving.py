"""Instrumented serving paths: spans from real runs, zero-overhead-off."""

import numpy as np
import pytest

from repro.core.infra_test import run_infra_test
from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.obs import Telemetry, stage_breakdown
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.request import RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def make_profile(device, fixed_bytes=1e6, item_bytes=1e5):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=fixed_bytes, write_bytes=item_bytes)
    )
    return LatencyModel(device).profile(trace)


def make_request(request_id, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1, 2, 3], dtype=np.int64),
        sent_at=now,
    )


def submit_burst(sim, server, telemetry, count):
    responses = []

    def sender():
        for index in range(count):
            request = make_request(index, sim.now)
            telemetry.trace.begin("request", index)
            server.submit(request, responses.append)
        if False:
            yield  # pragma: no cover
        yield 0.0

    sim.spawn(sender())
    return responses


class TestGpuBatchSpans:
    def test_cobatched_requests_share_batch_id(self):
        """A burst flushed as one GPU batch: every request's inference span
        carries the same batch_id and the full batch_size."""
        sim = Simulator()
        telemetry = Telemetry.for_simulator(sim)
        server = EtudeInferenceServer(
            sim, GPU_T4.device, make_profile(GPU_T4.device),
            np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=8, max_delay_s=0.002),
            telemetry=telemetry,
        )
        responses = submit_burst(sim, server, telemetry, 4)
        sim.run()
        assert len(responses) == 4

        inference = telemetry.trace.find("inference")
        assert len(inference) == 4
        batch_ids = {span.attrs["batch_id"] for span in inference}
        assert len(batch_ids) == 1
        assert all(span.attrs["batch_size"] == 4 for span in inference)
        # All four executed as one interval on the device.
        assert len({(s.start, s.end) for s in inference}) == 1

    def test_linger_window_recorded_as_batch_assembled(self):
        sim = Simulator()
        telemetry = Telemetry.for_simulator(sim)
        linger = 0.002
        server = EtudeInferenceServer(
            sim, GPU_T4.device, make_profile(GPU_T4.device),
            np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=8, max_delay_s=linger),
            telemetry=telemetry,
        )
        submit_burst(sim, server, telemetry, 3)
        sim.run()
        assembled = telemetry.trace.find("batch_assembled")
        assert len(assembled) == 3
        for span in assembled:
            assert span.duration_s == pytest.approx(linger, abs=1e-6)

    def test_stage_spans_nest_under_request_root(self):
        sim = Simulator()
        telemetry = Telemetry.for_simulator(sim)
        server = EtudeInferenceServer(
            sim, GPU_T4.device, make_profile(GPU_T4.device),
            np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=8, max_delay_s=0.002),
            telemetry=telemetry,
        )
        submit_burst(sim, server, telemetry, 2)
        sim.run()
        for trace_id, spans in telemetry.trace.by_trace().items():
            root = telemetry.trace.root(trace_id)
            assert root.name == "request"
            names = {span.name for span in spans[1:]}
            assert names == {
                "sent", "queued", "batch_assembled", "inference", "http_respond"
            }
            assert all(s.parent_id == root.span_id for s in spans[1:])
            assert all(s.finished for s in spans[1:])


class TestCpuSpans:
    def test_cpu_path_records_per_request_stages(self):
        sim = Simulator()
        telemetry = Telemetry.for_simulator(sim)
        server = EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0),
            telemetry=telemetry,
        )
        responses = submit_burst(sim, server, telemetry, 3)
        sim.run()
        assert len(responses) == 3
        inference = telemetry.trace.find("inference")
        assert len(inference) == 3
        # CPU serving never batches: each span is its own batch of one.
        assert all(span.attrs["batch_size"] == 1 for span in inference)
        assert len({span.attrs["batch_id"] for span in inference}) == 3

    def test_stage_durations_fit_inside_response_latency(self):
        sim = Simulator()
        telemetry = Telemetry.for_simulator(sim)
        server = EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0),
            telemetry=telemetry,
        )
        responses = submit_burst(sim, server, telemetry, 5)
        sim.run()
        by_trace = telemetry.trace.by_trace()
        for response in responses:
            spans = by_trace[response.request_id]
            covered = sum(s.duration_s for s in spans if s.name != "request")
            assert covered <= response.latency_s + 1e-9


class TestEndToEnd:
    def test_infra_test_breakdown_sums_to_end_to_end(self):
        """Loadgen + server + telemetry: stage rows plus the ``other``
        remainder must sum to exactly the end-to-end total."""
        telemetry = Telemetry()
        result = run_infra_test(
            "actix", target_rps=50, duration_s=10.0, telemetry=telemetry
        )
        assert result.ok > 0
        report = stage_breakdown(telemetry.trace)
        assert report is not None
        assert report.requests == result.ok
        covered = sum(stats.total_s for stats in report.stages)
        assert covered == pytest.approx(report.end_to_end.total_s, rel=1e-9)
        assert sum(s.share for s in report.stages) == pytest.approx(1.0)

    def test_sampler_saw_loadgen_gauges(self):
        telemetry = Telemetry()
        run_infra_test("actix", target_rps=50, duration_s=5.0, telemetry=telemetry)
        keys = set(telemetry.sampler.series)
        assert any(key.startswith("loadgen_pending") for key in keys)
        assert any(key.startswith("server_queue_depth") for key in keys)
        assert telemetry.sampler.ticks >= 5

    def test_tracing_does_not_change_measured_latencies(self):
        """Zero-overhead contract: identical seeds give identical latency
        series with and without telemetry (no extra random draws)."""
        plain = run_infra_test("actix", target_rps=40, duration_s=8.0, seed=7)
        traced = run_infra_test(
            "actix", target_rps=40, duration_s=8.0, seed=7, telemetry=Telemetry()
        )
        assert plain.total == traced.total
        assert plain.series.p90_ms == traced.series.p90_ms
        assert plain.p99_ms == traced.p99_ms

    def test_experiment_runner_embeds_stage_breakdown(self):
        """A traced deployed benchmark reports the per-stage table in its
        RunResult; an untraced one leaves the field None."""
        from repro.core import ExperimentRunner, ExperimentSpec
        from repro.core.spec import HardwareSpec

        spec = ExperimentSpec(
            model="gru4rec",
            catalog_size=10_000,
            target_rps=30,
            hardware=HardwareSpec("CPU", 1),
            duration_s=10.0,
            execution="eager",
        )
        telemetry = Telemetry()
        result = ExperimentRunner().run(spec, telemetry=telemetry)
        assert result.ok_requests > 0
        assert result.stage_breakdown is not None
        assert "end_to_end" in result.stage_breakdown
        assert result.stage_breakdown["inference"]["count"] == result.ok_requests
        assert ExperimentRunner().run(spec).stage_breakdown is None

    def test_counters_match_collector_totals(self):
        telemetry = Telemetry()
        result = run_infra_test(
            "actix", target_rps=50, duration_s=5.0, telemetry=telemetry
        )
        sent = telemetry.metrics.get("loadgen_sent_total")
        assert sent is not None
        assert sent.value == result.total
