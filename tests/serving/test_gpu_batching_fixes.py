"""GPU batching-path fixes: linger wake on buffer-full, delivered-status logs."""

import numpy as np

from repro.hardware import GPU_T4, LatencyModel
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.access_log import AccessLog
from repro.serving.profiles import ActixProfile
from repro.serving.request import HTTP_OK, RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def gpu_profile(param_bytes=1e6):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=param_bytes))
    return LatencyModel(GPU_T4.device).profile(trace)


def make_server(sim, batching, log=None, profile=None):
    return EtudeInferenceServer(
        sim, GPU_T4.device, gpu_profile(), np.random.default_rng(0),
        profile=profile, batching=batching, access_log=log,
    )


def request(index, sim):
    return RecommendationRequest(
        request_id=index, session_id=index,
        session_items=np.array([1], dtype=np.int64), sent_at=sim.now,
    )


class TestLingerWake:
    def test_full_buffer_flushes_before_the_linger_deadline(self):
        """Filling the buffer mid-linger must flush immediately — not
        after sleeping out the rest of the 2 ms window."""
        sim = Simulator()
        log = AccessLog()
        server = make_server(
            sim, BatchingConfig(max_batch_size=4, max_delay_s=0.002), log
        )

        def client():
            server.submit(request(0, sim), lambda r: None)
            yield 0.0005
            for index in (1, 2, 3):
                server.submit(request(index, sim), lambda r: None)

        sim.spawn(client())
        sim.run()
        groups = log.by_batch()
        assert len(groups) == 1
        (members,) = groups.values()
        assert len(members) == 4
        # Flush happened when the 4th request arrived (~0.5 ms), far
        # before the 2 ms linger deadline the old code slept out.
        assert members[0].started_at < 0.0015

    def test_underfull_buffer_still_waits_out_the_linger(self):
        sim = Simulator()
        log = AccessLog()
        server = make_server(
            sim, BatchingConfig(max_batch_size=8, max_delay_s=0.002), log
        )

        def client():
            server.submit(request(0, sim), lambda r: None)
            yield 0.0005
            server.submit(request(1, sim), lambda r: None)

        sim.spawn(client())
        sim.run()
        groups = log.by_batch()
        assert len(groups) == 1
        (members,) = groups.values()
        assert len(members) == 2
        assert members[0].started_at >= 0.002

    def test_wake_leaves_no_stray_events(self):
        """The cancelled deadline timer must not linger in the clock."""
        sim = Simulator()
        server = make_server(
            sim, BatchingConfig(max_batch_size=2, max_delay_s=0.050)
        )
        done = []
        server.submit(request(0, sim), done.append)
        server.submit(request(1, sim), done.append)
        end = sim.run()
        assert len(done) == 2
        # Batch flushed on fill; nothing waited for the 50 ms deadline.
        assert end < 0.050


class TestDeliveredStatusLog:
    def test_log_matches_what_each_client_saw(self):
        """A crash between batch completion and response delivery turns
        the batch into 503s; the access log must record those 503s, not
        the 200s nobody received."""
        sim = Simulator()
        log = AccessLog()
        # A long HTTP leg widens the completion→delivery window the
        # original code mis-logged.
        server = make_server(
            sim, BatchingConfig(max_batch_size=8, max_delay_s=0.001), log,
            profile=ActixProfile(request_overhead_s=0.050),
        )
        statuses = {}

        def client():
            for index in range(64):
                req = request(index, sim)
                server.submit(
                    req,
                    lambda r, i=index: statuses.__setitem__(i, r.status),
                )
                yield 0.002

        sim.spawn(client())
        sim.call_at(0.060, server.crash)
        sim.run()
        assert log, "expected logged exchanges"
        for record in log:
            assert record.status == statuses[record.request_id]
        # The crash actually caught responses in flight (the scenario
        # under test), and healthy traffic still logged 200s.
        logged = [record.status for record in log]
        assert any(status != HTTP_OK for status in logged)
        assert any(status == HTTP_OK for status in logged)
