"""Server access logs: FIFO, batch co-membership, wait decomposition."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.access_log import AccessLog, AccessRecord
from repro.serving.request import HTTP_OK, RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def profile_for(device, param_bytes=4.5e7):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=param_bytes))
    return LatencyModel(device).profile(trace)


def drive(device, count, spacing, batching=None, param_bytes=4.5e7):
    sim = Simulator()
    log = AccessLog()
    server = EtudeInferenceServer(
        sim, device, profile_for(device, param_bytes),
        np.random.default_rng(0), batching=batching, access_log=log,
    )

    def client():
        for index in range(count):
            request = RecommendationRequest(
                request_id=index, session_id=index,
                session_items=np.array([1], dtype=np.int64), sent_at=sim.now,
            )
            server.submit(request, lambda r: None)
            if spacing:
                yield spacing
        if False:
            yield

    sim.spawn(client())
    sim.run()
    return log


class TestAccessRecord:
    def test_derived_fields(self):
        record = AccessRecord(
            request_id=1, arrived_at=1.0, started_at=1.5,
            completed_at=2.0, batch_id=1, batch_size=1, status=HTTP_OK,
        )
        assert record.wait_s == pytest.approx(0.5)
        assert record.service_s == pytest.approx(0.5)


class TestCpuAccessLog:
    def test_one_record_per_request(self):
        log = drive(CPU_E2.device, 20, 0.001)
        assert len(log) == 20
        assert {record.request_id for record in log} == set(range(20))

    def test_fifo_service_order(self):
        log = drive(CPU_E2.device, 30, 0.0)
        assert log.started_in_arrival_order()

    def test_waits_grow_in_a_burst(self):
        log = drive(CPU_E2.device, 15, 0.0)
        by_id = sorted(log, key=lambda r: r.request_id)
        assert by_id[-1].wait_s > by_id[0].wait_s

    def test_all_status_ok(self):
        log = drive(CPU_E2.device, 10, 0.01)
        assert all(record.status == HTTP_OK for record in log)


class TestGpuAccessLog:
    def test_batch_members_share_start_and_id(self):
        log = drive(
            GPU_T4.device, 12, 0.0,
            batching=BatchingConfig(max_batch_size=32, max_delay_s=0.002),
            param_bytes=1.35e9,
        )
        groups = log.by_batch()
        assert len(groups) >= 1
        for members in groups.values():
            starts = {record.started_at for record in members}
            assert len(starts) == 1
            sizes = {record.batch_size for record in members}
            assert sizes == {len(members)}

    def test_mean_wait_reflects_linger(self):
        log = drive(
            GPU_T4.device, 8, 0.0,
            batching=BatchingConfig(max_batch_size=32, max_delay_s=0.002),
            param_bytes=1e6,
        )
        assert 0.001 < log.mean_wait_s() < 0.004

    def test_empty_log_queries_raise(self):
        with pytest.raises(ValueError):
            AccessLog().mean_wait_s()
