"""Deadline-aware admission control: policy unit behaviour and the
server-level shedding mechanics (intake, dequeue, GPU batch assembly)."""

from collections import deque

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.serving import (
    ActixProfile,
    AdmissionPolicy,
    BatchingConfig,
    EtudeInferenceServer,
)
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
)
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def make_profile(device, fixed_bytes=1e6, item_bytes=1e5):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=fixed_bytes, write_bytes=item_bytes)
    )
    return LatencyModel(device).profile(trace)


def make_request(request_id, now=0.0, deadline_s=None):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1, 2, 3], dtype=np.int64),
        sent_at=now,
        deadline_s=deadline_s,
    )


class TestPolicyParsing:
    def test_defaults(self):
        policy = AdmissionPolicy.parse("")
        assert policy == AdmissionPolicy()
        assert policy.discipline == "fifo"

    def test_full_spec_round_trips(self):
        policy = AdmissionPolicy.parse(
            "codel,slack=0.01,target=0.004,interval=0.2,depth=32"
        )
        assert policy.discipline == "codel"
        assert policy.slack_s == 0.01
        assert policy.codel_target_s == 0.004
        assert AdmissionPolicy.parse(policy.spec_string()) == policy

    def test_bare_discipline_token(self):
        assert AdmissionPolicy.parse("lifo").discipline == "lifo"

    def test_unknown_tokens_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPolicy.parse("sjf")
        with pytest.raises(ValueError):
            AdmissionPolicy.parse("slak=0.1")


class TestViability:
    def test_no_deadline_is_always_viable(self):
        policy = AdmissionPolicy(slack_s=0.01)
        assert policy.viable(None, now=1e9)

    def test_slack_sheds_before_the_deadline(self):
        policy = AdmissionPolicy(slack_s=0.010)
        assert policy.viable(1.000, now=0.989)
        assert not policy.viable(1.000, now=0.990)
        assert not policy.viable(1.000, now=2.0)


class TestDisciplines:
    def _entries(self, n):
        return deque((make_request(i), lambda r: None, float(i)) for i in range(n))

    def test_fifo_pops_oldest(self):
        queue = self._entries(5)
        entry = AdmissionPolicy().pop(queue)
        assert entry[0].request_id == 0

    def test_lifo_pops_newest_only_past_threshold(self):
        policy = AdmissionPolicy(discipline="lifo", lifo_threshold=4)
        shallow = self._entries(4)
        assert policy.pop(shallow)[0].request_id == 0  # below threshold: FIFO
        deep = self._entries(6)
        assert policy.pop(deep)[0].request_id == 5  # above: newest first

    def test_codel_sheds_only_on_sustained_excess(self):
        policy = AdmissionPolicy(
            discipline="codel", codel_target_s=0.005, codel_interval_s=0.1
        )
        state = policy.make_state()
        # First excess arms the interval, does not shed.
        assert not policy.codel_should_shed(state, sojourn_s=0.02, now=0.0)
        # Still inside the interval: no shed.
        assert not policy.codel_should_shed(state, sojourn_s=0.02, now=0.05)
        # Sustained past the interval: shed, and the interval tightens.
        assert policy.codel_should_shed(state, sojourn_s=0.02, now=0.11)
        # Dropping below target resets the controller.
        assert not policy.codel_should_shed(state, sojourn_s=0.001, now=0.12)
        assert state.first_above_at is None

    def test_fifo_discipline_never_codel_sheds(self):
        policy = AdmissionPolicy(discipline="fifo")
        state = policy.make_state()
        assert not policy.codel_should_shed(state, sojourn_s=10.0, now=100.0)


class TestServerShedding:
    def _server(self, sim, admission, device=None, batching=None):
        device = device or CPU_E2.device
        return EtudeInferenceServer(
            sim,
            device,
            make_profile(device, fixed_bytes=45e6),  # ~10 ms per inference
            np.random.default_rng(0),
            profile=ActixProfile(admission=admission),
            batching=batching,
        )

    def test_doomed_on_arrival_is_shed_at_intake(self):
        sim = Simulator()
        server = self._server(sim, AdmissionPolicy(slack_s=0.005))
        responses = []

        def sender():
            yield 1.0
            # Deadline already inside the slack window at send time.
            server.submit(
                make_request(0, sim.now, deadline_s=sim.now + 0.004),
                responses.append,
            )

        sim.spawn(sender())
        sim.run()
        assert [r.status for r in responses] == [HTTP_SERVICE_UNAVAILABLE]
        assert server.shed_deadline == 1
        assert server.completed == 0
        # Satellite: live sheds pay HTTP handling — the 503 is not instant.
        assert responses[0].latency_s > 0.0

    def test_expired_queue_entries_shed_at_dequeue(self):
        sim = Simulator()
        server = self._server(sim, AdmissionPolicy())
        responses = []

        def sender():
            # Burst far exceeding what 10 ms/inference can clear in 50 ms:
            # the tail of the queue expires while waiting.
            for index in range(40):
                server.submit(
                    make_request(index, sim.now, deadline_s=sim.now + 0.05),
                    responses.append,
                )
            if False:
                yield  # pragma: no cover

        sim.spawn(sender())
        sim.run()
        assert len(responses) == 40
        statuses = {r.status for r in responses}
        assert statuses == {HTTP_OK, HTTP_SERVICE_UNAVAILABLE}
        assert server.shed_deadline > 0
        assert server.completed + server.shed_total == 40
        # Every delivered 200 made its deadline; doomed work never executed.
        for response in responses:
            if response.status == HTTP_OK:
                assert response.completed_at <= response.latency_s + 0.05

    def test_gpu_batches_contain_only_viable_requests(self):
        sim = Simulator()
        server = self._server(
            sim,
            AdmissionPolicy(),
            device=GPU_T4.device,
            batching=BatchingConfig(max_batch_size=8, max_delay_s=0.002),
        )
        responses = []

        def sender():
            for index in range(30):
                server.submit(
                    make_request(index, sim.now, deadline_s=sim.now + 0.004),
                    responses.append,
                )
            if False:
                yield  # pragma: no cover

        sim.spawn(sender())
        sim.run()
        assert len(responses) == 30
        executed = [r for r in responses if r.status == HTTP_OK]
        # The 2 ms linger leaves little slack on a 4 ms deadline: the first
        # flush executes, later queue generations are shed, not batched.
        assert server.shed_deadline > 0
        assert all(r.batch_size <= 8 for r in executed)
        assert server.completed + server.shed_total == 30

    def test_no_admission_keeps_counters_at_zero(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim,
            CPU_E2.device,
            make_profile(CPU_E2.device),
            np.random.default_rng(0),
        )
        responses = []
        server.submit(make_request(0, 0.0, deadline_s=0.0), responses.append)
        sim.run()
        # Without a policy, an expired deadline is ignored (paper behaviour).
        assert [r.status for r in responses] == [HTTP_OK]
        assert server.shed_total == 0
