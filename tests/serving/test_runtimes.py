"""ONNX-style runtime transform and its wiring through the registry."""

import pytest

from repro.core.registry import AssetRegistry
from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.serving.runtimes import DISPATCH_FACTOR, onnx_transform
from repro.tensor.ops import CostRecord, CostTrace


def trace_of(*records):
    trace = CostTrace()
    for record in records:
        trace.append(record)
    return trace


class TestTransform:
    def test_epilogue_merges_into_producer(self):
        trace = trace_of(
            CostRecord(op="linear", launches=1, flops=100.0, write_bytes=64.0),
            CostRecord(op="relu", launches=1, flops=8.0, write_bytes=64.0),
        )
        merged = onnx_transform(trace)
        assert len(merged) == 1
        record = merged.records[0]
        assert record.flops == 108.0
        assert "relu" in record.op

    def test_host_ops_break_the_plan(self):
        trace = trace_of(
            CostRecord(op="linear", launches=1),
            CostRecord(op="host[adjacency]", launches=1, host_op=True),
            CostRecord(op="relu", launches=1),
        )
        merged = onnx_transform(trace)
        assert len(merged) == 3  # relu's producer is the host op: no merge

    def test_scale_boundary_not_merged(self):
        trace = trace_of(
            CostRecord(op="linear", launches=1, catalog_scale=100.0),
            CostRecord(op="relu", launches=1, catalog_scale=1.0),
        )
        assert len(onnx_transform(trace)) == 2

    def test_dispatch_factor_applied(self):
        trace = trace_of(CostRecord(op="matmul", launches=1))
        merged = onnx_transform(trace)
        assert merged.records[0].launches == pytest.approx(DISPATCH_FACTOR)

    def test_host_launches_not_discounted(self):
        trace = trace_of(CostRecord(op="host[x]", launches=1, host_op=True))
        merged = onnx_transform(trace)
        assert merged.records[0].launches == 1

    def test_param_bytes_preserved(self):
        trace = trace_of(
            CostRecord(op="linear", launches=1, param_bytes=1e6),
            CostRecord(op="tanh", launches=1),
        )
        merged = onnx_transform(trace)
        assert merged.total_param_bytes == pytest.approx(1e6)


class TestRegistryWiring:
    def test_onnx_profile_never_slower_than_jit(self):
        registry = AssetRegistry()
        for model in ("gru4rec", "sasrec", "stamp"):
            for device in (CPU_E2.device, GPU_T4.device):
                jit = registry.profile(model, 100_000, device, "jit")
                onnx = registry.profile(model, 100_000, device, "onnx")
                assert onnx.latency(1) <= jit.latency(1) * 1.001, (model, device.name)

    def test_onnx_dominant_cost_unchanged(self):
        """The catalog scan dominates; ONNX cannot shrink it."""
        registry = AssetRegistry()
        jit = registry.profile("gru4rec", 1_000_000, CPU_E2.device, "jit")
        onnx = registry.profile("gru4rec", 1_000_000, CPU_E2.device, "onnx")
        assert onnx.latency(1) > 0.9 * jit.latency(1)

    def test_lightsans_onnx_falls_back_to_eager(self):
        registry = AssetRegistry()
        assets = registry.assets("lightsans", 10_000, CPU_E2.device, "onnx")
        assert assets.jit_failed
        assert assets.execution_effective == "eager"
        assert assets.jit_fell_back

    def test_spec_accepts_onnx(self):
        from repro.core import ExperimentSpec

        spec = ExperimentSpec(
            model="stamp", catalog_size=1000, target_rps=10, execution="onnx"
        )
        assert spec.execution == "onnx"
