"""TorchServe queueing model: overheads, saturation, 100 ms timeout."""

import numpy as np

from repro.core.infra_test import INFRA_TEST_DEVICE
from repro.serving.profiles import TorchServeProfile
from repro.serving.request import HTTP_OK, HTTP_SERVICE_UNAVAILABLE, RecommendationRequest
from repro.serving.torchserve import TorchServeServer
from repro.simulation import Simulator


def make_request(request_id, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1], dtype=np.int64),
        sent_at=now,
    )


def drive(server, sim, count, spacing):
    responses = []

    def sender():
        for index in range(count):
            server.submit(make_request(index, sim.now), responses.append)
            yield spacing

    sim.spawn(sender())
    sim.run()
    return responses


class TestLowLoad:
    def test_low_load_is_answered_but_slow(self):
        """Even an idle TorchServe costs several ms per empty request."""
        sim = Simulator()
        server = TorchServeServer(
            sim, INFRA_TEST_DEVICE, None, np.random.default_rng(0), vcpus=2.0
        )
        responses = drive(server, sim, 20, spacing=0.1)  # 10 rps
        assert all(r.status == HTTP_OK for r in responses)
        mean_latency = float(np.mean([r.latency_s for r in responses]))
        assert mean_latency > 0.003  # milliseconds, not microseconds


class TestOverload:
    def test_saturation_produces_timeouts(self):
        """At 1,000 req/s on 2 vCPUs most requests hit the 100 ms timeout."""
        sim = Simulator()
        server = TorchServeServer(
            sim, INFRA_TEST_DEVICE, None, np.random.default_rng(0), vcpus=2.0
        )
        responses = drive(server, sim, 2_000, spacing=0.001)  # 1k rps
        errors = [r for r in responses if r.status == HTTP_SERVICE_UNAVAILABLE]
        assert len(errors) > len(responses) * 0.3
        assert server.timed_out + server.rejected == len(errors)

    def test_successful_latencies_pile_near_timeout(self):
        sim = Simulator()
        server = TorchServeServer(
            sim, INFRA_TEST_DEVICE, None, np.random.default_rng(0), vcpus=2.0
        )
        responses = drive(server, sim, 3_000, spacing=0.001)
        successes = [r.latency_s for r in responses if r.ok]
        assert successes, "some requests must still succeed"
        p90 = float(np.percentile(successes, 90))
        # The paper observes p90 between 100 and 200 ms under overload.
        assert 0.05 < p90 < 0.3

    def test_queue_cap_rejects_outright(self):
        sim = Simulator()
        server = TorchServeServer(
            sim, INFRA_TEST_DEVICE, None, np.random.default_rng(0), vcpus=2.0,
            profile=TorchServeProfile(max_queue_depth=10),
        )
        drive(server, sim, 1_000, spacing=0.0001)
        assert server.rejected > 0


class TestWorkerScaling:
    def test_more_vcpus_raise_capacity(self):
        def errors_with(vcpus):
            sim = Simulator()
            server = TorchServeServer(
                sim, INFRA_TEST_DEVICE, None, np.random.default_rng(0), vcpus=vcpus
            )
            responses = drive(server, sim, 1_500, spacing=0.002)  # 500 rps
            return sum(1 for r in responses if not r.ok)

        assert errors_with(8.0) < errors_with(2.0)
