"""The graceful-degradation tier: config parsing, the popularity model,
and shed-to-degraded conversion on the server."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, LatencyModel
from repro.serving import (
    ActixProfile,
    AdmissionPolicy,
    EtudeInferenceServer,
    FallbackConfig,
    PopularityFallback,
)
from repro.serving.request import HTTP_OK, RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def make_profile(device, fixed_bytes=45e6):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=fixed_bytes, write_bytes=1e5))
    return LatencyModel(device).profile(trace)


def make_request(request_id, now=0.0, deadline_s=None):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([5, 9, 2], dtype=np.int64),
        sent_at=now,
        deadline_s=deadline_s,
    )


class TestFallbackConfig:
    def test_defaults_and_round_trip(self):
        config = FallbackConfig.parse("")
        assert config == FallbackConfig()
        custom = FallbackConfig.parse("budget=0.001,topk=10")
        assert custom.budget_s == 0.001
        assert custom.top_k == 10
        assert FallbackConfig.parse(custom.spec_string()) == custom

    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackConfig(budget_s=0.0)
        with pytest.raises(ValueError):
            FallbackConfig(top_k=0)
        with pytest.raises(ValueError):
            FallbackConfig.parse("latency=1")


class TestPopularityFallback:
    def test_returns_most_popular_items(self):
        tier = PopularityFallback.from_config(FallbackConfig(top_k=5))
        items = tier.recommend(np.array([7, 8], dtype=np.int64))
        # Power-law catalog: popularity decreases with item id, so the
        # precomputed top-k is simply the smallest ids.
        np.testing.assert_array_equal(items, np.array([1, 2, 3, 4, 5]))

    def test_deterministic_across_calls(self):
        tier = PopularityFallback.from_config(FallbackConfig())
        first = tier.recommend(np.array([1], dtype=np.int64))
        second = tier.recommend(np.array([99, 98], dtype=np.int64))
        np.testing.assert_array_equal(first, second)


class TestDegradedServing:
    def _server(self, sim, fallback=None):
        return EtudeInferenceServer(
            sim,
            CPU_E2.device,
            make_profile(CPU_E2.device),  # ~10 ms per inference
            np.random.default_rng(0),
            profile=ActixProfile(
                admission=AdmissionPolicy(),
                fallback=fallback or FallbackConfig(),
            ),
        )

    def test_sheds_convert_to_fast_degraded_200s(self):
        sim = Simulator()
        budget = 0.002
        server = self._server(sim, FallbackConfig(budget_s=budget))
        responses = []

        def sender():
            for index in range(40):
                server.submit(
                    make_request(index, sim.now, deadline_s=sim.now + 0.05),
                    responses.append,
                )
            if False:
                yield  # pragma: no cover

        sim.spawn(sender())
        sim.run()
        assert len(responses) == 40
        # Fallback turns every shed into a 200: zero errors.
        assert all(r.status == HTTP_OK for r in responses)
        degraded = [r for r in responses if r.degraded]
        full = [r for r in responses if not r.degraded]
        assert degraded and full
        assert len(degraded) == server.degraded_served == server.shed_total
        # A dequeue-time shed happens when a worker next frees up, which can
        # be one service time (~10 ms) past the deadline; the tier then adds
        # only its fixed budget.
        slop = 0.03
        for response in degraded:
            assert response.inference_s == 0.0
            assert response.items is not None
            assert response.latency_s < 0.05 + budget + slop

    def test_degraded_responses_meet_the_deadline_with_slack(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim,
            CPU_E2.device,
            make_profile(CPU_E2.device),
            np.random.default_rng(0),
            profile=ActixProfile(
                # Shed 10 ms before the deadline, answer within 2 ms.
                admission=AdmissionPolicy(slack_s=0.010),
                fallback=FallbackConfig(budget_s=0.002),
            ),
        )
        responses = []

        def sender():
            for index in range(40):
                server.submit(
                    make_request(index, sim.now, deadline_s=sim.now + 0.05),
                    responses.append,
                )
            if False:
                yield  # pragma: no cover

        sim.spawn(sender())
        sim.run()
        degraded = [r for r in responses if r.degraded]
        assert degraded
        # All 40 were sent at t=0 with deadline t=0.05; slack (10 ms) leaves
        # room for the 2 ms fallback budget, so every degraded 200 lands
        # before the deadline.
        for response in degraded:
            assert response.completed_at <= 0.05 + 1e-9

    def test_no_fallback_sheds_stay_errors(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim,
            CPU_E2.device,
            make_profile(CPU_E2.device),
            np.random.default_rng(0),
            profile=ActixProfile(admission=AdmissionPolicy()),
        )
        responses = []

        def sender():
            for index in range(40):
                server.submit(
                    make_request(index, sim.now, deadline_s=sim.now + 0.05),
                    responses.append,
                )
            if False:
                yield  # pragma: no cover

        sim.spawn(sender())
        sim.run()
        assert any(r.status != HTTP_OK for r in responses)
        assert all(not r.degraded for r in responses)
        assert server.degraded_served == 0
