"""Latency decomposition: queue_s + inference_s vs end-to-end latency."""

import numpy as np

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.request import RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def profile_for(device, param_bytes):
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=param_bytes))
    return LatencyModel(device).profile(trace)


def burst(sim, server, count):
    responses = []
    for index in range(count):
        request = RecommendationRequest(
            request_id=index, session_id=index,
            session_items=np.array([1], dtype=np.int64), sent_at=sim.now,
        )
        server.submit(request, responses.append)
    return responses


class TestCpuDecomposition:
    def test_components_cover_latency(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, CPU_E2.device, profile_for(CPU_E2.device, 9e7),  # ~20ms
            np.random.default_rng(0),
        )
        responses = burst(sim, server, 12)
        sim.run()
        for response in responses:
            assert response.queue_s + response.inference_s <= response.latency_s + 1e-9

    def test_queueing_grows_behind_workers(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, CPU_E2.device, profile_for(CPU_E2.device, 9e7),
            np.random.default_rng(0),
        )
        workers = CPU_E2.device.concurrent_workers
        responses = burst(sim, server, workers * 3)
        sim.run()
        by_id = sorted(responses, key=lambda r: r.request_id)
        first_wave = by_id[:workers]
        last_wave = by_id[-workers:]
        assert max(r.queue_s for r in first_wave) < min(r.queue_s for r in last_wave)


class TestGpuDecomposition:
    def test_batch_wait_is_the_queue_component(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile_for(GPU_T4.device, 1.35e8),
            np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=64, max_delay_s=0.002),
        )
        responses = burst(sim, server, 8)
        sim.run()
        for response in responses:
            # Everyone waited out the 2 ms linger together.
            assert 0.0015 <= response.queue_s <= 0.0035
            assert response.batch_size == 8

    def test_second_batch_queues_behind_first(self):
        sim = Simulator()
        profile = profile_for(GPU_T4.device, 2.7e9)  # ~20 ms per pass
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=4, max_delay_s=0.001),
        )
        responses = burst(sim, server, 8)
        sim.run()
        by_id = sorted(responses, key=lambda r: r.request_id)
        # Requests 4..7 waited for the first batch's ~20 ms execution.
        assert min(r.queue_s for r in by_id[4:]) > 0.015
