"""ANN retrieval end to end: spec/CLI wiring, the disabled-mode
bit-identity contract, artifact versioning under index-parameter changes,
composition with catalog sharding, and the recall-floored planner gate."""

import pytest

from repro.ann.config import RetrievalConfig
from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.hardware import GPU_T4

CATALOG = 3_000
DURATION_S = 10.0


def spec(**overrides):
    base = dict(
        model="gru4rec", catalog_size=CATALOG, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=DURATION_S,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestConfig:
    def test_parse_full_spec(self):
        config = RetrievalConfig.parse("ivf:nlist=1024,nprobe=32")
        assert config.kind == "ivf"
        assert config.nlist == 1024 and config.nprobe == 32
        assert config.enabled
        assert config.spec_string() == "ivf:nlist=1024,nprobe=32"

    def test_default_nprobe_omitted_from_spec_string(self):
        assert RetrievalConfig.parse("ivf:nlist=32").spec_string() == "ivf:nlist=32"

    def test_exact_is_disabled(self):
        for text in ("exact", "off", "none"):
            assert not RetrievalConfig.parse(text).enabled

    def test_unknown_kind_and_option_rejected(self):
        with pytest.raises(ValueError, match="ivf"):
            RetrievalConfig.parse("hnsw:m=16")
        with pytest.raises(ValueError, match="nlist"):
            RetrievalConfig.parse("ivf:depth=4")

    def test_index_build_cost_scales_with_catalog(self):
        config = RetrievalConfig.parse("ivf:nlist=1024")
        small = config.index_build_seconds(1_000_000, 64, GPU_T4.device)
        large = config.index_build_seconds(20_000_000, 64, GPU_T4.device)
        assert 0.0 < small < large


class TestSpecWiring:
    def test_string_spec_coerces_to_config(self):
        s = spec(retrieval="ivf:nlist=32,nprobe=4")
        assert isinstance(s.retrieval, RetrievalConfig)
        assert s.retrieval.nlist == 32

    def test_specfile_round_trip(self):
        s = spec(retrieval="ivf:nlist=32,nprobe=4")
        document = spec_to_dict(s)
        assert document["retrieval"] == "ivf:nlist=32,nprobe=4"
        restored, _slo = spec_from_dict(document)
        assert restored.retrieval == s.retrieval

    def test_specfile_omits_disabled_retrieval(self):
        assert "retrieval" not in spec_to_dict(spec())

    def test_cli_flag_parsing(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "--model", "gru4rec", "--catalog", "3000", "--rps", "40",
             "--retrieval", "ivf:nlist=64,nprobe=8"]
        )
        assert args.retrieval == "ivf:nlist=64,nprobe=8"
        bare = parser.parse_args(["infra-test", "--retrieval"])
        assert bare.retrieval == "ivf"
        plan = parser.parse_args(
            ["plan", "--catalog", "3000", "--rps", "40", "--min-recall", "0.9"]
        )
        assert plan.retrieval is None and plan.min_recall == 0.9


class TestDisabledBitIdentity:
    """PR 3-5 contract: opting out must not perturb a single byte."""

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_exact_mode_byte_identical(self, instance):
        baseline = ExperimentRunner(seed=7).run(
            spec(hardware=HardwareSpec(instance, 1))
        )
        disabled = ExperimentRunner(seed=7).run(
            spec(hardware=HardwareSpec(instance, 1), retrieval="exact")
        )
        assert baseline.to_json() == disabled.to_json()
        assert baseline.retrieval is None and disabled.retrieval is None


class TestServedRuns:
    def test_retrieval_section_contents(self):
        result = ExperimentRunner(seed=7).run(
            spec(retrieval="ivf:nlist=32,nprobe=8")
        )
        section = result.retrieval
        assert section is not None
        assert section["config"] == "ivf:nlist=32"
        assert section["kind"] == "ivf" and section["nlist"] == 32
        assert section["ann_queries"] == result.ok_requests > 0
        assert section["ann_probed_lists"] == section["ann_queries"] * 8
        assert 0.0 <= section["recall_at_k"] <= 1.0
        assert section["index_build_s"] > 0.0
        assert 0.0 < section["probed_fraction"] <= 1.0

    def test_artifact_version_tracks_index_parameters(self):
        """Different nlist/nprobe must produce different artifact versions,
        so every cache key derived from the artifact changes on redeploy."""
        runner = ExperimentRunner(seed=7)
        runner.run(spec(retrieval="ivf:nlist=32,nprobe=4"))
        runner.run(spec(retrieval="ivf:nlist=32,nprobe=8"))
        paths = [
            path
            for path in runner.infra.bucket.list_blobs("models/")
            if "-ivf" in path
        ]
        assert len(paths) == 2 and len(set(paths)) == 2

    def test_composes_with_sharding(self):
        result = ExperimentRunner(seed=7).run(
            spec(retrieval="ivf:nlist=32,nprobe=8", sharding="2")
        )
        assert result.sharding is not None
        assert result.sharding["mean_coverage"] == 1.0
        assert result.retrieval is not None
        # Every merged 200 fanned out to both shards, each probing its own
        # per-shard index.
        assert result.retrieval["ann_queries"] >= 2 * result.ok_requests


class TestPlannerGate:
    def test_empty_retrieval_options_rejected(self):
        from repro.core import DeploymentPlanner

        with pytest.raises(ValueError):
            DeploymentPlanner(retrieval_options=())

    def test_recall_floor_blocks_low_probe_candidates(self):
        from repro.core import DeploymentPlanner
        from repro.core.spec import Scenario
        from repro.hardware.instances import instance_by_name

        config = RetrievalConfig.parse("ivf:nlist=64,nprobe=1")
        planner = DeploymentPlanner(
            duration_s=DURATION_S,
            retrieval_options=(None, config),
            min_recall=0.99,
        )
        plan = planner.plan(
            Scenario("tiny", CATALOG, 30), ["gru4rec"],
            [instance_by_name("GPU-T4")],
        )["gru4rec"]
        key = f"GPU-T4 [{config.spec_string()}]"
        assert key in plan.infeasible
        assert "recall" in plan.infeasible[key]
        assert all(option.retrieval is None for option in plan.options)

    def test_exact_wins_cost_ties(self):
        from repro.core.planner import DeploymentOption, ScenarioPlan
        from repro.core.spec import Scenario

        plan = ScenarioPlan(scenario=Scenario("t", 1000, 10), model="gru4rec")
        ann = DeploymentOption(
            instance_type="CPU", replicas=1, monthly_cost_usd=100.0,
            result=None, retrieval="ivf:nlist=8",
        )
        exact = DeploymentOption(
            instance_type="CPU", replicas=1, monthly_cost_usd=100.0,
            result=None,
        )
        plan.options = [ann, exact]
        assert plan.cheapest() is exact
