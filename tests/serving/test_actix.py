"""EtudeInferenceServer (Actix-style) behaviour."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.request import HTTP_OK, HTTP_SERVICE_UNAVAILABLE, RecommendationRequest
from repro.serving.profiles import ActixProfile
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def make_profile(device, fixed_bytes=1e6, item_bytes=1e5):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=fixed_bytes, write_bytes=item_bytes)
    )
    return LatencyModel(device).profile(trace)


def make_request(request_id, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1, 2, 3], dtype=np.int64),
        sent_at=now,
    )


def submit_n(sim, server, count, spacing=0.0):
    responses = []

    def sender():
        for index in range(count):
            server.submit(make_request(index, sim.now), responses.append)
            if spacing:
                yield spacing
        if False:
            yield  # pragma: no cover

    sim.spawn(sender())
    return responses


class TestCpuServing:
    def test_all_requests_answered_ok(self):
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0),
        )
        responses = submit_n(sim, server, 20, spacing=0.001)
        sim.run()
        assert len(responses) == 20
        assert all(r.status == HTTP_OK for r in responses)
        assert server.completed == 20

    def test_latency_includes_service_time(self):
        sim = Simulator()
        profile = make_profile(CPU_E2.device, fixed_bytes=45e6)  # ~10ms on CPU
        server = EtudeInferenceServer(
            sim, CPU_E2.device, profile, np.random.default_rng(0)
        )
        responses = submit_n(sim, server, 1)
        sim.run()
        assert responses[0].latency_s >= 0.009
        assert responses[0].inference_s >= 0.009

    def test_concurrency_limited_by_workers(self):
        """Burst of 3x workers: completions come in waves."""
        sim = Simulator()
        profile = make_profile(CPU_E2.device, fixed_bytes=45e6)
        server = EtudeInferenceServer(
            sim, CPU_E2.device, profile, np.random.default_rng(0)
        )
        workers = CPU_E2.device.concurrent_workers
        responses = submit_n(sim, server, workers * 3)
        sim.run()
        finish_times = sorted(r.completed_at for r in responses)
        # The last wave completes roughly 3 service times in.
        assert finish_times[-1] > 2.5 * finish_times[0]

    def test_queue_overflow_returns_503(self):
        sim = Simulator()
        profile = make_profile(CPU_E2.device, fixed_bytes=45e6)
        server = EtudeInferenceServer(
            sim, CPU_E2.device, profile, np.random.default_rng(0),
            profile=ActixProfile(max_queue_depth=5),
        )
        responses = submit_n(sim, server, 50)
        sim.run()
        rejected = [r for r in responses if r.status == HTTP_SERVICE_UNAVAILABLE]
        assert len(rejected) >= 40
        assert server.rejected == len(rejected)


class TestGpuBatching:
    def test_concurrent_requests_share_a_batch(self):
        sim = Simulator()
        profile = make_profile(GPU_T4.device, fixed_bytes=1.35e9)  # 10ms fixed
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=64, max_delay_s=0.002),
        )
        responses = submit_n(sim, server, 16)  # all at t=0
        sim.run()
        assert all(r.ok for r in responses)
        assert all(r.batch_size == 16 for r in responses)

    def test_batch_respects_max_size(self):
        sim = Simulator()
        profile = make_profile(GPU_T4.device)
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=4, max_delay_s=0.002),
        )
        responses = submit_n(sim, server, 10)
        sim.run()
        assert max(r.batch_size for r in responses) <= 4

    def test_linger_delays_single_request(self):
        sim = Simulator()
        profile = make_profile(GPU_T4.device, fixed_bytes=0.0, item_bytes=0.0)
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=64, max_delay_s=0.002),
        )
        responses = submit_n(sim, server, 1)
        sim.run()
        assert responses[0].latency_s >= 0.002  # waited out the buffer window

    def test_no_linger_when_disabled(self):
        sim = Simulator()
        profile = make_profile(GPU_T4.device, fixed_bytes=0.0, item_bytes=0.0)
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=1, max_delay_s=0.0),
        )
        responses = submit_n(sim, server, 1)
        sim.run()
        assert responses[0].latency_s < 0.002

    def test_batch_grows_under_backlog(self):
        """Closed-loop behaviour: arrivals during service join one batch."""
        sim = Simulator()
        profile = make_profile(GPU_T4.device, fixed_bytes=2.7e9)  # ~20ms/pass
        server = EtudeInferenceServer(
            sim, GPU_T4.device, profile, np.random.default_rng(0),
            batching=BatchingConfig(max_batch_size=1024, max_delay_s=0.002),
        )
        responses = submit_n(sim, server, 100, spacing=0.001)  # 1k rps feed
        sim.run()
        assert max(r.batch_size for r in responses) >= 15


class TestRealInferenceMode:
    def test_server_attaches_model_output(self):
        from repro.models import ModelConfig, create_model

        model = create_model("stamp", ModelConfig.for_catalog(500, top_k=5))
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0), model=model,
        )
        responses = submit_n(sim, server, 1)
        sim.run()
        items = responses[0].items
        assert items is not None and items.shape == (5,)
        np.testing.assert_array_equal(items, model.recommend([1, 2, 3]))


class TestBatchingConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_delay_s=-0.1)


class TestWorkerThreadConfiguration:
    def test_more_workers_more_concurrency(self):
        """The paper: the server lets users configure worker threads."""

        def completion_span(worker_threads):
            sim = Simulator()
            profile = make_profile(CPU_E2.device, fixed_bytes=45e6)  # ~10ms
            server = EtudeInferenceServer(
                sim, CPU_E2.device, profile, np.random.default_rng(0),
                worker_threads=worker_threads,
            )
            responses = submit_n(sim, server, 10)
            sim.run()
            return max(r.completed_at for r in responses)

        assert completion_span(10) < 0.6 * completion_span(1)

    def test_invalid_worker_threads(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            EtudeInferenceServer(
                sim, CPU_E2.device, make_profile(CPU_E2.device),
                np.random.default_rng(0), worker_threads=0,
            )
