"""Heterogeneous scheduler end to end: the compact grammar, spec/CLI
wiring, dispatcher routing invariants (a tight-deadline request never
waits out a full GPU linger), tuner convergence, the disabled-mode
bit-identity contract on both pod classes, deployment guards, and the
planner's mixed-fleet dimension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.kubernetes import AuxiliaryFleet, DeploymentError
from repro.core import DeploymentPlanner, ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.spec import Scenario
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.hardware.instances import instance_by_name
from repro.scheduler import (
    EpochObservation,
    HillClimbTuner,
    QueryDispatcher,
    SchedulerConfig,
)
from repro.scheduler.dispatch import REASON_SHORT, REASON_TIGHT, ROUTE_CPU, ROUTE_GPU
from repro.scheduler.tuner import LINGER_FLOOR_S, SHORT_SESSION_CAP
from repro.serving.request import RecommendationRequest

CATALOG = 3_000
DURATION_S = 10.0


def spec(**overrides):
    base = dict(
        model="gru4rec", catalog_size=CATALOG, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=DURATION_S,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def request(session_length=8, deadline_s=None, sent_at=0.0):
    return RecommendationRequest(
        request_id=1, session_id=1,
        session_items=np.arange(session_length, dtype=np.int64),
        sent_at=sent_at, deadline_s=deadline_s,
    )


class TestConfig:
    def test_parse_full_spec_round_trips(self):
        config = SchedulerConfig.parse("cpu=2,short=6,target=25,q=95")
        assert config.cpu_replicas == 2 and config.short_session == 6
        assert config.target_p_ms == 25.0 and config.quantile == 95.0
        assert config.enabled
        assert SchedulerConfig.parse(config.spec_string()) == config

    def test_off_and_none_disable(self):
        for text in ("off", "none"):
            config = SchedulerConfig.parse(text)
            assert not config.enabled
            assert config.spec_string() == "off"

    def test_empty_means_defaults(self):
        config = SchedulerConfig.parse("")
        assert config == SchedulerConfig()
        assert config.spec_string() == "cpu=1"
        assert config.initial_batching() == (1024, 0.002)

    def test_unknown_key_and_bad_values_rejected(self):
        with pytest.raises(ValueError, match="cpu"):
            SchedulerConfig.parse("pods=3")
        with pytest.raises(ValueError, match="on/off"):
            SchedulerConfig.parse("tune=maybe")
        with pytest.raises(ValueError, match="int"):
            SchedulerConfig.parse("cpu=two")
        with pytest.raises(ValueError, match="target"):
            SchedulerConfig.parse("target=-5")

    def test_tuner_only_form_is_enabled(self):
        config = SchedulerConfig.parse("cpu=0")
        assert config.enabled and config.cpu_replicas == 0


class TestSpecWiring:
    def test_spec_coerces_string(self):
        coerced = spec(scheduler="cpu=2,target=20")
        assert isinstance(coerced.scheduler, SchedulerConfig)
        assert coerced.scheduler.cpu_replicas == 2

    def test_specfile_round_trip(self):
        original = spec(scheduler="cpu=2,short=6")
        document = spec_to_dict(original)
        assert document["scheduler"] == "cpu=2,short=6"
        rebuilt, _slo = spec_from_dict(document)
        assert rebuilt.scheduler == original.scheduler

    def test_specfile_omits_absent_scheduler(self):
        assert "scheduler" not in spec_to_dict(spec())


class TestDispatcherRouting:
    def dispatcher(self, **overrides):
        return QueryDispatcher(SchedulerConfig(**overrides))

    def test_tight_slack_never_waits_out_the_linger(self):
        """The routing invariant: remaining deadline budget below the
        current linger (+slack) must route to CPU, whatever the session."""
        dispatcher = self.dispatcher(linger_s=0.002)
        now = 10.0
        tight = request(session_length=30, deadline_s=now + 0.0015)
        assert dispatcher.route(tight, now, True, True) == ROUTE_CPU
        assert dispatcher.offloaded[REASON_TIGHT] == 1
        roomy = request(session_length=30, deadline_s=now + 0.050)
        assert dispatcher.route(roomy, now, True, True) == ROUTE_GPU

    def test_short_sessions_route_to_cpu(self):
        dispatcher = self.dispatcher(short_session=4)
        assert dispatcher.route(request(session_length=3), 0.0, True, True) == ROUTE_CPU
        assert dispatcher.route(request(session_length=4), 0.0, True, True) == ROUTE_CPU
        assert dispatcher.route(request(session_length=5), 0.0, True, True) == ROUTE_GPU
        assert dispatcher.offloaded[REASON_SHORT] == 2

    def test_single_class_fleet_takes_everything(self):
        dispatcher = self.dispatcher()
        tight = request(session_length=2, deadline_s=0.0001)
        assert dispatcher.route(tight, 0.0, False, True) == ROUTE_GPU
        assert dispatcher.route(tight, 0.0, True, False) == ROUTE_CPU
        # Degraded-fleet fallbacks are not counted as scheduler offloads.
        assert dispatcher.offloaded[REASON_TIGHT] == 0

    def test_live_knobs_shift_the_split(self):
        dispatcher = self.dispatcher(short_session=4)
        probe = request(session_length=6)
        assert dispatcher.route(probe, 0.0, True, True) == ROUTE_GPU
        dispatcher.short_session = 8  # what the tuner does between epochs
        assert dispatcher.route(probe, 0.0, True, True) == ROUTE_CPU


in_band_p = st.floats(min_value=42.6, max_value=57.4, allow_nan=False)


class TestTuner:
    def config(self, **overrides):
        base = dict(target_p_ms=50.0, tolerance=0.15)
        base.update(overrides)
        return SchedulerConfig(**base)

    @given(st.lists(in_band_p, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_in_band_tails_converge_without_moves(self, tails):
        """The convergence property: while the watched percentile stays
        inside the target band, no knob ever moves."""
        tuner = HillClimbTuner(self.config())
        for p in tails:
            assert tuner.step(EpochObservation(count=100, p_tail_ms=p)) is None
        assert tuner.moves == 0 and tuner.converged
        assert tuner.batching().max_batch_size == 1024
        assert tuner.batching().max_delay_s == 0.002

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_knobs_stay_in_bounds_under_any_tails(self, tails):
        config = self.config()
        tuner = HillClimbTuner(config, batch_cap=4096)
        for p in tails:
            tuner.step(EpochObservation(count=50, p_tail_ms=p, mean_batch=1024.0))
        assert LINGER_FLOOR_S <= tuner.linger_s <= config.linger_s
        assert config.max_batch <= tuner.max_batch <= 4096
        assert config.short_session <= tuner.short_session <= SHORT_SESSION_CAP

    def test_slow_tail_shrinks_linger_then_widens_offload(self):
        tuner = HillClimbTuner(self.config(target_p_ms=10.0))
        slow = EpochObservation(count=100, p_tail_ms=80.0, cpu_p_ms=20.0,
                                gpu_p_ms=80.0, mean_batch=4.0)
        moves = []
        for _ in range(12):
            moves.append(tuner.step(slow))
        assert moves[0] == "linger_s"
        assert "short_session" in moves  # only after linger hit its floor
        assert moves.index("short_session") > moves.index("linger_s")
        assert tuner.linger_s == LINGER_FLOOR_S

    def test_saturated_batches_grow_the_cap_first(self):
        tuner = HillClimbTuner(self.config(target_p_ms=10.0), batch_cap=4096)
        saturated = EpochObservation(count=100, p_tail_ms=80.0, mean_batch=1024.0)
        assert tuner.step(saturated) == "max_batch"
        assert tuner.max_batch == 2048

    def test_headroom_relaxes_linger_back(self):
        tuner = HillClimbTuner(self.config(target_p_ms=10.0))
        tuner.linger_s = 0.0005  # as if earlier epochs tightened it
        assert tuner.step(EpochObservation(count=100, p_tail_ms=2.0)) == "linger_s"
        assert tuner.linger_s == 0.001

    def test_drowning_cpu_pool_is_never_fed_more(self):
        tuner = HillClimbTuner(self.config(target_p_ms=10.0))
        tuner.linger_s = LINGER_FLOOR_S
        cpu_drowning = EpochObservation(count=100, p_tail_ms=80.0,
                                        cpu_p_ms=200.0, gpu_p_ms=80.0)
        assert tuner.step(cpu_drowning) is None
        assert tuner.short_session == SchedulerConfig().short_session

    def test_empty_epochs_are_ignored(self):
        tuner = HillClimbTuner(self.config())
        assert tuner.step(EpochObservation(count=0, p_tail_ms=None)) is None
        assert not tuner.converged and tuner.epochs == 1


class TestDisabledBitIdentity:
    """The opt-in contract: ``--scheduler off`` must not perturb a byte."""

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_off_is_byte_identical(self, instance):
        baseline = ExperimentRunner(seed=7).run(
            spec(hardware=HardwareSpec(instance, 1))
        )
        disabled = ExperimentRunner(seed=7).run(
            spec(hardware=HardwareSpec(instance, 1), scheduler="off")
        )
        assert baseline.to_json() == disabled.to_json()
        assert baseline.scheduler is None and disabled.scheduler is None


class TestHeterogeneousRuns:
    def test_scheduler_section_contents(self):
        result = ExperimentRunner(seed=7).run(
            spec(
                hardware=HardwareSpec("GPU-T4", 1), target_rps=200,
                scheduler="cpu=1,target=20",
            )
        )
        section = result.scheduler
        assert section is not None
        assert section["cpu_replicas"] == 1
        assert section["routed_cpu"] + section["routed_gpu"] == result.ok_requests
        assert section["routed_cpu"] > 0 and section["routed_gpu"] > 0
        assert section["offload_short_session"] > 0
        assert section["tuner"]["epochs"] > 0
        assert result.error_requests == 0

    def test_tuner_only_run_on_gpu(self):
        """``cpu=0`` keeps the fleet homogeneous but tunes the batching."""
        result = ExperimentRunner(seed=7).run(
            spec(
                hardware=HardwareSpec("GPU-T4", 1), target_rps=200,
                scheduler="cpu=0,target=1,tol=0.1",
            )
        )
        section = result.scheduler
        assert section is not None and section["cpu_replicas"] == 0
        # An unreachable 1 ms target forces the tuner off 1024/2ms.
        assert section["tuner"]["moves"] > 0
        assert section["tuner"]["linger_s"] < 0.002


class TestDeploymentGuards:
    def test_auxiliary_fleet_rejects_accelerators(self):
        gpu = instance_by_name("GPU-T4")
        with pytest.raises(ValueError, match="accelerator"):
            AuxiliaryFleet(
                instance_type=gpu, replicas=1,
                service_profile=None, resident_bytes=0,
            )

    def test_scheduler_requires_accelerator_primary(self):
        with pytest.raises(DeploymentError, match="accelerator"):
            ExperimentRunner(seed=7).run(spec(scheduler="cpu=1"))

    def test_scheduler_does_not_compose_with_sharding(self):
        with pytest.raises(DeploymentError, match="sharding"):
            ExperimentRunner(seed=7).run(
                spec(
                    hardware=HardwareSpec("GPU-T4", 1),
                    scheduler="cpu=1", sharding="2",
                )
            )


class TestPlannerDimension:
    def test_empty_scheduler_options_rejected(self):
        with pytest.raises(ValueError):
            DeploymentPlanner(scheduler_options=())

    def test_mixed_fleet_option_costs_both_classes(self):
        config = SchedulerConfig.parse("cpu=1,target=20")
        # 15 s, not DURATION_S: the TIMEPROP ramp only offers the target
        # rate in its final ticks, and a 10 s run leaves a single at-target
        # window whose presence flips with provisioning jitter. 15 s gives
        # enough at-target windows for feasibility to be jitter-robust.
        planner = DeploymentPlanner(
            duration_s=15.0, scheduler_options=(None, config)
        )
        gpu = instance_by_name("GPU-T4")
        plan = planner.plan(
            Scenario("tiny", CATALOG, 30), ["gru4rec"], [gpu]
        )["gru4rec"]
        mixed = [option for option in plan.options if option.cpu_replicas > 0]
        assert len(mixed) == 1
        option = mixed[0]
        assert option.scheduler == config.spec_string()
        assert option.total_machines == option.replicas + 1
        cpu = instance_by_name("CPU")
        assert option.monthly_cost_usd == pytest.approx(
            gpu.cost_for(option.replicas) + cpu.cost_for(1)
        )
        # Homogeneous GPU serving is also feasible here and strictly
        # cheaper, so the mixed fleet must not win this scenario.
        assert plan.cheapest().cpu_replicas == 0

    def test_cpu_primary_is_marked_infeasible(self):
        config = SchedulerConfig.parse("cpu=1")
        planner = DeploymentPlanner(
            duration_s=DURATION_S, scheduler_options=(config,)
        )
        plan = planner.plan(
            Scenario("tiny", CATALOG, 30), ["gru4rec"],
            [instance_by_name("CPU")],
        )["gru4rec"]
        key = f"CPU {{{config.spec_string()}}}"
        assert key in plan.infeasible
        assert "accelerator" in plan.infeasible[key]
        assert not plan.options
