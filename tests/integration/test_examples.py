"""The example scripts must stay runnable (they are documentation)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = (
    "quickstart.py",
    "workload_fitting.py",
    "torchserve_vs_etude.py",
    "resilient_serving.py",
    "latency_quality_tradeoffs.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_all_examples_are_covered_or_slow():
    """Every example is either smoke-tested here or known-slow."""
    known_slow = {"capacity_planning.py"}
    present = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert present == set(FAST_EXAMPLES) | known_slow
