"""Cross-component system invariants: determinism and conservation."""

import numpy as np
import pytest

from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec


def run_experiment(seed, **overrides):
    spec = dict(
        model="gru4rec",
        catalog_size=100_000,
        target_rps=150,
        hardware=HardwareSpec("CPU", 2),
        duration_s=45.0,
    )
    spec.update(overrides)
    return ExperimentRunner(seed=seed).run(ExperimentSpec(**spec))


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        a = run_experiment(123)
        b = run_experiment(123)
        assert a.ok_requests == b.ok_requests
        assert a.total_requests == b.total_requests
        assert a.p50_ms == pytest.approx(b.p50_ms)
        assert a.p90_ms == pytest.approx(b.p90_ms)
        assert a.p99_ms == pytest.approx(b.p99_ms)
        assert a.achieved_rps == pytest.approx(b.achieved_rps)

    def test_per_second_series_identical(self):
        a = run_experiment(77)
        b = run_experiment(77)
        assert a.series.offered_rps == b.series.offered_rps
        assert a.series.ok == b.series.ok
        assert a.series.p90_ms == pytest.approx(b.series.p90_ms)

    def test_different_seeds_differ(self):
        a = run_experiment(1)
        b = run_experiment(2)
        # Noise streams differ, so the exact completion timeline does too
        # (achieved_rps is continuous in the last completion instant).
        assert a.achieved_rps != b.achieved_rps

    def test_gpu_batching_also_deterministic(self):
        a = run_experiment(55, hardware=HardwareSpec("GPU-T4", 1),
                           catalog_size=1_000_000, target_rps=400)
        b = run_experiment(55, hardware=HardwareSpec("GPU-T4", 1),
                           catalog_size=1_000_000, target_rps=400)
        assert a.p90_ms == pytest.approx(b.p90_ms)


class TestConservation:
    @pytest.mark.parametrize(
        "hardware,catalog,rps",
        [
            (HardwareSpec("CPU", 1), 100_000, 150),
            (HardwareSpec("GPU-T4", 2), 1_000_000, 600),
            (HardwareSpec("CPU", 1), 1_000_000, 400),  # overloaded
        ],
    )
    def test_every_sent_request_answered_once(self, hardware, catalog, rps):
        result = run_experiment(9, hardware=hardware, catalog_size=catalog,
                                target_rps=rps)
        sent = sum(result.series.offered_rps)
        assert sent == result.ok_requests + result.error_requests
        assert sent == result.total_requests

    def test_overload_handled_gracefully(self):
        """An impossible target ends without timeouts or stuck state."""
        result = run_experiment(3, catalog_size=1_000_000,
                                hardware=HardwareSpec("CPU", 1), target_rps=2000)
        assert result.backpressure_stalls > 0
        assert result.total_requests == result.ok_requests + result.error_requests
        assert not result.meets_slo(50.0)


class TestArtifactRoundtrip:
    def test_served_state_matches_trained_state(self):
        """The artifact that deployments load restores the exact model."""
        from repro.core.registry import GLOBAL_REGISTRY
        from repro.models import ModelConfig, create_model
        from repro.tensor.serialization import load_into_module, save_module_state

        source = GLOBAL_REGISTRY.model("narm", 10_000)
        blob = save_module_state(source, metadata=source.artifact_metadata())
        clone = create_model("narm", ModelConfig.for_catalog(10_000))
        metadata = load_into_module(clone, blob)
        assert metadata["model"] == "narm"
        session = [7, 42, 9_999]
        np.testing.assert_array_equal(
            source.recommend(session), clone.recommend(session)
        )
