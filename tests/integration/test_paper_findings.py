"""Integration tests pinning the paper's headline findings.

Each test corresponds to a claim in Section III; EXPERIMENTS.md records the
full quantitative comparison. These run on shortened durations (the shape
assertions hold at 60-120 simulated seconds just as at the paper's ten
minutes).
"""

import numpy as np
import pytest

from repro.core import (
    ExperimentRunner,
    ExperimentSpec,
    HardwareSpec,
    run_infra_test,
    serial_microbenchmark,
)
from repro.hardware import CPU_E2, GPU_A100, GPU_T4
from repro.models import HEALTHY_MODELS


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=2024)


class TestFigure2InfraTest:
    """TorchServe fails 'empty' requests at 1,000 req/s; Actix does not."""

    def test_torchserve_error_avalanche(self):
        result = run_infra_test("torchserve", target_rps=1000, duration_s=120)
        assert result.error_rate > 0.15

    def test_torchserve_p90_between_50_and_300ms(self):
        result = run_infra_test("torchserve", target_rps=1000, duration_s=120)
        assert 50.0 < result.p90_ms < 300.0

    def test_actix_p90_around_one_millisecond(self):
        result = run_infra_test("actix", target_rps=1000, duration_s=120)
        assert result.errors == 0
        assert result.p90_ms < 3.0


class TestFigure3Microbenchmark:
    """Linear scaling in C; GPU >10x at 1M; CPU parity at 10k; JIT helps."""

    def test_linear_scaling_with_catalog_size(self):
        latencies = [
            serial_microbenchmark("gru4rec", c, CPU_E2, num_requests=60).p90_ms
            for c in (100_000, 1_000_000, 10_000_000)
        ]
        # Each 10x catalog step grows latency by roughly 10x (within 2x).
        for smaller, larger in zip(latencies, latencies[1:]):
            assert 5.0 < larger / smaller < 25.0

    def test_gpu_order_of_magnitude_at_one_million(self):
        cpu = serial_microbenchmark("narm", 1_000_000, CPU_E2, num_requests=60)
        gpu = serial_microbenchmark("narm", 1_000_000, GPU_T4, num_requests=60)
        assert cpu.p90_ms > 10.0 * gpu.p90_ms

    def test_cpu_over_50ms_per_prediction_at_one_million_eager(self):
        """Paper: 'the CPU already requires more than 50ms per prediction
        for catalogs with one million items' — true for the heavier eager
        implementations (CORE's un-folded normalization, RepeatNet)."""
        core = serial_microbenchmark("core", 1_000_000, CPU_E2, "eager", num_requests=40)
        assert core.p90_ms > 50.0

    def test_cpu_competitive_at_ten_thousand(self):
        """At C=10,000 the CPU latency is on par with or lower than the GPU
        latency for a majority of the models (paper: 6 out of 10 cases)."""
        from repro.models import BENCHMARK_MODELS

        cpu_lower = 0
        models = [m for m in BENCHMARK_MODELS if m != "noop"]
        for model in models:
            cpu = serial_microbenchmark(model, 10_000, CPU_E2, num_requests=60)
            gpu = serial_microbenchmark(model, 10_000, GPU_T4, num_requests=60)
            if cpu.p90_ms <= gpu.p90_ms:
                cpu_lower += 1
        assert 4 <= cpu_lower <= 8  # the paper observes 6/10

    def test_jit_always_helps_and_never_hurts(self):
        for model in ("gru4rec", "sasrec", "core", "stamp"):
            for catalog in (10_000, 1_000_000):
                eager = serial_microbenchmark(
                    model, catalog, CPU_E2, "eager", num_requests=40
                )
                jit = serial_microbenchmark(
                    model, catalog, CPU_E2, "jit", num_requests=40
                )
                assert jit.p90_ms <= eager.p90_ms * 1.05, (model, catalog)

    def test_lightsans_jit_failure(self):
        result = serial_microbenchmark("lightsans", 10_000, CPU_E2, "jit")
        assert result.jit_failed


class TestBuggyModels:
    """RepeatNet / SR-GNN / GC-SAN cannot handle most use cases."""

    def test_repeatnet_fails_fashion_on_gpu(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="repeatnet", catalog_size=1_000_000, target_rps=500,
                hardware=HardwareSpec("GPU-T4", 1), duration_s=60.0,
            )
        )
        assert not result.meets_slo(50.0)

    def test_srgnn_host_ops_cap_gpu_throughput(self, runner):
        healthy = runner.run(
            ExperimentSpec(
                model="gru4rec", catalog_size=1_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-T4", 1), duration_s=60.0,
            )
        )
        buggy = runner.run(
            ExperimentSpec(
                model="srgnn", catalog_size=1_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-T4", 1), duration_s=60.0,
            )
        )
        assert healthy.meets_slo(50.0)
        assert not buggy.meets_slo(50.0)

    def test_repeatnet_transfer_dominates(self):
        """The dense one-hot scatter moves ~L*C floats per request."""
        from repro.core.registry import GLOBAL_REGISTRY

        trace, _mode, _failed = GLOBAL_REGISTRY.trace("repeatnet", 1_000_000, "jit")
        assert trace.total_transfer_bytes > 1e8


class TestTableIScenarios:
    """Spot checks of the Table I deployment outcomes."""

    def test_groceries_small_one_cpu_all_models(self, runner):
        for model in HEALTHY_MODELS:
            result = runner.run(
                ExperimentSpec(
                    model=model, catalog_size=10_000, target_rps=100,
                    hardware=HardwareSpec("CPU", 1), duration_s=60.0,
                )
            )
            assert result.meets_slo(50.0), model

    def test_fashion_one_t4_all_models(self, runner):
        for model in HEALTHY_MODELS:
            result = runner.run(
                ExperimentSpec(
                    model=model, catalog_size=1_000_000, target_rps=500,
                    hardware=HardwareSpec("GPU-T4", 1), duration_s=60.0,
                )
            )
            assert result.meets_slo(50.0), model

    def test_ecommerce_five_t4s(self, runner):
        passing = runner.run(
            ExperimentSpec(
                model="gru4rec", catalog_size=10_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-T4", 5), duration_s=90.0,
            )
        )
        failing = runner.run(
            ExperimentSpec(
                model="gru4rec", catalog_size=10_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-T4", 3), duration_s=90.0,
            )
        )
        assert passing.meets_slo(50.0)
        assert not failing.meets_slo(50.0)

    def test_five_t4s_cheaper_than_two_a100s(self):
        assert GPU_T4.cost_for(5) < GPU_A100.cost_for(2)

    def test_platform_needs_a100(self, runner):
        t4 = runner.run(
            ExperimentSpec(
                model="narm", catalog_size=20_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-T4", 8), duration_s=90.0,
            )
        )
        a100 = runner.run(
            ExperimentSpec(
                model="narm", catalog_size=20_000_000, target_rps=1000,
                hardware=HardwareSpec("GPU-A100", 3), duration_s=90.0,
            )
        )
        assert not t4.meets_slo(50.0)
        assert a100.meets_slo(50.0)

    def test_fashion_on_cpus_for_lean_models(self, runner):
        """SASRec and STAMP stay cost-efficient on 3 CPUs at one million
        items (the paper's $324 option); CORE does not."""
        for model, expected in (("sasrec", True), ("stamp", True), ("core", False)):
            result = runner.run(
                ExperimentSpec(
                    model=model, catalog_size=1_000_000, target_rps=500,
                    hardware=HardwareSpec("CPU", 3), duration_s=60.0,
                )
            )
            assert result.meets_slo(50.0) == expected, model


class TestSyntheticVsReal:
    """Sec III-A: synthetic replay latencies resemble real-log replay."""

    def test_latency_distributions_close(self):
        from repro.workload import (
            SyntheticWorkloadGenerator,
            WorkloadStatistics,
            synthesize_real_clicklog,
        )
        from repro.core.experiment import ExperimentRunner as Runner

        catalog = 100_000
        real_log = synthesize_real_clicklog(catalog, 30_000, seed=31)
        fitted = WorkloadStatistics.from_clicklog(real_log, catalog)

        def run_with(source_sessions):
            import itertools

            from repro.cluster.service import ClusterIPService
            from repro.loadgen.generator import LoadGenerator
            from repro.metrics.collector import MetricsCollector

            runner = Runner(seed=55)
            spec = ExperimentSpec(
                model="gru4rec", catalog_size=catalog, target_rps=200,
                hardware=HardwareSpec("CPU", 1), duration_s=60.0,
                workload=fitted,
            )
            # run() uses Algorithm 1 internally; for the "real" replay we
            # monkey-feed sessions by cycling the real log.
            if source_sessions is None:
                return runner.run(spec)
            collector = MetricsCollector()
            assets = runner.registry.assets(
                "gru4rec", catalog, CPU_E2.device, "jit"
            )
            artifact = runner._ensure_artifact(assets)
            runner.infra.reset_simulator()
            sim = runner.infra.simulator
            deployment = runner.infra.cluster.deploy_model(
                name="real", instance_type=CPU_E2, replicas=1,
                artifact_path=artifact, service_profile=assets.profile,
                resident_bytes=assets.resident_bytes,
                score_bytes_per_item=assets.score_bytes_per_item,
            )

            def coordinator():
                yield deployment.ready_signal
                service = ClusterIPService(
                    sim, deployment, np.random.default_rng(1)
                )
                generator = LoadGenerator(
                    sim, service.submit,
                    itertools.cycle(source_sessions),
                    target_rps=200, duration_s=60.0, collector=collector,
                )
                generator.start()

            sim.spawn(coordinator())
            sim.run()
            return collector

        synthetic_result = run_with(None)
        real_collector = run_with(real_log.sessions())
        synthetic_p90 = synthetic_result.p90_ms
        real_p90 = real_collector.percentile_ms(90)
        assert synthetic_p90 == pytest.approx(real_p90, rel=0.25)
