"""Cache config grammar, session-prefix keys, tiers, and singleflight."""

import numpy as np
import pytest

from repro.cache.keys import SessionKeyer, prefix_tuple
from repro.cache.policy import MISSING
from repro.cache.tier import CacheConfig, RecommendationCache, RemoteCacheTier
from repro.serving.batching import assemble_unique


class TestCacheConfigGrammar:
    def test_defaults(self):
        config = CacheConfig.parse("")
        assert config == CacheConfig()
        assert config.enabled

    def test_full_spec(self):
        config = CacheConfig.parse(
            "lfu,capacity=512,window=4,ttl=30,remote=65536,rttl=120"
        )
        assert config.policy == "lfu"
        assert config.capacity == 512
        assert config.window == 4
        assert config.ttl_s == 30.0
        assert config.remote_capacity == 65536
        assert config.remote_ttl_s == 120.0

    def test_bare_policy_name(self):
        assert CacheConfig.parse("segmented").policy == "segmented"

    @pytest.mark.parametrize(
        "text",
        ["arc", "capacity=-1", "window=0", "ttl=-5", "size=10", "policy=weird"],
    )
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError):
            CacheConfig.parse(text)

    @pytest.mark.parametrize(
        "text",
        ["", "lfu", "segmented,capacity=9,window=3", "ttl=0,remote=100,rttl=0"],
    )
    def test_spec_string_round_trips(self, text):
        config = CacheConfig.parse(text)
        assert CacheConfig.parse(config.spec_string()) == config

    def test_zero_capacity_both_tiers_is_disabled(self):
        assert not CacheConfig(capacity=0).enabled
        assert CacheConfig(capacity=0, remote_capacity=8).enabled
        assert CacheConfig(capacity=8, remote_capacity=0).enabled


class TestSessionPrefixKeys:
    def test_key_is_last_window_clicks(self):
        assert prefix_tuple([1, 2, 3, 4, 5], window=3) == (3, 4, 5)
        assert prefix_tuple([1, 2], window=8) == (1, 2)
        assert prefix_tuple(np.array([7, 8, 9], dtype=np.int64), window=2) == (8, 9)

    def test_same_suffix_same_key(self):
        """Sessions that diverge before the window share one cache entry."""
        keyer = SessionKeyer("v1", window=2)
        assert keyer.key_for([1, 2, 9, 10]) == keyer.key_for([5, 6, 9, 10])
        assert keyer.key_for([9, 10]) == keyer.key_for([1, 2, 9, 10])

    def test_version_scopes_the_key(self):
        """Redeploying a new artifact must change every key."""
        keyer = SessionKeyer("models/gru-v1.pt", window=4)
        before = keyer.key_for([1, 2, 3])
        keyer.set_version("models/gru-v2.pt")
        assert keyer.key_for([1, 2, 3]) != before


class TestRecommendationCache:
    def make(self, **overrides):
        config = CacheConfig(**{"capacity": 8, "window": 4, **overrides})
        return RecommendationCache(config, version="v1")

    def test_requires_enabled_config(self):
        with pytest.raises(ValueError):
            RecommendationCache(CacheConfig(capacity=0), version="v1")

    def test_fill_then_hit(self):
        cache = self.make()
        key = cache.key_for([1, 2, 3])
        assert cache.lookup_local(key, 0.0) is MISSING
        cache.fill(key, "answer", 0.0)
        assert cache.lookup_local(key, 1.0) == "answer"
        assert cache.hits_local == 1 and cache.fills == 1

    def test_cached_none_is_a_hit(self):
        """Latency-only runs cache None recommendations; None != MISSING."""
        cache = self.make()
        key = cache.key_for([1, 2])
        cache.fill(key, None, 0.0)
        assert cache.lookup_local(key, 0.0) is None
        assert cache.hits_local == 1

    def test_redeploy_invalidates(self):
        cache = self.make()
        key = cache.key_for([1, 2, 3])
        cache.fill(key, "stale", 0.0)
        cache.set_version("v2")
        assert cache.lookup_local(cache.key_for([1, 2, 3]), 0.0) is MISSING

    def test_singleflight_accounting(self):
        cache = self.make()
        key = cache.key_for([4, 5, 6])
        assert not cache.flight_exists(key)
        cache.begin_flight(key)
        assert cache.flight_exists(key) and cache.in_flight() == 1
        cache.join_flight(key, ("req-a", "respond-a", 1.0))
        cache.join_flight(key, ("req-b", "respond-b", 2.0))
        waiters = cache.finish_flight(key)
        assert [w[0] for w in waiters] == ["req-a", "req-b"]
        assert not cache.flight_exists(key)
        assert cache.misses == 1 and cache.coalesced == 2

    def test_hit_rate_ignores_coalesced(self):
        cache = self.make()
        key = cache.key_for([1])
        cache.begin_flight(key)
        cache.join_flight(key, ("r", "cb", 0.0))
        cache.fill(key, "x", 0.0)
        cache.lookup_local(key, 0.0)
        assert cache.lookups == 2  # one miss + one hit; follower not counted
        assert cache.hit_rate() == 0.5

    def test_stats_keys_are_stable(self):
        stats = self.make().stats()
        assert set(stats) == {
            "hits_local", "hits_remote", "misses", "fills",
            "coalesced", "evictions", "expirations",
        }


class TestRemoteTier:
    def test_shared_store_and_backfill_accounting(self):
        config = CacheConfig(capacity=4, remote_capacity=64)
        remote = RemoteCacheTier(config)
        pod_a = RecommendationCache(config, version="v1", remote=remote)
        pod_b = RecommendationCache(config, version="v1", remote=remote)
        key = pod_a.key_for([1, 2, 3])
        pod_a.fill(key, "shared", 0.0)  # fills local A and the remote
        assert pod_b.lookup_local(key, 0.0) is MISSING
        assert pod_b.lookup_remote(key, 0.0) == "shared"
        assert pod_b.hits_remote == 1 and remote.hits == 1

    def test_remote_only_configuration(self):
        config = CacheConfig(capacity=0, remote_capacity=32)
        cache = RecommendationCache(
            config, version="v1", remote=RemoteCacheTier(config)
        )
        assert cache.local is None
        key = cache.key_for([1])
        cache.fill(key, "x", 0.0)
        assert cache.lookup_local(key, 0.0) is MISSING
        assert cache.lookup_remote(key, 0.0) == "x"

    def test_remote_requires_capacity(self):
        with pytest.raises(ValueError):
            RemoteCacheTier(CacheConfig(capacity=8, remote_capacity=0))


class TestAssembleUnique:
    def test_duplicates_split_out_in_order(self):
        entries = ["a1", "b1", "a2", "c1", "b2"]
        unique, duplicates = assemble_unique(entries, key_of=lambda e: e[0])
        assert unique == ["a1", "b1", "c1"]
        assert duplicates == ["a2", "b2"]

    def test_none_keys_always_pass_through(self):
        entries = ["x", "y", "z"]
        unique, duplicates = assemble_unique(entries, key_of=lambda e: None)
        assert unique == entries and duplicates == []
