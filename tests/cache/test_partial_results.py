"""Partial / degraded results must never poison the cache tiers.

Two regressions guarded here (docs/availability.md):

1. Cross-shard poisoning via the shared remote tier: every shard of a
   deployment shares one ``RemoteCacheTier``, so without shard-scoped
   cache versions, shard A's slice result answers shard B's leg for the
   same session prefix — a spurious "full coverage" hit built from the
   wrong catalog slice.
2. Degraded payloads (fallback answers, scatter-gather merges with
   ``coverage < 1.0``) must never be written into either tier, or a
   TTL-lived entry keeps serving the degraded result long after the
   outage that caused it has cleared.
"""

import numpy as np
import pytest

from repro.cache.policy import MISSING
from repro.cache.tier import CacheConfig, RecommendationCache, RemoteCacheTier
from repro.hardware import CPU_E2, LatencyModel
from repro.serving import ActixProfile, EtudeInferenceServer
from repro.serving.actix import cacheable_result, shard_scoped_version
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


class FakeShardScorer:
    """Stands in for ``repro.sharding.merge.ShardScorer``: same duck type
    (``shard_index`` / ``shards`` / ``recommend_with_scores``), but returns a
    fixed slice so the test can tell which shard actually answered."""

    def __init__(self, shard_index, shards):
        self.shard_index = shard_index
        self.shards = shards

    def recommend_with_scores(self, session_items):
        base = 100 * self.shard_index
        items = np.arange(base, base + 3, dtype=np.int64)
        scores = np.array([3.0, 2.0, 1.0])
        return items, scores

    def recommend(self, session_items):
        return self.recommend_with_scores(session_items)[0]


def make_profile():
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e5))
    return LatencyModel(CPU_E2.device).profile(trace)


def make_request(request_id, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.array([1, 2, 3], dtype=np.int64),
        sent_at=now,
    )


def make_shard_server(sim, shard_index, shards, remote, config, seed=0):
    return EtudeInferenceServer(
        sim,
        CPU_E2.device,
        make_profile(),
        np.random.default_rng(seed),
        profile=ActixProfile(cache=config),
        model=FakeShardScorer(shard_index, shards),
        name=f"shard{shard_index}",
        artifact_version="models/v1.pt",
        remote_cache=remote,
    )


class TestShardScopedVersions:
    def test_plain_model_keeps_the_artifact_version(self):
        assert shard_scoped_version("v1", object()) == "v1"
        assert shard_scoped_version("v1", None) == "v1"

    def test_shard_scorers_get_disjoint_versions(self):
        versions = {
            shard_scoped_version("v1", FakeShardScorer(index, 4))
            for index in range(4)
        }
        assert len(versions) == 4
        assert all(v.startswith("v1#shard") for v in versions)

    def test_remote_tier_never_crosses_shards(self):
        """The poisoning regression, at the cache layer: one shared remote
        tier, same session prefix, two shard-scoped caches — shard 1 must
        MISS on shard 0's fill."""
        config = CacheConfig(capacity=8, remote_capacity=64)
        remote = RemoteCacheTier(config)
        cache_a = RecommendationCache(
            config,
            version=shard_scoped_version("v1", FakeShardScorer(0, 2)),
            remote=remote,
        )
        cache_b = RecommendationCache(
            config,
            version=shard_scoped_version("v1", FakeShardScorer(1, 2)),
            remote=remote,
        )
        session = [1, 2, 3]
        cache_a.fill(cache_a.key_for(session), "slice-0", 0.0)
        assert cache_b.lookup_remote(cache_b.key_for(session), 0.0) is MISSING

    def test_shard_replicas_still_share_within_a_shard(self):
        """Scoping is per shard, not per pod: two replicas of the same
        shard must keep backfilling each other through the remote tier."""
        config = CacheConfig(capacity=8, remote_capacity=64)
        remote = RemoteCacheTier(config)
        replica_a = RecommendationCache(
            config,
            version=shard_scoped_version("v1", FakeShardScorer(1, 2)),
            remote=remote,
        )
        replica_b = RecommendationCache(
            config,
            version=shard_scoped_version("v1", FakeShardScorer(1, 2)),
            remote=remote,
        )
        session = [1, 2, 3]
        replica_a.fill(replica_a.key_for(session), "slice-1", 0.0)
        assert replica_b.lookup_remote(replica_b.key_for(session), 0.0) == "slice-1"

    def test_end_to_end_each_shard_serves_its_own_slice(self):
        """Same session through both shard servers sharing one remote
        tier: each must answer from its own catalog slice. Without
        shard-scoped versions, shard 1 hits shard 0's remote entry and
        returns items 0..2 instead of 100..102."""
        sim = Simulator()
        config = CacheConfig(capacity=8, remote_capacity=64, window=4)
        remote = RemoteCacheTier(config)
        server_a = make_shard_server(sim, 0, 2, remote, config)
        server_b = make_shard_server(sim, 1, 2, remote, config, seed=1)
        responses = {}

        def sender():
            server_a.submit(make_request(0, sim.now), lambda r: responses.__setitem__("a", r))
            yield 0.5
            server_b.submit(make_request(1, sim.now), lambda r: responses.__setitem__("b", r))

        sim.spawn(sender())
        sim.run()
        assert responses["a"].status == HTTP_OK
        assert responses["b"].status == HTTP_OK
        assert list(responses["a"].items) == [0, 1, 2]
        assert list(responses["b"].items) == [100, 101, 102]
        # And the second shard really executed (no spurious remote hit).
        assert not responses["b"].cache_hit


class TestDegradedResultsNeverFill:
    @pytest.mark.parametrize(
        "payload",
        [np.arange(3), (np.arange(3), np.ones(3)), None],
    )
    def test_raw_payloads_are_full_quality(self, payload):
        """Fresh model output (and the latency-only ``None``) always
        caches; only response-shaped payloads carry quality flags."""
        assert cacheable_result(payload)

    def test_full_quality_response_is_cacheable(self):
        response = RecommendationResponse(
            request_id=0, status=HTTP_OK, completed_at=0.0, latency_s=0.0,
            items=np.arange(3),
        )
        assert cacheable_result(response)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"degraded": True},
            {"coverage": 0.5},
            {"status": HTTP_SERVICE_UNAVAILABLE},
        ],
    )
    def test_degraded_responses_are_not(self, overrides):
        base = dict(
            request_id=0, status=HTTP_OK, completed_at=0.0, latency_s=0.0,
            items=np.arange(3), coverage=1.0,
        )
        response = RecommendationResponse(**{**base, **overrides})
        assert not cacheable_result(response)

    def test_server_refuses_to_fill_a_partial_result(self):
        """Drive the fill path directly with a partial-coverage response:
        the flight settles, followers are answered, but neither tier is
        written and the rejection is tallied."""
        sim = Simulator()
        config = CacheConfig(capacity=8, remote_capacity=64, window=4)
        remote = RemoteCacheTier(config)
        server = make_shard_server(sim, 0, 2, remote, config)
        request = make_request(7)
        key = server.cache.key_for(request.session_items)
        server.cache.begin_flight(key)
        server._flight_keys[request.request_id] = key
        partial = RecommendationResponse(
            request_id=7, status=HTTP_OK, completed_at=0.0, latency_s=0.0,
            items=np.arange(3), coverage=0.5,
        )
        server._resolve_flight_ok(request, partial)
        assert server.cache_fill_rejected == 1
        assert server.cache.fills == 0
        assert server.cache.lookup_local(key, 0.0) is MISSING
        assert server.cache.lookup_remote(key, 0.0) is MISSING
