"""Property-based tests on the eviction policies.

Random op sequences drive each policy and the invariants every bounded
TTL-aware store must keep: capacity is never exceeded, expired entries
never come back, live entries within capacity are readable, and the
LRU/LFU victim-selection orders hold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policy import (
    MISSING,
    LFUPolicy,
    LRUPolicy,
    POLICIES,
    SegmentedPolicy,
    make_policy,
)

# A random op: (kind, key). Keys from a small space so collisions and
# re-puts actually happen; values derive from (key, op index).
ops = st.lists(
    st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 30)),
    min_size=1,
    max_size=200,
)
capacities = st.integers(1, 12)
policy_names = st.sampled_from(POLICIES)


class TestBoundedStoreInvariants:
    @given(policy_names, capacities, ops)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, name, capacity, sequence):
        policy = make_policy(name, capacity)
        now = 0.0
        for index, (kind, key) in enumerate(sequence):
            now += 0.25
            if kind == "put":
                policy.put(key, (key, index), now)
            else:
                policy.get(key, now)
            assert len(policy) <= capacity

    @given(policy_names, capacities, ops)
    @settings(max_examples=60, deadline=None)
    def test_get_returns_what_was_put_or_missing(self, name, capacity, sequence):
        """A hit always yields the latest value stored for that key."""
        policy = make_policy(name, capacity)
        latest = {}
        now = 0.0
        for index, (kind, key) in enumerate(sequence):
            now += 0.25
            if kind == "put":
                policy.put(key, (key, index), now)
                latest[key] = (key, index)
            else:
                value = policy.get(key, now)
                if value is not MISSING:
                    assert value == latest[key]

    @given(policy_names, ops)
    @settings(max_examples=40, deadline=None)
    def test_ttl_expiry_against_virtual_clock(self, name, sequence):
        """No entry is ever readable >= TTL after its last put."""
        ttl = 10.0
        policy = make_policy(name, capacity=64, ttl_s=ttl)
        stamps = {}
        now = 0.0
        for kind, key in sequence:
            now += 3.0
            if kind == "put":
                policy.put(key, key * 7, now)
                stamps[key] = now
            else:
                value = policy.get(key, now)
                if key in stamps and now - stamps[key] >= ttl:
                    assert value is MISSING
        # Far enough in the future, everything is expired.
        later = now + ttl
        for key in stamps:
            assert policy.get(key, later) is MISSING
        assert policy.expirations > 0 or not stamps

    @given(policy_names, capacities, ops)
    @settings(max_examples=40, deadline=None)
    def test_eviction_counter_matches_displacements(self, name, capacity, sequence):
        """Size-change accounting: every insertion is either still resident
        or shows up in the eviction counter (no TTL in play here)."""
        policy = make_policy(name, capacity)
        insertions = 0
        now = 0.0
        for kind, key in sequence:
            if kind != "put":
                continue
            now += 0.25
            if key not in policy._entries:
                insertions += 1
            policy.put(key, key, now)
        assert len(policy) + policy.evictions == insertions


class TestLRUOrdering:
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_survivors_are_most_recently_used(self, keys):
        """After any access pattern, the resident set is exactly the last
        ``capacity`` distinct keys touched."""
        capacity = 5
        policy = LRUPolicy(capacity)
        now = 0.0
        for key in keys:
            now += 1.0
            if policy.get(key, now) is MISSING:
                policy.put(key, key, now)
        expected = []
        for key in reversed(keys):
            if key not in expected:
                expected.append(key)
            if len(expected) == capacity:
                break
        for key in expected:
            assert policy.get(key, now) == key

    def test_eviction_order_is_least_recent_first(self):
        policy = LRUPolicy(3)
        for key in (1, 2, 3):
            policy.put(key, key, 0.0)
        policy.get(1, 1.0)  # 1 is now most recent; 2 is the LRU victim
        policy.put(4, 4, 2.0)
        assert policy.get(2, 3.0) is MISSING
        assert policy.get(1, 3.0) == 1


class TestLFUOrdering:
    def test_hot_key_survives_scan(self):
        """A frequently used key outlives a stream of one-hit wonders."""
        policy = LFUPolicy(4)
        policy.put("hot", 1, 0.0)
        for _ in range(5):
            policy.get("hot", 0.0)
        for cold in range(100):
            policy.put(cold, cold, 1.0)
        assert policy.get("hot", 2.0) == 1

    def test_victim_is_minimum_frequency_least_recent(self):
        policy = LFUPolicy(3)
        policy.put("a", 1, 0.0)
        policy.put("b", 2, 0.0)
        policy.put("c", 3, 0.0)
        policy.get("a", 1.0)
        policy.get("c", 1.0)  # b has the lone minimum frequency
        policy.put("d", 4, 2.0)
        assert policy.get("b", 3.0) is MISSING
        assert policy.get("a", 3.0) == 1
        assert policy.get("c", 3.0) == 3

    def test_reput_keeps_frequency(self):
        """Refreshing a value must not reset the popularity signal."""
        policy = LFUPolicy(2)
        policy.put("a", 1, 0.0)
        for _ in range(3):
            policy.get("a", 0.0)
        policy.put("a", 10, 1.0)  # refresh
        policy.put("b", 2, 1.0)
        policy.put("c", 3, 1.0)  # must evict b (freq 1), not a (freq 4)
        assert policy.get("a", 2.0) == 10
        assert policy.get("b", 2.0) is MISSING

    @given(st.lists(st.integers(0, 10), min_size=5, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_lfu_internal_consistency(self, keys):
        """Bucket bookkeeping stays consistent under arbitrary traffic."""
        policy = LFUPolicy(4)
        now = 0.0
        for key in keys:
            now += 0.5
            if policy.get(key, now) is MISSING:
                policy.put(key, key, now)
        total_bucketed = sum(len(b) for b in policy._buckets.values())
        assert total_bucketed == len(policy._entries) == len(policy)


class TestSegmented:
    def test_one_hit_wonders_do_not_displace_main(self):
        """Keys with reuse live in main; a scan of fresh keys only churns
        the small probation segment."""
        policy = SegmentedPolicy(20)  # small=2, main=18
        for key in ("x", "y"):
            policy.put(key, key, 0.0)
            policy.get(key, 0.0)  # mark reused while probationary
        for cold in range(200):  # long one-hit-wonder scan
            policy.put(f"cold-{cold}", cold, 1.0)
        assert policy.get("x", 2.0) == "x"
        assert policy.get("y", 2.0) == "y"

    def test_ghost_readmission_goes_to_main(self):
        policy = SegmentedPolicy(10)  # small=1
        policy.put("a", 1, 0.0)
        policy.put("b", 2, 0.0)  # evicts a from small -> ghost
        assert policy.get("a", 0.0) is MISSING
        policy.put("a", 1, 1.0)  # second miss: straight to main
        assert "a" in policy._main
        assert policy.get("a", 1.0) == 1


class TestMakePolicy:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("arc", 16)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)
        with pytest.raises(ValueError):
            make_policy("lru", 16, ttl_s=-1.0)
