"""GRU and attention building blocks."""

import numpy as np
import pytest

from repro.tensor import GRU, GRUCell, MultiHeadAttention, Tensor, cost_trace
from repro.tensor.attention import (
    TransformerBlock,
    causal_mask,
    scaled_dot_product_attention,
)


class TestGRUCell:
    def test_step_shapes(self):
        cell = GRUCell(4, 8)
        h = cell(Tensor(np.ones(4, np.float32)), cell.initial_state())
        assert h.shape == (8,)

    def test_gating_bounds_state(self):
        cell = GRUCell(4, 8)
        h = cell.initial_state()
        for _step in range(50):
            h = cell(Tensor(np.ones(4, np.float32) * 100.0), h)
        # tanh candidate keeps hidden state in (-1, 1)
        assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-5)


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(4, 8, num_layers=2)
        outputs, final = gru(Tensor(np.random.default_rng(0).random((5, 4)).astype(np.float32)))
        assert outputs.shape == (5, 8)
        assert final.shape == (8,)

    def test_initial_state_respected(self):
        gru = GRU(4, 4, num_layers=1)
        x = Tensor(np.zeros((1, 4), dtype=np.float32))
        h0 = Tensor(np.full(4, 0.9, dtype=np.float32))
        _out_a, final_a = gru(x)
        _out_b, final_b = gru(x, initial_state=h0)
        assert not np.allclose(final_a.numpy(), final_b.numpy())

    def test_causality(self):
        """Changing a later input must not affect earlier outputs."""
        gru = GRU(3, 6)
        base = np.random.default_rng(1).random((6, 3)).astype(np.float32)
        modified = base.copy()
        modified[4:] += 1.0
        out_base, _ = gru(Tensor(base))
        out_modified, _ = gru(Tensor(modified))
        np.testing.assert_allclose(
            out_base.numpy()[:4], out_modified.numpy()[:4], rtol=1e-5
        )


class TestAttention:
    def test_sdpa_weights_rows(self):
        # A query identical to key 1 attends mostly there.
        keys = Tensor(np.eye(3, dtype=np.float32) * 5)
        values = Tensor(np.diag([1.0, 2.0, 3.0]).astype(np.float32))
        query = Tensor((np.eye(3, dtype=np.float32) * 5)[1:2])
        out = scaled_dot_product_attention(query, keys, values).numpy()
        assert out[0, 1] > out[0, 0] and out[0, 1] > out[0, 2]

    def test_sdpa_mask_blocks_positions(self):
        query = Tensor(np.ones((1, 4), dtype=np.float32))
        keys = Tensor(np.ones((3, 4), dtype=np.float32))
        values = Tensor(np.arange(9, dtype=np.float32).reshape(3, 3))
        mask = np.array([[False, True, True]])
        out = scaled_dot_product_attention(query, keys, values, mask=mask).numpy()
        np.testing.assert_allclose(out[0], values.numpy()[0], atol=1e-4)

    def test_mha_shape_and_determinism(self):
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).random((5, 8)).astype(np.float32))
        out1 = mha(x).numpy()
        out2 = mha(x).numpy()
        assert out1.shape == (5, 8)
        np.testing.assert_array_equal(out1, out2)

    def test_mha_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2)

    def test_causal_mask_shape(self):
        mask = causal_mask(4)
        assert mask[0, 3] and not mask[3, 0] and not mask[2, 2]

    def test_transformer_block_causality(self):
        block = TransformerBlock(8, 2, rng=np.random.default_rng(0))
        mask = causal_mask(6)
        base = np.random.default_rng(2).random((6, 8)).astype(np.float32)
        modified = base.copy()
        modified[5] += 1.0
        out_base = block(Tensor(base), mask=mask).numpy()
        out_modified = block(Tensor(modified), mask=mask).numpy()
        np.testing.assert_allclose(out_base[:5], out_modified[:5], rtol=1e-4, atol=1e-5)
