"""Tensor wrapper semantics."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor
from repro.tensor.module import Parameter
from repro.tensor.tensor import concat, stack


class TestConstruction:
    def test_float_arrays_become_float32(self):
        assert Tensor(np.array([1.0], dtype=np.float64)).dtype == np.float32

    def test_int_arrays_become_int64(self):
        assert Tensor(np.array([1], dtype=np.int32)).dtype == np.int64

    def test_bool_arrays_stay_bool(self):
        assert Tensor(np.array([True])).dtype == np.bool_

    def test_from_tensor_shares_data(self):
        original = Tensor(np.ones(3))
        wrapped = Tensor(original)
        assert wrapped.data is original.data

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_parameter_is_batch_invariant(self):
        p = Parameter(np.ones(3))
        assert p.is_param
        assert p.batch_invariant

    def test_plain_tensor_not_invariant(self):
        assert not Tensor(np.ones(3)).batch_invariant


class TestIntrospection:
    def test_shape_size_nbytes(self):
        t = Tensor(np.zeros((2, 3), dtype=np.float32))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert t.nbytes == 24

    def test_repr_distinguishes_parameter(self):
        assert "Parameter" in repr(Parameter(np.ones(2)))
        assert repr(Tensor(np.ones(2))).startswith("Tensor")


class TestValueExtraction:
    def test_item_on_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_item_rejects_multielement(self):
        with pytest.raises(ValueError):
            Tensor(np.array([1.0, 2.0])).item()

    def test_bool_on_scalar(self):
        assert bool(Tensor(np.array([1.0])))
        assert not bool(Tensor(np.array([0.0])))

    def test_bool_rejects_multielement(self):
        with pytest.raises(ValueError):
            bool(Tensor(np.ones(3)))


class TestShapeOps:
    def test_reshape_accepts_tuple_or_args(self):
        t = Tensor(np.arange(6, dtype=np.float32))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_property(self):
        t = Tensor(np.zeros((2, 5), dtype=np.float32))
        assert t.T.shape == (5, 2)

    def test_getitem_slicing(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        np.testing.assert_allclose(t[1].numpy(), [3, 4, 5])
        np.testing.assert_allclose(t[:, 0].numpy(), [0, 3, 6, 9])
        np.testing.assert_allclose(t[-1].numpy(), [9, 10, 11])

    def test_concat_and_stack(self):
        a = Tensor(np.ones(2, dtype=np.float32))
        b = Tensor(np.zeros(2, dtype=np.float32))
        np.testing.assert_allclose(concat([a, b], axis=0).numpy(), [1, 1, 0, 0])
        assert stack([a, b], axis=0).shape == (2, 2)
