"""Layer behaviours, especially the virtualized CatalogEmbedding."""

import numpy as np
import pytest

from repro.tensor import (
    CatalogEmbedding,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Tensor,
    cost_trace,
)
from repro.tensor import functional as F


class TestLinear:
    def test_output_shape_and_value(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.float32)
        layer.bias.data = np.array([10, 20], dtype=np.float32)
        out = layer(Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32)))
        np.testing.assert_allclose(out.numpy(), [11.0, 22.0])

    def test_no_bias_variant(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        names = {name for name, _p in layer.named_parameters()}
        assert names == {"weight"}


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(5, 4, rng=np.random.default_rng(0))
        out = emb(np.array([0, 4]))
        np.testing.assert_allclose(out.numpy(), emb.weight.data[[0, 4]])

    def test_constant_ids_are_batch_invariant(self):
        emb = Embedding(5, 4)
        out = emb(np.arange(5))
        assert out.batch_invariant

    def test_tensor_ids_are_not_invariant(self):
        emb = Embedding(5, 4)
        out = emb(Tensor(np.array([1, 2], dtype=np.int64)))
        assert not out.batch_invariant


class TestCatalogEmbedding:
    def test_small_catalog_fully_materialized(self):
        emb = CatalogEmbedding(100, 8)
        assert emb.materialized == 100
        assert emb.catalog_scale == 1.0

    def test_large_catalog_virtualized(self):
        emb = CatalogEmbedding(10_000_000, 57)
        assert emb.materialized == CatalogEmbedding.DEFAULT_CAP
        assert emb.catalog_scale == pytest.approx(10_000_000 / emb.materialized)

    def test_same_seed_same_table(self):
        a = CatalogEmbedding(1000, 8, seed=3)
        b = CatalogEmbedding(1000, 8, seed=3)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_lookup_not_catalog_scaled(self):
        emb = CatalogEmbedding(10_000_000, 16)
        with cost_trace() as trace:
            emb(np.array([5, 9_999_999]))
        assert all(r.catalog_scale == 1.0 for r in trace)

    def test_scoring_weight_is_catalog_scaled(self):
        emb = CatalogEmbedding(1_000_000, 16)
        query = Tensor(np.ones(16, dtype=np.float32))
        with cost_trace() as trace:
            F.linear(query, emb.scoring_weight())
        logical_bytes = 1_000_000 * 16 * 4
        assert trace.total_param_bytes == pytest.approx(logical_bytes)

    def test_id_validation(self):
        emb = CatalogEmbedding(100, 4)
        with pytest.raises(ValueError):
            emb(np.array([150]))
        with pytest.raises(ValueError):
            emb(np.array([-1]))

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            CatalogEmbedding(0, 4)

    def test_tensor_id_path_matches_eager_path(self):
        emb = CatalogEmbedding(100_000, 8)
        ids = np.array([1, 99_999, 40_000], dtype=np.int64)
        eager = emb(ids).numpy()
        traced = emb(Tensor(ids)).numpy()
        np.testing.assert_array_equal(eager, traced)

    def test_scoring_weight_survives_state_load(self):
        emb = CatalogEmbedding(100, 4)
        new_state = {"weight": np.ones((100, 4), dtype=np.float32)}
        emb.load_state_dict(new_state)
        assert emb.scoring_weight().data is emb.weight.data

    def test_scoring_weight_not_in_state_dict(self):
        emb = CatalogEmbedding(100, 4)
        assert set(emb.state_dict()) == {"weight"}


class TestDropoutAndNorm:
    def test_dropout_is_identity_at_inference(self):
        x = Tensor(np.random.default_rng(0).random(10).astype(np.float32))
        np.testing.assert_array_equal(Dropout(0.5)(x).numpy(), x.numpy())

    def test_dropout_still_costs_a_launch(self):
        with cost_trace() as trace:
            Dropout(0.5)(Tensor(np.ones(4)))
        assert trace.total_launches == 1
        assert trace.records[0].op == "dropout"

    def test_layer_norm_params(self):
        norm = LayerNorm(8)
        assert set(norm.state_dict()) == {"gamma", "beta"}
        out = norm(Tensor(np.random.default_rng(0).random((2, 8)).astype(np.float32)))
        assert out.shape == (2, 8)
