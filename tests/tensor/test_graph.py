"""Graph IR introspection helpers."""

import numpy as np

from repro.tensor import CatalogEmbedding, Dropout, Linear
from repro.tensor import functional as F
from repro.tensor.jit import trace
from repro.tensor.module import Module


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.emb = CatalogEmbedding(50, 4)
        self.fc = Linear(4, 4)
        self.drop = Dropout(0.1)

    def forward(self, items, length):
        hidden = self.drop(self.fc(self.emb(items)))
        pooled = hidden.relu().sum(axis=0)
        scores = F.linear(pooled, self.emb.scoring_weight())
        return F.topk(scores, 3)


def traced():
    model = TinyModel()
    items = np.array([1, 2, 3], dtype=np.int64)
    length = np.array([3], dtype=np.int64)
    return trace(model, (items, length))


class TestGraphIntrospection:
    def test_op_counts(self):
        graph = traced()
        counts = graph.op_counts()
        assert counts["linear"] == 2
        assert counts["dropout"] == 1
        assert counts["topk"] == 1

    def test_launch_count_excludes_views(self):
        graph = traced()
        launches = graph.launch_count()
        total_ops = sum(graph.op_counts().values())
        assert launches == total_ops  # no views in this model

    def test_consumers_map(self):
        graph = traced()
        consumers = graph.consumers()
        # The topk node consumes the final linear's output.
        topk = next(n for n in graph.nodes if n.op == "topk")
        producer_id = topk.inputs[0]
        assert topk in consumers[producer_id]

    def test_node_by_id(self):
        graph = traced()
        node = graph.nodes[-1]
        assert graph.node_by_id(node.id) is node

    def test_leaf_classification(self):
        graph = traced()
        kinds = {node.kind for node in graph.nodes}
        assert {"input", "param", "op"}.issubset(kinds)
        params = [n for n in graph.nodes if n.kind == "param"]
        assert all(n.is_leaf() and n.batch_invariant for n in params)
        inputs = [n for n in graph.nodes if n.kind == "input"]
        assert all(not n.batch_invariant for n in inputs)
