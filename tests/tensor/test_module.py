"""Module / Parameter container behaviour."""

import numpy as np
import pytest

from repro.tensor import Linear, Sequential, Tanh, Tensor
from repro.tensor.module import Module, Parameter


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_named_parameters_are_hierarchical(self):
        model = TwoLayer()
        names = {name for name, _p in model.named_parameters()}
        assert names == {
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
            "scale",
        }

    def test_parameter_count_and_bytes(self):
        model = TwoLayer()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.parameter_count() == expected
        assert model.parameter_bytes() == expected * 4

    def test_named_modules(self):
        model = TwoLayer()
        names = {name for name, _m in model.named_modules()}
        assert "fc1" in names and "fc2" in names


class TestStateDict:
    def test_roundtrip_preserves_outputs(self):
        model = TwoLayer()
        x = Tensor(np.random.default_rng(0).random((2, 4)).astype(np.float32))
        before = model(x).numpy()
        state = model.state_dict()
        fresh = TwoLayer()
        fresh.scale.data = np.array([3.0], dtype=np.float32)
        assert not np.allclose(fresh(x).numpy(), before)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh(x).numpy(), before)

    def test_load_rejects_missing_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_unexpected_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        state["phantom"] = np.ones(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_state_dict_values_are_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0


class TestSequential:
    def test_runs_children_in_order(self):
        seq = Sequential(Linear(3, 3), Tanh(), Linear(3, 1))
        out = seq(Tensor(np.ones((2, 3), dtype=np.float32)))
        assert out.shape == (2, 1)
        assert len(seq) == 3

    def test_iterates_children(self):
        seq = Sequential(Tanh(), Tanh())
        assert len(list(seq)) == 2
