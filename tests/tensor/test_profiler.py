"""Per-op profiler."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_T4
from repro.models import ModelConfig, create_model
from repro.tensor.profiler import profile_model, profile_trace
from repro.tensor.ops import CostRecord, CostTrace

CONFIG = ModelConfig.for_catalog(100_000)


class TestProfileTrace:
    def test_groups_by_op_kind(self):
        trace = CostTrace()
        trace.append(CostRecord(op="linear", launches=1, flops=10.0))
        trace.append(CostRecord(op="linear", launches=1, flops=20.0))
        trace.append(CostRecord(op="relu", launches=1, flops=5.0))
        report = profile_trace(trace, CPU_E2.device)
        assert len(report.rows) == 2
        linear = report.row_for("linear")
        assert linear.calls == 2
        assert linear.flops == 30.0

    def test_rows_sorted_by_time(self):
        trace = CostTrace()
        trace.append(CostRecord(op="cheap", launches=1))
        trace.append(CostRecord(op="expensive", launches=1, param_bytes=1e9))
        report = profile_trace(trace, CPU_E2.device)
        assert report.rows[0].op == "expensive"

    def test_shares_sum_below_one(self):
        trace = CostTrace()
        for op in ("a", "b", "c"):
            trace.append(CostRecord(op=op, launches=1, param_bytes=1e6))
        report = profile_trace(trace, CPU_E2.device)
        assert sum(row.share for row in report.rows) <= 1.0 + 1e-9

    def test_catalog_scale_included(self):
        trace = CostTrace()
        trace.append(CostRecord(op="scan", launches=1, param_bytes=1e6, catalog_scale=100.0))
        report = profile_trace(trace, CPU_E2.device)
        assert report.row_for("scan").param_bytes == pytest.approx(1e8)


class TestProfileModel:
    def test_healthy_model_dominated_by_catalog_scan(self):
        model = create_model("gru4rec", CONFIG)
        report = profile_model(model, CPU_E2.device)
        top = report.rows[0]
        assert top.op in ("linear", "gru_sequence")
        assert top.param_bytes > 5e6  # the C x d table

    def test_repeatnet_dense_scatter_dominates(self):
        model = create_model("repeatnet", CONFIG)
        report = profile_model(model, GPU_T4.device)
        assert "repeatnet_dense_onehot" in report.rows[0].op or (
            report.rows[0].op == "matmul"
        )
        host_rows = [row for row in report.rows if row.host_op]
        assert host_rows and host_rows[0].share > 0.2

    def test_srgnn_host_ops_visible_on_gpu_only(self):
        model = create_model("srgnn", CONFIG)
        gpu = profile_model(model, GPU_T4.device)
        cpu = profile_model(model, CPU_E2.device)
        gpu_host_share = sum(row.share for row in gpu.rows if row.host_op)
        cpu_host_share = sum(row.share for row in cpu.rows if row.host_op)
        assert gpu_host_share > 0.3
        assert cpu_host_share < gpu_host_share

    def test_total_time_close_to_latency_model(self):
        from repro.hardware import LatencyModel
        from repro.tensor import Tensor, cost_trace

        model = create_model("stamp", CONFIG)
        items, length = model.example_inputs()
        with cost_trace() as trace:
            model.forward(Tensor(items), Tensor(length))
        direct = LatencyModel(CPU_E2.device).profile(trace).latency(1)
        report = profile_trace(trace, CPU_E2.device)
        assert report.total_time_s == pytest.approx(direct, rel=0.05)

    def test_custom_session(self):
        model = create_model("stamp", CONFIG)
        report = profile_model(model, CPU_E2.device, session=[1, 2, 3])
        assert report.total_time_s > 0

    def test_render_contains_header_and_rows(self):
        model = create_model("stamp", CONFIG)
        text = profile_model(model, CPU_E2.device).render(max_rows=3)
        assert "profile on cpu-e2" in text
        assert "share" in text
        assert "more op kinds" in text
