"""Trace comparison tool."""

import pytest

from repro.core.registry import AssetRegistry
from repro.hardware import CPU_E2
from repro.tensor.ops import CostRecord, CostTrace
from repro.tensor.trace_diff import TraceSummary, diff_traces


def trace_of(*records):
    trace = CostTrace()
    for record in records:
        trace.append(record)
    return trace


class TestSummary:
    def test_aggregates(self):
        trace = trace_of(
            CostRecord(op="a", launches=1, flops=10.0, param_bytes=100.0),
            CostRecord(op="b", launches=2, flops=5.0, host_op=True,
                       transfer_bytes=7.0),
        )
        summary = TraceSummary.of(trace, "x")
        assert summary.ops == 2
        assert summary.launches == 3.0
        assert summary.flops == 15.0
        assert summary.host_ops == 1
        assert summary.transfer_bytes == 7.0


class TestDiff:
    def test_ratios(self):
        before = trace_of(CostRecord(op="a", launches=4, flops=100.0))
        after = trace_of(CostRecord(op="a", launches=1, flops=100.0))
        diff = diff_traces(before, after)
        assert diff.ratio("launches") == pytest.approx(0.25)
        assert diff.ratio("flops") == pytest.approx(1.0)

    def test_zero_denominator(self):
        before = trace_of(CostRecord(op="a"))
        after = trace_of(CostRecord(op="a", flops=5.0))
        diff = diff_traces(before, after)
        assert diff.ratio("flops") == float("inf")

    def test_device_latency_speedup(self):
        before = trace_of(CostRecord(op="a", param_bytes=9e7))
        after = trace_of(CostRecord(op="a", param_bytes=3e7))
        diff = diff_traces(before, after, device=CPU_E2.device)
        assert diff.latency_speedup > 2.0

    def test_render_contains_rows(self):
        before = trace_of(CostRecord(op="a", launches=2))
        after = trace_of(CostRecord(op="a", launches=1))
        text = diff_traces(before, after, labels=("eager", "jit")).render()
        assert "eager" in text and "jit" in text
        assert "launches" in text and "0.50x" in text


class TestRealModes:
    def test_eager_vs_jit_for_a_real_model(self):
        registry = AssetRegistry()
        eager, _m, _f = registry.trace("sasrec", 10_000, "eager")
        jit, _m, _f = registry.trace("sasrec", 10_000, "jit")
        diff = diff_traces(eager, jit, ("eager", "jit"), device=CPU_E2.device)
        assert diff.ratio("launches") < 1.0
        assert diff.latency_speedup >= 1.0

    def test_jit_vs_onnx(self):
        registry = AssetRegistry()
        jit, _m, _f = registry.trace("core", 10_000, "jit")
        onnx, _m, _f = registry.trace("core", 10_000, "onnx")
        diff = diff_traces(jit, onnx, ("jit", "onnx"))
        assert diff.ratio("launches") < 1.0
        assert diff.ratio("flops") == pytest.approx(1.0, rel=1e-6)
