"""JIT capture, optimization passes, and scripted replay."""

import numpy as np
import pytest

from repro.tensor import (
    CatalogEmbedding,
    Dropout,
    JitCompilationError,
    Linear,
    Tensor,
    cost_trace,
    optimize_for_inference,
    trace,
)
from repro.tensor import functional as F
from repro.tensor.jit import run_passes
from repro.tensor.module import Module


class SmallModel(Module):
    """Embedding -> linear -> relu -> masked sum -> catalog scores."""

    def __init__(self, num_items=500, dim=8, max_len=6):
        super().__init__()
        self.max_len = max_len
        self.emb = CatalogEmbedding(num_items, dim)
        self.fc = Linear(dim, dim)
        self.drop = Dropout(0.2)

    def forward(self, items, length):
        e = self.emb(items)
        h = self.drop(self.fc(e)).relu()
        invalid = F.logical_not(F.sequence_mask(length, self.max_len))
        pooled = F.masked_fill(h, invalid.reshape(self.max_len, 1), 0.0).sum(axis=0)
        scores = F.linear(pooled, self.emb.scoring_weight())
        return F.topk(scores, 4)


def example(model):
    items = np.array([3, 7, 11, 0, 0, 0], dtype=np.int64)
    length = np.array([3], dtype=np.int64)
    return items, length


class TestTraceCapture:
    def test_graph_has_inputs_and_output(self):
        model = SmallModel()
        graph = trace(model, example(model))
        assert len(graph.input_ids) == 2
        assert graph.output_id is not None
        assert graph.nodes[-1].op == "topk" or any(
            n.op == "topk" for n in graph.nodes
        )

    def test_graph_references_are_closed(self):
        model = SmallModel()
        graph = trace(model, example(model))
        ids = {n.id for n in graph.nodes}
        for node in graph.nodes:
            assert all(i in ids for i in node.inputs)

    def test_dynamic_control_flow_raises(self):
        class Dynamic(Module):
            def forward(self, x, _length):
                value = (x * 1.0).sum()
                if value.item() > 0:  # data-dependent branch
                    return value
                return value

        with pytest.raises(JitCompilationError):
            trace(Dynamic(), (np.ones(3, np.float32), np.array([1])))

    def test_bool_branch_raises_too(self):
        class BoolBranch(Module):
            def forward(self, x, _length):
                t = x * 1.0
                if t.sum() + 0.0:
                    return t
                return t

        with pytest.raises(JitCompilationError):
            trace(BoolBranch(), (np.ones(1, np.float32), np.array([1])))

    def test_numpy_conversion_raises_during_trace(self):
        class NumpyEscape(Module):
            def forward(self, x, _length):
                escaped = np.asarray(x * 1.0)  # leaves the traced dataflow
                return Tensor(escaped).sum()

        with pytest.raises(JitCompilationError):
            trace(NumpyEscape(), (np.ones(3, np.float32), np.array([1])))

    def test_nested_tracing_rejected(self):
        model = SmallModel()

        class Nested(Module):
            def forward(self, x, length):
                return trace(model, (x, length))

        with pytest.raises((RuntimeError, JitCompilationError)):
            trace(Nested(), example(model))


class TestPasses:
    def test_dropout_eliminated(self):
        model = SmallModel()
        graph = trace(model, example(model))
        assert any(n.op == "dropout" for n in graph.nodes)
        report = run_passes(graph)
        assert report.dropout_removed == 1
        assert not any(n.op == "dropout" for n in graph.nodes)

    def test_dead_ops_eliminated(self):
        class DeadBranch(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(4, 4)

            def forward(self, x, _length):
                t = Tensor(np.asarray(x, np.float32)) if not isinstance(x, Tensor) else x
                useful = self.fc(t)
                _dead = useful * 2.0 + 1.0  # never used
                return useful.sum()

        graph = trace(DeadBranch(), (np.ones(4, np.float32), np.array([1])))
        report = run_passes(graph, enable_fusion=False)
        assert report.dead_removed >= 2

    def test_constant_folding_of_param_subgraphs(self):
        class ParamDerived(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(4, 4)

            def forward(self, x, _length):
                t = x if isinstance(x, Tensor) else Tensor(np.asarray(x, np.float32))
                doubled = self.fc.weight * 2.0  # param-only: foldable
                return (t @ doubled.transpose()).sum()

        model = ParamDerived()
        graph = trace(model, (np.ones(4, np.float32), np.array([1])))
        report = run_passes(graph, enable_fusion=False)
        assert report.constants_folded >= 1

    def test_launch_count_decreases(self):
        model = SmallModel()
        graph = trace(model, example(model))
        before = graph.launch_count()
        run_passes(graph)
        assert graph.launch_count() < before


class TestScriptedReplay:
    def test_replay_matches_eager_everywhere(self):
        model = SmallModel()
        scripted = optimize_for_inference(model, example(model))
        rng = np.random.default_rng(0)
        for _trial in range(10):
            length = int(rng.integers(1, 7))
            items = np.zeros(6, dtype=np.int64)
            items[:length] = rng.integers(0, 500, size=length)
            length_arr = np.array([length], dtype=np.int64)
            eager = model(Tensor(items), Tensor(length_arr)).numpy()
            replay = scripted(items, length_arr).numpy()
            np.testing.assert_array_equal(eager, replay)

    def test_replay_has_fewer_launches(self):
        model = SmallModel()
        items, length = example(model)
        scripted = optimize_for_inference(model, (items, length))
        with cost_trace() as eager_trace:
            model(Tensor(items), Tensor(length))
        with cost_trace() as jit_trace:
            scripted(items, length)
        assert jit_trace.total_launches < eager_trace.total_launches

    def test_wrong_arity_rejected(self):
        model = SmallModel()
        scripted = optimize_for_inference(model, example(model))
        with pytest.raises(ValueError):
            scripted(np.zeros(6, dtype=np.int64))

    def test_parameter_bytes_passthrough(self):
        model = SmallModel()
        scripted = optimize_for_inference(model, example(model))
        assert scripted.parameter_bytes() == model.parameter_bytes()

    def test_fusion_preserves_numerics(self):
        model = SmallModel()
        items, length = example(model)
        fused = optimize_for_inference(model, (items, length), enable_fusion=True)
        unfused = optimize_for_inference(model, (items, length), enable_fusion=False)
        np.testing.assert_allclose(
            fused(items, length).numpy(), unfused(items, length).numpy()
        )

    def test_host_ops_replay_on_new_inputs(self):
        from repro.tensor import ops

        class HostModel(Module):
            def forward(self, items, _length):
                doubled = ops.host_numpy("double", lambda a: a * 2, items)
                return (doubled * 1.0).sum()

        model = HostModel()
        scripted = optimize_for_inference(
            model, (np.array([1, 2], np.int64), np.array([2]))
        )
        out = scripted(np.array([5, 5], np.int64), np.array([2]))
        assert out.numpy() == pytest.approx(20.0)
