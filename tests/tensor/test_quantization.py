"""Int8 quantization of the catalog scoring head."""

import numpy as np
import pytest

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.models import ModelConfig, create_model
from repro.tensor import Tensor, cost_trace
from repro.tensor.quantization import (
    QuantizedCatalogEmbedding,
    dequantize_rows,
    quantize_model,
    quantize_rows,
)

CONFIG = ModelConfig.for_catalog(50_000, top_k=10)


class TestRowQuantization:
    def test_roundtrip_error_small(self):
        table = np.random.default_rng(0).normal(0, 0.1, (100, 16)).astype(np.float32)
        quantized, scales = quantize_rows(table)
        restored = dequantize_rows(quantized, scales)
        relative = np.linalg.norm(restored - table) / np.linalg.norm(table)
        assert relative < 0.01

    def test_int8_range(self):
        table = np.random.default_rng(1).normal(0, 5.0, (50, 8)).astype(np.float32)
        quantized, _scales = quantize_rows(table)
        assert quantized.dtype == np.int8
        assert quantized.min() >= -127 and quantized.max() <= 127

    def test_zero_rows_survive(self):
        table = np.zeros((3, 4), dtype=np.float32)
        quantized, scales = quantize_rows(table)
        np.testing.assert_array_equal(dequantize_rows(quantized, scales), table)


class TestQuantizedEmbedding:
    def test_lookup_close_to_fp32(self):
        model = create_model("stamp", CONFIG)
        quantized = QuantizedCatalogEmbedding(model.item_embedding)
        ids = np.array([1, 4999, 123], dtype=np.int64)
        fp32 = model.item_embedding(ids).numpy()
        int8 = quantized(ids).numpy()
        np.testing.assert_allclose(int8, fp32, atol=0.01)

    def test_scoring_param_traffic_quartered(self):
        model = create_model("stamp", CONFIG)
        quantized = QuantizedCatalogEmbedding(model.item_embedding)
        query = Tensor(np.random.default_rng(0).random(CONFIG.embedding_dim).astype(np.float32))
        from repro.tensor import functional as F

        with cost_trace() as fp32_trace:
            F.linear(query, model.item_embedding.scoring_weight())
        with cost_trace() as int8_trace:
            quantized.score(query)
        ratio = fp32_trace.total_param_bytes / int8_trace.total_param_bytes
        assert 2.5 < ratio < 4.0  # 4x table, minus the fp32 row scales

    def test_preserves_catalog_scale(self):
        big = ModelConfig.for_catalog(10_000_000)
        model = create_model("stamp", big)
        quantized = QuantizedCatalogEmbedding(model.item_embedding)
        assert quantized.catalog_scale == model.item_embedding.catalog_scale

    def test_quantization_error_metric(self):
        model = create_model("stamp", CONFIG)
        quantized = QuantizedCatalogEmbedding(model.item_embedding)
        error = quantized.quantization_error(model.item_embedding)
        assert 0.0 < error < 0.02


class TestQuantizedModel:
    def test_topk_overlap_high(self):
        model = create_model("gru4rec", CONFIG)
        quantized = quantize_model(model)
        rng = np.random.default_rng(2)
        overlaps = []
        for _trial in range(10):
            session = rng.integers(0, CONFIG.num_items, size=5).tolist()
            exact = set(model.recommend(session).tolist())
            approx = set(quantized.recommend(session).tolist())
            overlaps.append(len(exact & approx) / CONFIG.top_k)
        assert np.mean(overlaps) > 0.9

    def test_latency_improves_on_cpu(self):
        model = create_model("gru4rec", ModelConfig.for_catalog(1_000_000))
        quantized = quantize_model(model)
        session = [5, 17, 900]

        def latency_of(m):
            items, length = m.prepare_inputs(session)
            with cost_trace() as trace:
                m.forward(Tensor(items), Tensor(length))
            return LatencyModel(CPU_E2.device).profile(trace).latency(1)

        assert latency_of(quantized) < 0.5 * latency_of(model)

    def test_resident_bytes_shrink(self):
        model = create_model("gru4rec", ModelConfig.for_catalog(1_000_000))
        quantized = quantize_model(model)
        assert quantized.resident_bytes() < 0.5 * model.resident_bytes()

    def test_jit_traceable(self):
        from repro.tensor import optimize_for_inference

        model = create_model("stamp", CONFIG)
        quantized = quantize_model(model)
        scripted = optimize_for_inference(quantized, quantized.example_inputs())
        session = [1, 2, 3]
        items, length = quantized.prepare_inputs(session)
        np.testing.assert_array_equal(
            scripted(items, length).numpy(), quantized.recommend(session)
        )

    def test_fused_scoring_models_rejected(self):
        model = create_model("repeatnet", CONFIG)
        with pytest.raises(ValueError):
            quantize_model(model)

    def test_non_model_rejected(self):
        with pytest.raises(TypeError):
            quantize_model(object())
