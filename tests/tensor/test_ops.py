"""Kernel correctness and cost accounting."""

import numpy as np
import pytest

from repro.tensor import Tensor, cost_trace
from repro.tensor import functional as F
from repro.tensor import ops
from repro.tensor.module import Parameter


class TestElementwiseKernels:
    def test_add_matches_numpy(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        b = Tensor(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose((a + b).numpy(), [11.0, 22.0, 33.0])

    def test_scalar_broadcasting(self):
        a = Tensor(np.array([1.0, 2.0]))
        np.testing.assert_allclose((1.0 - a).numpy(), [0.0, -1.0])
        np.testing.assert_allclose((a * 3.0).numpy(), [3.0, 6.0])

    def test_division(self):
        a = Tensor(np.array([4.0, 9.0]))
        np.testing.assert_allclose((a / 2.0).numpy(), [2.0, 4.5])

    def test_unary_activations(self):
        x = np.linspace(-2, 2, 7).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.tanh().numpy(), np.tanh(x), rtol=1e-6)
        np.testing.assert_allclose(
            t.sigmoid().numpy(), 1 / (1 + np.exp(-x)), rtol=1e-6
        )
        np.testing.assert_allclose(t.relu().numpy(), np.maximum(x, 0), rtol=1e-6)

    def test_exp_log_roundtrip(self):
        x = Tensor(np.array([0.5, 1.0, 2.0]))
        np.testing.assert_allclose(x.exp().log().numpy(), x.numpy(), rtol=1e-5)

    def test_outputs_are_float32(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert (a + a).dtype == np.float32
        assert a.tanh().dtype == np.float32


class TestLinearAlgebraKernels:
    def test_matmul_matches_numpy(self):
        a = np.random.default_rng(0).random((3, 4)).astype(np.float32)
        b = np.random.default_rng(1).random((4, 5)).astype(np.float32)
        out = (Tensor(a) @ Tensor(b)).numpy()
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)

    def test_matmul_flop_count(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32))
        b = Tensor(np.ones((4, 5), dtype=np.float32))
        with cost_trace() as trace:
            a @ b
        assert trace.records[0].flops == 2 * 3 * 5 * 4

    def test_linear_fuses_bias(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        w = Parameter(np.full((4, 3), 2.0, dtype=np.float32))
        bias = Parameter(np.full(4, 1.0, dtype=np.float32))
        with cost_trace() as trace:
            out = F.linear(x, w, bias)
        np.testing.assert_allclose(out.numpy(), np.full((2, 4), 7.0))
        assert len(trace) == 1  # one fused kernel, one launch
        assert trace.records[0].launches == 1

    def test_batched_matmul(self):
        a = np.random.default_rng(2).random((2, 3, 4)).astype(np.float32)
        b = np.random.default_rng(3).random((2, 4, 5)).astype(np.float32)
        out = (Tensor(a) @ Tensor(b)).numpy()
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)


class TestReductionsAndNormalization:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).random((4, 6)).astype(np.float32))
        out = F.softmax(x, axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(1).random(8).astype(np.float32)
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-4)

    def test_reductions_match_numpy(self):
        x = np.random.default_rng(2).random((3, 5)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).sum(axis=0).numpy(), x.sum(axis=0), rtol=1e-5)
        np.testing.assert_allclose(Tensor(x).mean(axis=1).numpy(), x.mean(axis=1), rtol=1e-5)
        np.testing.assert_allclose(Tensor(x).max(axis=1).numpy(), x.max(axis=1), rtol=1e-5)

    def test_layer_norm_standardizes(self):
        x = Tensor(np.random.default_rng(3).random((4, 16)).astype(np.float32) * 5)
        gamma = Parameter(np.ones(16, dtype=np.float32))
        beta = Parameter(np.zeros(16, dtype=np.float32))
        out = ops.run_op("layer_norm", (x, gamma, beta), {"eps": 1e-6}).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)


class TestIndexingKernels:
    def test_embedding_lookup(self):
        table = Parameter(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = ops.run_op(
            "embedding_lookup", (table, Tensor(np.array([2, 0], dtype=np.int64)))
        )
        np.testing.assert_allclose(out.numpy(), [[6, 7, 8], [0, 1, 2]])

    def test_embedding_lookup_charges_touched_rows_only(self):
        table = Parameter(np.zeros((1000, 8), dtype=np.float32))
        with cost_trace() as trace:
            ops.run_op(
                "embedding_lookup", (table, Tensor(np.array([1, 2], dtype=np.int64)))
            )
        assert trace.records[0].param_bytes == 2 * 8 * 4

    def test_topk_returns_sorted_indices(self):
        scores = Tensor(np.array([0.1, 5.0, 3.0, 4.0, -1.0], dtype=np.float32))
        top = F.topk(scores, 3).numpy()
        np.testing.assert_array_equal(top, [1, 3, 2])

    def test_topk_k_larger_than_size(self):
        scores = Tensor(np.array([2.0, 1.0], dtype=np.float32))
        assert F.topk(scores, 5).numpy().shape == (2,)

    def test_topk_rejects_bad_k(self):
        with pytest.raises(ValueError):
            F.topk(Tensor(np.ones(3)), 0)

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -9.0).numpy()
        np.testing.assert_allclose(out, [[-9, 1], [1, -9]])

    def test_gather_row_with_offset(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        length = Tensor(np.array([3], dtype=np.int64))
        out = F.gather_row(x, length, offset=-1).numpy()
        np.testing.assert_allclose(out, [6, 7, 8])

    def test_sequence_mask(self):
        mask = F.sequence_mask(Tensor(np.array([3], dtype=np.int64)), 5).numpy()
        np.testing.assert_array_equal(mask, [True, True, True, False, False])

    def test_mod_index(self):
        ids = Tensor(np.array([1, 7, 12], dtype=np.int64))
        out = F.mod_index(ids, 5).numpy()
        np.testing.assert_array_equal(out, [1, 2, 2])


class TestGRUSequenceKernel:
    def test_matches_unrolled_cell(self):
        from repro.tensor.rnn import GRU

        rng_input = np.random.default_rng(0).random((6, 4)).astype(np.float32)
        fused = GRU(4, 8, fused=True, rng=np.random.default_rng(7))
        unrolled = GRU(4, 8, fused=False, rng=np.random.default_rng(7))
        unrolled.load_state_dict(fused.state_dict())
        out_fused, h_fused = fused(Tensor(rng_input))
        out_unrolled, h_unrolled = unrolled(Tensor(rng_input))
        np.testing.assert_allclose(
            out_fused.numpy(), out_unrolled.numpy(), rtol=1e-4, atol=1e-5
        )
        np.testing.assert_allclose(
            h_fused.numpy(), h_unrolled.numpy(), rtol=1e-4, atol=1e-5
        )

    def test_fused_uses_one_launch_per_layer(self):
        from repro.tensor.rnn import GRU

        gru = GRU(4, 8, num_layers=2)
        with cost_trace() as trace:
            gru(Tensor(np.zeros((5, 4), dtype=np.float32)))
        gru_records = [r for r in trace if r.op == "gru_sequence"]
        assert len(gru_records) == 2
        assert all(r.launches == 1 for r in gru_records)


class TestCostTraceAccounting:
    def test_trace_captures_only_inside_block(self):
        a = Tensor(np.ones(4))
        _ = a + a
        with cost_trace() as trace:
            _ = a * a
        _ = a - a
        assert len(trace) == 1
        assert trace.records[0].op == "mul"

    def test_nested_traces_both_record(self):
        a = Tensor(np.ones(4))
        with cost_trace() as outer:
            _ = a + a
            with cost_trace() as inner:
                _ = a * a
        assert len(outer) == 2
        assert len(inner) == 1

    def test_param_vs_activation_bytes(self):
        x = Tensor(np.ones((2, 8), dtype=np.float32))
        w = Parameter(np.ones((4, 8), dtype=np.float32))
        with cost_trace() as trace:
            F.linear(x, w)
        record = trace.records[0]
        assert record.param_bytes == w.nbytes
        assert record.read_bytes == x.nbytes

    def test_catalog_scale_propagates(self):
        w = Parameter(np.ones((10, 4), dtype=np.float32))
        w.catalog_scale = 100.0
        x = Tensor(np.ones(4, dtype=np.float32))
        with cost_trace() as trace:
            scores = F.linear(x, w)
            F.topk(scores, 3)
        assert all(r.catalog_scale == 100.0 for r in trace)
        assert trace.total_param_bytes == w.nbytes * 100.0

    def test_batch_invariance_propagates_from_params(self):
        w = Parameter(np.ones((4, 4), dtype=np.float32))
        x = Tensor(np.ones(4, dtype=np.float32))
        with cost_trace() as trace:
            derived = w * w  # param-only -> invariant
            _ = F.linear(x, derived)  # mixes in a request tensor
        assert trace.records[0].batch_invariant
        assert not trace.records[1].batch_invariant
        # The invariant input is charged like weight streaming downstream.
        assert trace.records[1].param_bytes == derived.nbytes

    def test_views_are_free(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        with cost_trace() as trace:
            x.reshape(16).reshape(2, 8).transpose()
        assert trace.total_launches == 0


class TestHostOps:
    def test_host_numpy_runs_and_tags(self):
        items = Tensor(np.array([3, 1, 2], dtype=np.int64))
        with cost_trace() as trace:
            out = ops.host_numpy("sort", lambda a: np.sort(a), items)
        np.testing.assert_array_equal(out.numpy(), [1, 2, 3])
        record = trace.records[0]
        assert record.host_op
        assert record.transfer_bytes > 0

    def test_host_numpy_explicit_catalog_scale(self):
        items = Tensor(np.array([1], dtype=np.int64))
        with cost_trace() as trace:
            out = ops.host_numpy(
                "expand", lambda a: np.zeros(10), items, catalog_scale=50.0
            )
        assert trace.records[0].catalog_scale == 50.0
        assert out.catalog_scale == 50.0

    def test_scaled_record_folds_scale(self):
        record = ops.CostRecord(op="x", flops=10.0, catalog_scale=3.0)
        scaled = record.scaled()
        assert scaled.flops == 30.0
        assert scaled.catalog_scale == 1.0
