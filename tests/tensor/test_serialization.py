"""Model artifact (de)serialization."""

import numpy as np
import pytest

from repro.tensor import Linear, Tensor
from repro.tensor.module import Module
from repro.tensor.serialization import (
    load_into_module,
    load_module_state,
    save_module_state,
)


class Small(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(3, 2)

    def forward(self, x):
        return self.fc(x)


class TestSerialization:
    def test_roundtrip_preserves_weights(self):
        model = Small()
        blob = save_module_state(model, metadata={"model": "small"})
        state, metadata = load_module_state(blob)
        assert metadata == {"model": "small"}
        np.testing.assert_array_equal(state["fc.weight"], model.fc.weight.data)
        np.testing.assert_array_equal(state["fc.bias"], model.fc.bias.data)

    def test_load_into_module_restores_outputs(self):
        source = Small()
        blob = save_module_state(source)
        target = Small()
        target.fc.weight.data = target.fc.weight.data + 5.0
        load_into_module(target, blob)
        x = Tensor(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(source(x).numpy(), target(x).numpy())

    def test_corrupted_payload_rejected(self):
        with pytest.raises(Exception):
            load_module_state(b"not an npz archive")

    def test_metadata_defaults_to_empty(self):
        blob = save_module_state(Small())
        _state, metadata = load_module_state(blob)
        assert metadata == {}
