"""Algorithm 2: ramp-up, backpressure, session ordering."""

import numpy as np
import pytest

from repro.loadgen import LoadGenerator, SessionReplayQueue, timeprop_rampup
from repro.metrics.collector import MetricsCollector
from repro.serving.request import HTTP_OK, RecommendationResponse
from repro.simulation import Simulator


def fixed_sessions(*sessions):
    """Endless iterator cycling over the given sessions."""
    def generate():
        while True:
            for session in sessions:
                yield np.asarray(session, dtype=np.int64)
    return generate()


class TestTimepropRampup:
    def test_proportional_growth(self):
        assert timeprop_rampup(1000, 0, 600) == 1
        assert timeprop_rampup(1000, 300, 600) == 500
        assert timeprop_rampup(1000, 600, 600) == 1000

    def test_clamped_past_deadline(self):
        assert timeprop_rampup(1000, 900, 600) == 1000

    def test_at_least_one(self):
        assert timeprop_rampup(5, 0.001, 600) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            timeprop_rampup(-1, 0, 10)
        with pytest.raises(ValueError):
            timeprop_rampup(10, 0, 0)


class TestSessionReplayQueue:
    def test_serves_session_prefixes_in_order(self):
        queue = SessionReplayQueue(fixed_sessions([10, 11, 12]))
        sid, prefix = queue.next_click()
        np.testing.assert_array_equal(prefix, [10])
        queue.complete(sid)
        sid2, prefix2 = queue.next_click()
        assert sid2 == sid
        np.testing.assert_array_equal(prefix2, [10, 11])

    def test_no_next_click_while_awaiting_response(self):
        queue = SessionReplayQueue(fixed_sessions([1, 2], [3, 4]))
        sid_a, _ = queue.next_click()
        sid_b, _ = queue.next_click()  # must open a second session
        assert sid_b != sid_a

    def test_session_retires_after_last_click(self):
        queue = SessionReplayQueue(fixed_sessions([7]))
        sid, _ = queue.next_click()
        queue.complete(sid)
        assert queue.finished_sessions == 1
        with pytest.raises(KeyError):
            queue.complete(sid)

    def test_round_robin_over_ready_sessions(self):
        queue = SessionReplayQueue(fixed_sessions([1, 2, 3], [4, 5, 6]))
        sid_a, _ = queue.next_click()
        sid_b, _ = queue.next_click()
        queue.complete(sid_a)
        queue.complete(sid_b)
        order = [queue.next_click()[0], queue.next_click()[0]]
        assert order == [sid_a, sid_b]


class EchoServer:
    """Responds after a fixed service time."""

    def __init__(self, simulator, service_s=0.001):
        self.simulator = simulator
        self.service_s = service_s
        self.received = []

    def submit(self, request, respond):
        self.received.append(request)

        def reply():
            respond(
                RecommendationResponse(
                    request_id=request.request_id,
                    status=HTTP_OK,
                    completed_at=self.simulator.now,
                    latency_s=self.simulator.now - request.sent_at,
                )
            )

        self.simulator.call_in(self.service_s, reply)


class StuckServer:
    """Never responds — the worst-case backpressure scenario."""

    def __init__(self):
        self.received = []

    def submit(self, request, respond):
        self.received.append(request)


class TestLoadGenerator:
    def test_ramps_to_target(self):
        sim = Simulator()
        server = EchoServer(sim)
        collector = MetricsCollector()
        generator = LoadGenerator(
            sim, server.submit, fixed_sessions([1, 2, 3, 4, 5]),
            target_rps=100, duration_s=20, collector=collector,
        )
        generator.start()
        sim.run()
        buckets = collector.buckets()
        # Offered load grows roughly linearly and approaches the target.
        assert buckets[2].sent < buckets[10].sent <= buckets[-1].sent + 15
        assert buckets[-1].sent >= 85
        assert generator.finished

    def test_total_sent_matches_ramp_integral(self):
        sim = Simulator()
        server = EchoServer(sim, service_s=0.0005)
        generator = LoadGenerator(
            sim, server.submit, fixed_sessions([1]), target_rps=100, duration_s=20,
        )
        generator.start()
        sim.run()
        # Integral of a linear ramp: ~ r * d / 2.
        assert generator.sent == pytest.approx(100 * 20 / 2, rel=0.15)

    def test_backpressure_limits_inflight(self):
        sim = Simulator()
        server = StuckServer()
        generator = LoadGenerator(
            sim, server.submit, fixed_sessions([1]), target_rps=50, duration_s=10,
        )
        generator.start()
        sim.run()
        # Pending never exceeds the final tick's rate.
        assert generator.pending <= 50
        assert generator.backpressure_stalls > 0
        # Far fewer sent than the ramp integral (stalled most of the time).
        assert generator.sent < 100

    def test_session_ordering_respected(self):
        """The next click of a session is only sent after the response."""
        sim = Simulator()
        server = EchoServer(sim, service_s=0.005)
        generator = LoadGenerator(
            sim, server.submit, fixed_sessions(list(range(1, 9))),
            target_rps=50, duration_s=10,
        )
        generator.start()
        sim.run()
        seen = {}
        for request in server.received:
            previous = seen.get(request.session_id, 0)
            assert request.session_length == previous + 1, "clicks out of order"
            seen[request.session_id] = request.session_length

    def test_requests_spread_within_tick(self):
        sim = Simulator()
        server = EchoServer(sim, service_s=0.0001)
        generator = LoadGenerator(
            sim, server.submit, fixed_sessions([1]), target_rps=40, duration_s=10,
        )
        generator.start()
        sim.run()
        # Inside the last tick, inter-send gaps should be sub-100ms, not a
        # single burst at the tick boundary.
        last_tick = [r.sent_at for r in server.received if r.sent_at >= 9.0]
        gaps = np.diff(sorted(last_tick))
        assert len(last_tick) >= 30
        assert gaps.max() < 0.2
