"""Client-side request timeouts in the load generator."""

import numpy as np

from repro.loadgen import LoadGenerator
from repro.metrics.collector import MetricsCollector
from repro.serving.request import HTTP_OK, RecommendationResponse
from repro.simulation import Simulator


class SlowServer:
    """Responds after a fixed delay (possibly beyond the client timeout)."""

    def __init__(self, simulator, delay_s):
        self.simulator = simulator
        self.delay_s = delay_s
        self.responses_sent = 0

    def submit(self, request, respond):
        def reply():
            self.responses_sent += 1
            respond(
                RecommendationResponse(
                    request_id=request.request_id,
                    status=HTTP_OK,
                    completed_at=self.simulator.now,
                    latency_s=self.simulator.now - request.sent_at,
                )
            )

        self.simulator.call_in(self.delay_s, reply)


def sessions():
    while True:
        yield np.array([1, 2, 3], dtype=np.int64)


def run(delay_s, timeout_s, target_rps=20, duration_s=10):
    sim = Simulator()
    server = SlowServer(sim, delay_s)
    collector = MetricsCollector()
    generator = LoadGenerator(
        sim, server.submit, sessions(), target_rps=target_rps,
        duration_s=duration_s, collector=collector,
        request_timeout_s=timeout_s,
    )
    generator.start()
    sim.run()
    return generator, collector, server


class TestClientTimeout:
    def test_fast_server_no_timeouts(self):
        generator, collector, _server = run(delay_s=0.01, timeout_s=0.5)
        assert generator.timeouts == 0
        assert collector.errors == 0

    def test_slow_server_times_out(self):
        generator, collector, server = run(delay_s=1.0, timeout_s=0.1)
        assert generator.timeouts == generator.sent
        assert collector.errors == generator.sent
        # The server still sent its (ignored) late responses.
        assert server.responses_sent == generator.sent

    def test_late_responses_do_not_double_count(self):
        generator, collector, _server = run(delay_s=1.0, timeout_s=0.1)
        assert collector.total == generator.sent
        assert generator.pending == 0

    def test_timeout_latency_recorded_at_timeout(self):
        _generator, collector, _server = run(delay_s=5.0, timeout_s=0.2)
        # All recorded latencies equal the client timeout.
        for bucket in collector.buckets():
            assert bucket.errors == bucket.sent

    def test_timeouts_release_backpressure(self):
        """Without timeouts a dead-slow server stalls the generator; with
        them, pending slots recycle and the offered load keeps flowing."""
        with_timeout, _c1, _s1 = run(delay_s=10.0, timeout_s=0.05,
                                     target_rps=50, duration_s=10)
        without_timeout_sim = Simulator()
        server = SlowServer(without_timeout_sim, 1e6)
        generator = LoadGenerator(
            without_timeout_sim, server.submit, sessions(),
            target_rps=50, duration_s=10,
        )
        generator.start()
        without_timeout_sim.run()
        assert with_timeout.sent > 3 * generator.sent


class TestTimerCleanup:
    def test_settled_requests_cancel_their_timers(self):
        """Stale timeout timers must not extend the run: a fast server +
        a long client timeout ends at the load deadline, not deadline +
        timeout."""
        sim = Simulator()
        server = SlowServer(sim, 0.005)
        generator = LoadGenerator(
            sim, server.submit, sessions(), target_rps=20, duration_s=10,
            request_timeout_s=30.0,
        )
        generator.start()
        end = sim.run()
        # Pre-fix this ended at ~40 s (last request's dead timer).
        assert end < 11.0
        assert generator.timeouts == 0

    def test_no_pending_events_after_settled_run(self):
        sim = Simulator()
        server = SlowServer(sim, 0.005)
        LoadGenerator(
            sim, server.submit, sessions(), target_rps=10, duration_s=5,
            request_timeout_s=60.0,
        ).start()
        sim.run()
        assert sim.pending_events == 0
