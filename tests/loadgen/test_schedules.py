"""Arrival-rate schedules."""

import numpy as np
import pytest

from repro.loadgen import (
    ConstantSchedule,
    DiurnalSchedule,
    FlashSaleSchedule,
    LoadGenerator,
    RampSchedule,
    StepSchedule,
)
from repro.metrics.collector import MetricsCollector
from repro.serving.request import HTTP_OK, RecommendationResponse
from repro.simulation import Simulator


class TestScheduleShapes:
    def test_ramp_matches_timeprop(self):
        schedule = RampSchedule(1000)
        assert schedule.rate_at(0, 600) == 1
        assert schedule.rate_at(300, 600) == 500
        assert schedule.rate_at(600, 600) == 1000

    def test_constant(self):
        schedule = ConstantSchedule(250)
        assert schedule.rate_at(0, 100) == 250
        assert schedule.rate_at(99, 100) == 250

    def test_steps(self):
        schedule = StepSchedule(((0.0, 100), (0.5, 400)))
        assert schedule.rate_at(10, 100) == 100
        assert schedule.rate_at(49, 100) == 100
        assert schedule.rate_at(51, 100) == 400

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(((0.2, 100),))
        with pytest.raises(ValueError):
            StepSchedule(((0.0, 100), (0.8, 10), (0.5, 20)))

    def test_diurnal_trough_and_peak(self):
        schedule = DiurnalSchedule(low_rps=100, high_rps=900)
        assert schedule.rate_at(0, 100) == 100
        assert schedule.rate_at(50, 100) == 900
        midmorning = schedule.rate_at(25, 100)
        assert 100 < midmorning < 900

    def test_diurnal_cycles(self):
        schedule = DiurnalSchedule(low_rps=10, high_rps=100, cycles=2)
        assert schedule.rate_at(25, 100) == 100  # first peak at 1/4

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalSchedule(low_rps=100, high_rps=10)

    def test_flash_sale_burst_window(self):
        schedule = FlashSaleSchedule(
            baseline_rps=100, burst_factor=4.0,
            burst_start_fraction=0.5, burst_end_fraction=0.6,
        )
        assert schedule.rate_at(10, 100) == 100
        assert schedule.rate_at(55, 100) == 400
        assert schedule.rate_at(70, 100) == 100

    def test_flash_sale_validation(self):
        with pytest.raises(ValueError):
            FlashSaleSchedule(100, burst_factor=0.5)
        with pytest.raises(ValueError):
            FlashSaleSchedule(100, burst_start_fraction=0.8, burst_end_fraction=0.2)


class EchoServer:
    def __init__(self, simulator, service_s=0.0005):
        self.simulator = simulator
        self.service_s = service_s

    def submit(self, request, respond):
        self.simulator.call_in(
            self.service_s,
            lambda: respond(
                RecommendationResponse(
                    request_id=request.request_id,
                    status=HTTP_OK,
                    completed_at=self.simulator.now,
                    latency_s=self.simulator.now - request.sent_at,
                )
            ),
        )


def run_with_schedule(schedule, duration_s=40):
    sim = Simulator()
    server = EchoServer(sim)
    collector = MetricsCollector()

    def sessions():
        while True:
            yield np.array([1, 2], dtype=np.int64)

    LoadGenerator(
        sim, server.submit, sessions(), target_rps=100, duration_s=duration_s,
        collector=collector, schedule=schedule,
    ).start()
    sim.run()
    return collector


class TestGeneratorWithSchedules:
    def test_constant_schedule_offered_flat(self):
        collector = run_with_schedule(ConstantSchedule(60))
        offered = [b.sent for b in collector.buckets()][1:-1]
        assert all(abs(x - 60) <= 8 for x in offered)

    def test_flash_sale_visible_in_buckets(self):
        collector = run_with_schedule(
            FlashSaleSchedule(baseline_rps=40, burst_factor=5.0,
                              burst_start_fraction=0.5, burst_end_fraction=0.75)
        )
        offered = [b.sent for b in collector.buckets()]
        assert max(offered) > 3 * offered[1]

    def test_default_schedule_is_the_paper_ramp(self):
        collector = run_with_schedule(None)
        offered = [b.sent for b in collector.buckets()]
        assert offered[1] < offered[len(offered) // 2] < max(offered[-3:]) + 5


class TestZeroRate:
    """A zero target must be silence, not a one-request-per-second floor."""

    def test_rampup_zero_target_sends_nothing(self):
        from repro.loadgen import timeprop_rampup

        assert timeprop_rampup(0, 30.0, 60.0) == 0
        assert timeprop_rampup(0, 0.0, 60.0) == 0

    def test_rampup_positive_target_keeps_floor_of_one(self):
        from repro.loadgen import timeprop_rampup

        assert timeprop_rampup(100, 0.0, 60.0) == 1
        assert timeprop_rampup(0.3, 1.0, 60.0) == 1

    def test_zero_rate_schedules_offer_nothing(self):
        assert ConstantSchedule(0).rate_at(5.0, 60.0) == 0
        assert RampSchedule(0).rate_at(5.0, 60.0) == 0
        assert DiurnalSchedule(0, 0).rate_at(5.0, 60.0) == 0
        assert FlashSaleSchedule(0).rate_at(5.0, 60.0) == 0

    def test_step_schedule_silent_phase(self):
        schedule = StepSchedule(((0.0, 0), (0.5, 40)))
        assert schedule.rate_at(10.0, 100.0) == 0
        assert schedule.rate_at(60.0, 100.0) == 40

    def test_generator_stays_idle_through_a_silent_phase(self):
        collector = run_with_schedule(StepSchedule(((0.0, 0), (0.5, 40))))
        buckets = collector.buckets()
        first_half = [b.sent for b in buckets if b.second < 19]
        second_half = [b.sent for b in buckets if b.second >= 21]
        assert sum(first_half) == 0
        assert sum(second_half) > 0
