"""The ordered-replay contract of the paper's load generator: never two
in-flight clicks for one session, round-robin fairness across ready
sessions, empty sessions skipped at open, retire-on-exhaustion counters."""

import itertools

import numpy as np
import pytest

from repro.loadgen import SessionReplayQueue


def make_queue(sessions):
    return SessionReplayQueue(iter([np.asarray(s, dtype=np.int64) for s in sessions]))


def endless(sessions):
    return SessionReplayQueue(
        itertools.cycle([np.asarray(s, dtype=np.int64) for s in sessions])
    )


class TestOrderedReplay:
    def test_prefix_grows_click_by_click(self):
        queue = make_queue([[10, 20, 30]])
        for expected in ([10], [10, 20], [10, 20, 30]):
            session_id, prefix = queue.next_click()
            assert session_id == 0
            np.testing.assert_array_equal(prefix, expected)
            queue.complete(session_id)

    def test_never_two_in_flight_clicks_per_session(self):
        """Until complete() lands, the same session is never handed out
        again — next_click() opens a fresh session instead."""
        queue = endless([[1, 2, 3]])
        first_id, _ = queue.next_click()
        second_id, second_prefix = queue.next_click()
        assert second_id != first_id
        np.testing.assert_array_equal(second_prefix, [1])  # a new session
        # Once the first session's response lands it becomes ready again.
        queue.complete(first_id)
        third_id, third_prefix = queue.next_click()
        assert third_id == first_id
        np.testing.assert_array_equal(third_prefix, [1, 2])

    def test_round_robin_across_ready_sessions(self):
        """Completed sessions re-queue at the back: an interleaved stream,
        not one session drained to exhaustion first."""
        queue = endless([[1, 1, 1, 1]])
        a, _ = queue.next_click()
        b, _ = queue.next_click()
        queue.complete(a)
        queue.complete(b)
        order = []
        for _ in range(4):
            session_id, _ = queue.next_click()
            order.append(session_id)
            queue.complete(session_id)
        assert order == [a, b, a, b]

    def test_completing_unknown_session_raises(self):
        queue = endless([[1]])
        with pytest.raises(KeyError):
            queue.complete(999)


class TestSessionLifecycle:
    def test_empty_sessions_are_skipped(self):
        queue = make_queue([[], [], [7, 8]])
        session_id, prefix = queue.next_click()
        np.testing.assert_array_equal(prefix, [7])
        # The two empty sessions never became sessions at all.
        assert queue.opened_sessions == 1

    def test_exhausted_sessions_retire(self):
        queue = endless([[5, 6]])
        session_id, _ = queue.next_click()
        queue.complete(session_id)
        _, second = queue.next_click()
        np.testing.assert_array_equal(second, [5, 6])
        queue.complete(session_id)
        assert queue.finished_sessions == 1
        # Retired for good: completing it again is an error.
        with pytest.raises(KeyError):
            queue.complete(session_id)
        # The next click opens a fresh session.
        next_id, prefix = queue.next_click()
        assert next_id != session_id
        np.testing.assert_array_equal(prefix, [5])

    def test_open_and_finish_counters_balance(self):
        queue = endless([[1, 2], [3], [4, 5, 6]])
        for _ in range(60):
            session_id, _ = queue.next_click()
            queue.complete(session_id)
        assert queue.opened_sessions - queue.finished_sessions <= 1
        assert queue.finished_sessions > 0

    def test_in_flight_count_tracks_outstanding_clicks(self):
        queue = endless([[1, 2, 3]])
        assert queue.in_flight_sessions == 0
        a, _ = queue.next_click()
        b, _ = queue.next_click()
        assert queue.in_flight_sessions == 2
        queue.complete(a)
        assert queue.in_flight_sessions == 1
        queue.complete(b)
        assert queue.in_flight_sessions == 0
