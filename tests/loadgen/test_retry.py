"""Client retries with backoff, hedged requests, and their determinism."""

import numpy as np
import pytest

from repro.loadgen import LoadGenerator, RetryPolicy
from repro.metrics.collector import MetricsCollector
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationResponse,
)
from repro.simulation import Simulator


def sessions():
    while True:
        yield np.array([1, 2, 3], dtype=np.int64)


class ScriptedServer:
    """Answers 503 for the first ``failures_per_request`` submits of each
    logical request id, then 200 after ``delay_s``."""

    def __init__(self, simulator, failures_per_request=0, delay_s=0.002):
        self.simulator = simulator
        self.failures_per_request = failures_per_request
        self.delay_s = delay_s
        self.attempts = {}

    def submit(self, request, respond):
        seen = self.attempts.get(request.request_id, 0)
        self.attempts[request.request_id] = seen + 1
        status = (
            HTTP_SERVICE_UNAVAILABLE
            if seen < self.failures_per_request
            else HTTP_OK
        )

        def reply():
            respond(
                RecommendationResponse(
                    request_id=request.request_id,
                    status=status,
                    completed_at=self.simulator.now,
                    latency_s=self.simulator.now - request.sent_at,
                )
            )

        self.simulator.call_in(self.delay_s, reply)


def run(server_factory, policy=None, target_rps=20, duration_s=5,
        timeout_s=None, seed=0):
    sim = Simulator()
    server = server_factory(sim)
    collector = MetricsCollector()
    generator = LoadGenerator(
        sim, server.submit, sessions(), target_rps=target_rps,
        duration_s=duration_s, collector=collector,
        request_timeout_s=timeout_s, retry_policy=policy,
        retry_rng=np.random.default_rng(seed) if policy else None,
    )
    generator.start()
    sim.run()
    return generator, collector, server


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0,
                             max_backoff_s=0.5, jitter=0.0)
        delays = [policy.backoff_s(n) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_shrinks_and_is_deterministic(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        a = [policy.backoff_s(1, np.random.default_rng(7)) for _ in range(3)]
        b = [policy.backoff_s(1, np.random.default_rng(7)) for _ in range(3)]
        assert a == b
        assert all(0.05 <= delay <= 0.1 for delay in a)

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        assert policy.backoff_s(1, None) == 0.1

    def test_parse_round_trip(self):
        policy = RetryPolicy.parse("max=5,base=0.02,cap=2,mult=3,jitter=0.1,hedge=0.25")
        assert policy.max_retries == 5
        assert policy.hedge_after_s == 0.25
        assert RetryPolicy.parse(policy.spec_string()) == policy

    def test_empty_spec_is_defaults(self):
        assert RetryPolicy.parse("") == RetryPolicy()

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            RetryPolicy.parse("max")
        with pytest.raises(ValueError):
            RetryPolicy.parse("nope=3")
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_retryable_statuses(self):
        policy = RetryPolicy()
        assert policy.retryable(HTTP_SERVICE_UNAVAILABLE)
        assert not policy.retryable(HTTP_OK)


class TestGeneratorRetries:
    def test_transient_503s_recover(self):
        generator, collector, server = run(
            lambda sim: ScriptedServer(sim, failures_per_request=1),
            policy=RetryPolicy(max_retries=3, base_backoff_s=0.01, jitter=0.0),
        )
        assert collector.errors == 0
        assert generator.retries == generator.sent
        assert generator.retry_successes == generator.sent
        assert generator.retry_exhausted == 0

    def test_latency_spans_all_attempts(self):
        """Recorded latency covers backoff + retry, not just the last wire
        exchange."""
        _g, collector, _s = run(
            lambda sim: ScriptedServer(sim, failures_per_request=1, delay_s=0.001),
            policy=RetryPolicy(max_retries=1, base_backoff_s=0.05, jitter=0.0),
            target_rps=5, duration_s=2,
        )
        # reply(1ms) + backoff(50ms) + reply(1ms) ~= 52 ms end to end.
        assert collector.percentile_ms(50) > 40.0

    def test_budget_exhausts_against_hard_outage(self):
        policy = RetryPolicy(max_retries=2, base_backoff_s=0.01, jitter=0.0)
        generator, collector, server = run(
            lambda sim: ScriptedServer(sim, failures_per_request=99),
            policy=policy,
        )
        assert collector.ok == 0
        assert collector.errors == generator.sent
        assert generator.retry_exhausted == generator.sent
        # Every request burned exactly 1 + max_retries attempts.
        assert all(n == 3 for n in server.attempts.values())

    def test_no_policy_means_terminal_errors(self):
        generator, collector, server = run(
            lambda sim: ScriptedServer(sim, failures_per_request=1),
        )
        assert collector.errors == generator.sent
        assert generator.retries == 0
        assert all(n == 1 for n in server.attempts.values())

    def test_requests_conserved_with_retries(self):
        generator, collector, _s = run(
            lambda sim: ScriptedServer(sim, failures_per_request=2),
            policy=RetryPolicy(max_retries=1, base_backoff_s=0.01, jitter=0.0),
        )
        assert collector.total == generator.sent
        assert generator.pending == 0

    def test_timeout_mid_backoff_settles_once(self):
        generator, collector, _s = run(
            lambda sim: ScriptedServer(sim, failures_per_request=99, delay_s=0.001),
            policy=RetryPolicy(max_retries=3, base_backoff_s=0.2, jitter=0.0),
            timeout_s=0.05,
        )
        assert generator.timeouts == generator.sent
        assert collector.total == generator.sent
        assert generator.pending == 0


class TestHedging:
    def test_hedge_settles_on_first_response(self):
        policy = RetryPolicy(max_retries=0, hedge_after_s=0.01)
        generator, collector, server = run(
            lambda sim: ScriptedServer(sim, delay_s=0.1), policy=policy,
            target_rps=5, duration_s=3,
        )
        assert generator.hedges > 0
        # One recorded outcome per logical request despite the duplicates.
        assert collector.total == generator.sent
        assert collector.errors == 0
        assert generator.pending == 0

    def test_fast_responses_send_no_hedges(self):
        policy = RetryPolicy(max_retries=0, hedge_after_s=0.5)
        generator, _c, server = run(
            lambda sim: ScriptedServer(sim, delay_s=0.001), policy=policy,
        )
        assert generator.hedges == 0
        # No duplicate wire requests either.
        assert all(n == 1 for n in server.attempts.values())


class TestRetryDeterminism:
    def _latencies(self, policy):
        captured = []

        def factory(sim):
            server = ScriptedServer(sim, failures_per_request=0, delay_s=0.003)
            real = server.submit

            def spying_submit(request, respond):
                def spy(response):
                    captured.append(response.latency_s)
                    respond(response)

                real(request, spy)

            server.submit = spying_submit
            return server

        run(factory, policy=policy)
        return captured

    def test_unused_policy_is_bit_identical_to_none(self):
        """With zero failures the retry machinery must not draw a single
        random number or move a single event: exact same latencies."""
        baseline = self._latencies(None)
        with_policy = self._latencies(
            RetryPolicy(max_retries=3, jitter=0.9)
        )
        assert baseline == with_policy
