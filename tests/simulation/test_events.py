"""Direct unit coverage for ``simulation/events.py`` and event
cancellation — Signal semantics and the O(1) cancelled-heap-entry
machinery the simulator's determinism rests on."""

from repro.simulation import Signal, Simulator


class TestSignal:
    def test_fire_resumes_all_waiters(self):
        signal = Signal("s")
        resumed = []
        signal.add_waiter(lambda: resumed.append("a"))
        signal.add_waiter(lambda: resumed.append("b"))
        signal.fire()
        assert resumed == ["a", "b"]
        assert signal.fired

    def test_waiter_added_after_fire_resumes_immediately(self):
        signal = Signal()
        signal.fire(payload=42)
        resumed = []
        signal.add_waiter(lambda: resumed.append(True))
        assert resumed == [True]

    def test_double_fire_is_a_noop_and_keeps_first_payload(self):
        signal = Signal()
        signal.fire(payload="first")
        signal.fire(payload="second")
        assert signal.payload == "first"

    def test_payload_delivered_to_yielding_process(self):
        sim = Simulator()
        signal = Signal("data")
        received = []

        def waiter():
            value = yield signal
            received.append(value)

        def firer():
            yield 1.0
            signal.fire(payload={"answer": 21})

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert received == [{"answer": 21}]

    def test_repr_shows_state(self):
        signal = Signal("named")
        assert "pending" in repr(signal)
        signal.fire()
        assert "fired" in repr(signal)


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        handle = sim.call_in(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert not fired

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        # Double-cancel must not double-count the dead heap entry —
        # pending_events would go negative and run() would mis-skip.
        assert sim._cancelled_events == 1
        assert sim.pending_events == 0
        sim.run()
        assert sim._cancelled_events == 0

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        sim.run()
        assert handle.fired
        handle.cancel()
        assert not handle.cancelled
        assert sim._cancelled_events == 0

    def test_cancelled_timer_does_not_advance_the_clock(self):
        sim = Simulator()
        fired_at = []
        sim.call_in(1.0, lambda: fired_at.append(sim.now))
        dead = sim.call_in(50.0, lambda: fired_at.append(sim.now))
        dead.cancel()
        end = sim.run()
        # The dead timer is discarded without the clock ever reaching 50.
        assert fired_at == [1.0]
        assert end == 1.0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.call_in(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending_events == 2

    def test_cancel_releases_the_callback_closure(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        handle.cancel()
        assert handle.fn is None
