"""Direct unit coverage for ``simulation/random_streams.py``.

The load-bearing property is *stream isolation*: drawing from one named
stream never perturbs another. That is what keeps experiment results
stable when actors are added or events reorder — and, since the parallel
execution backend re-derives each run's streams in worker processes, it
is also what makes serial and mp sweeps bit-identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import RandomStreams


def draws(streams, name, n=8):
    return streams.stream(name).random(n).tolist()


class TestDeterminism:
    def test_same_seed_same_streams(self):
        assert draws(RandomStreams(7), "workload") == draws(
            RandomStreams(7), "workload"
        )

    def test_different_seeds_differ(self):
        assert draws(RandomStreams(7), "workload") != draws(
            RandomStreams(8), "workload"
        )

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert draws(streams, "a") != draws(streams, "b")

    def test_stream_is_stable_across_calls(self):
        streams = RandomStreams(7)
        assert streams.stream("cluster") is streams.stream("cluster")

    def test_seed_property(self):
        assert RandomStreams(123).seed == 123


class TestIsolation:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        interleaved=st.lists(
            st.sampled_from(["cluster", "network", "retry"]),
            max_size=6,
        ),
    )
    def test_drawing_from_one_stream_never_perturbs_another(
        self, seed, interleaved
    ):
        # Baseline: only the observed stream is consumed.
        baseline = draws(RandomStreams(seed), "workload")
        # Perturbed: arbitrary other streams are consumed first and
        # in between — the observed stream must not notice.
        streams = RandomStreams(seed)
        for name in interleaved:
            streams.stream(name).random(3)
        first_half = streams.stream("workload").random(4).tolist()
        for name in reversed(interleaved):
            streams.stream(name).integers(0, 100, 5)
        second_half = streams.stream("workload").random(4).tolist()
        assert first_half + second_half == baseline

    def test_creation_order_does_not_matter(self):
        forward = RandomStreams(42)
        backward = RandomStreams(42)
        forward.stream("a"), forward.stream("b")
        backward.stream("b"), backward.stream("a")
        assert draws(forward, "a") == draws(backward, "a")
        assert draws(forward, "b") == draws(backward, "b")


class TestFork:
    def test_fork_is_deterministic(self):
        assert draws(RandomStreams(7).fork(3), "cluster") == draws(
            RandomStreams(7).fork(3), "cluster"
        )

    def test_fork_salts_differ(self):
        parent = RandomStreams(7)
        assert draws(parent.fork(1), "cluster") != draws(
            parent.fork(2), "cluster"
        )

    def test_fork_is_independent_of_parent_consumption(self):
        # Hermeticity: a fork derives from the parent's *seed*, not its
        # stream state, so however much the parent consumed beforehand,
        # the forked family is identical. The parallel execution backend
        # relies on this — a worker process re-derives a run's streams
        # without replaying the parent's history (docs/parallelism.md).
        fresh = RandomStreams(7)
        consumed = RandomStreams(7)
        consumed.stream("cluster").random(100)
        consumed.stream("workload").random(100)
        assert draws(consumed.fork(5), "cluster") == draws(
            fresh.fork(5), "cluster"
        )

    def test_forks_do_not_collide_with_parent_streams(self):
        parent = RandomStreams(7)
        assert draws(parent.fork(0), "cluster") != draws(parent, "cluster")
