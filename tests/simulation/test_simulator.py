"""Discrete-event simulator core."""

import pytest

from repro.simulation import RandomStreams, Signal, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_in(2.0, lambda: order.append("b"))
        sim.call_in(1.0, lambda: order.append("a"))
        sim.call_in(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.call_in(1.0, lambda: order.append(1))
        sim.call_in(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.call_in(10.0, lambda: fired.append(True))
        stopped_at = sim.run(until=5.0)
        assert stopped_at == 5.0
        assert not fired
        sim.run()
        assert fired

    def test_negative_delay_clamped(self):
        sim = Simulator()
        fired = []
        sim.call_in(-1.0, lambda: fired.append(True))
        sim.run()
        assert fired


class TestProcesses:
    def test_sleep_advances_clock(self):
        sim = Simulator()
        times = []

        def process():
            times.append(sim.now)
            yield 1.5
            times.append(sim.now)
            yield 0.5
            times.append(sim.now)

        sim.spawn(process())
        sim.run()
        assert times == [0.0, 1.5, 2.0]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield period
                log.append((name, sim.now))

        sim.spawn(ticker("fast", 1.0))
        sim.spawn(ticker("slow", 2.5))
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]

    def test_invalid_yield_type_raises(self):
        sim = Simulator()

        def bad():
            yield "soon"

        sim.spawn(bad())
        with pytest.raises(TypeError):
            sim.run()


class TestSignals:
    def test_process_waits_for_signal(self):
        sim = Simulator()
        signal = Signal("test")
        log = []

        def waiter():
            payload = yield signal
            log.append((sim.now, payload))

        sim.spawn(waiter())
        sim.call_in(4.0, lambda: signal.fire("hello"))
        sim.run()
        assert log == [(4.0, "hello")]

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        signal = Signal()
        resumed = []

        def waiter(name):
            yield signal
            resumed.append(name)

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.call_in(1.0, signal.fire)
        sim.run()
        assert sorted(resumed) == ["a", "b"]

    def test_waiting_on_fired_signal_resumes_immediately(self):
        sim = Simulator()
        signal = Signal()
        signal.fire("done")
        log = []

        def waiter():
            payload = yield signal
            log.append(payload)

        sim.spawn(waiter())
        sim.run()
        assert log == ["done"]

    def test_double_fire_is_noop(self):
        signal = Signal()
        signal.fire("first")
        signal.fire("second")
        assert signal.payload == "first"


class TestRandomStreams:
    def test_streams_are_stable_per_name(self):
        streams = RandomStreams(7)
        a = streams.stream("loadgen")
        b = streams.stream("loadgen")
        assert a is b

    def test_streams_independent_across_names(self):
        streams = RandomStreams(7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not (a == b).all()

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert (a == b).all()

    def test_fork_changes_streams(self):
        base = RandomStreams(7)
        forked = base.fork(1)
        a = base.stream("x").random(5)
        b = forked.stream("x").random(5)
        assert not (a == b).all()


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        log = []
        handle = sim.call_in(1.0, lambda: log.append("cancelled"))
        sim.call_in(2.0, lambda: log.append("kept"))
        handle.cancel()
        sim.run()
        assert log == ["kept"]

    def test_cancelled_event_does_not_extend_run(self):
        """A cancelled timer must not advance the clock to its deadline."""
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        handle = sim.call_in(100.0, lambda: None)
        handle.cancel()
        assert sim.run() == 1.0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.call_in(1.0, lambda: fired.append(True))
        sim.run()
        handle.cancel()
        assert fired == [True]
        # The accounting must not go negative: a later event still counts.
        sim.call_in(1.0, lambda: None)
        assert sim.pending_events == 1

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.call_in(1.0, lambda: None)
        drop = sim.call_in(2.0, lambda: None)
        assert sim.pending_events == 2
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.cancelled is False

    def test_cancel_releases_callback(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        handle.cancel()
        assert handle.fn is None
