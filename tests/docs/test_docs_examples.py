"""The docs-check harness itself, plus a live run over the real docs."""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import docs_check  # noqa: E402  (needs the tools/ path above)


def md(tmp_path, body):
    path = tmp_path / "doc.md"
    path.write_text(textwrap.dedent(body))
    return path


class TestBlockExtraction:
    def test_languages_and_line_numbers(self, tmp_path):
        path = md(
            tmp_path,
            """\
            # Title

            ```python
            import json
            ```

            ```text
            not code
            ```

            ```bash
            python -m repro models
            ```
            """,
        )
        blocks = list(docs_check.fenced_blocks(path.read_text()))
        assert [(lang, line) for lang, line, _ in blocks] == [
            ("python", 4), ("text", 8), ("bash", 12),
        ]


class TestPythonBlocks:
    def test_valid_imports_pass(self):
        body = "from repro.obs import Telemetry\nimport repro.cli\n"
        assert docs_check.check_python_block(body, "doc.md:1") == []

    def test_missing_attribute_flagged(self):
        body = "from repro.obs import NoSuchThing\n"
        problems = docs_check.check_python_block(body, "doc.md:1")
        assert len(problems) == 1
        assert "NoSuchThing" in problems[0]

    def test_missing_module_flagged(self):
        problems = docs_check.check_python_block(
            "import repro.not_a_module\n", "doc.md:1"
        )
        assert len(problems) == 1

    def test_syntax_error_flagged(self):
        problems = docs_check.check_python_block("def broken(:\n", "doc.md:1")
        assert "does not parse" in problems[0]

    def test_body_is_not_executed(self):
        body = "import json\nraise RuntimeError('docs must not execute this')\n"
        assert docs_check.check_python_block(body, "doc.md:1") == []


class TestBashBlocks:
    def test_valid_cli_line_passes(self):
        body = "python -m repro run --model gru4rec --catalog 1000 --rps 50 --trace\n"
        assert docs_check.check_bash_block(body, "doc.md:1") == []

    def test_unknown_flag_flagged(self):
        body = "python -m repro run --model gru4rec --no-such-flag\n"
        problems = docs_check.check_bash_block(body, "doc.md:1")
        assert len(problems) == 1
        assert "--no-such-flag" in problems[0]

    def test_unknown_subcommand_flagged(self):
        problems = docs_check.check_bash_block(
            "python -m repro frobnicate\n", "doc.md:1"
        )
        assert len(problems) == 1

    def test_backslash_continuations_joined(self):
        body = (
            "python -m repro run --model gru4rec --catalog 1000 \\\n"
            "    --rps 50 --instance GPU-T4\n"
        )
        assert docs_check.check_bash_block(body, "doc.md:1") == []

    def test_placeholder_lines_skipped(self):
        body = "python -m repro run --model <name> ...\n"
        assert docs_check.check_bash_block(body, "doc.md:1") == []

    def test_non_repro_lines_ignored(self):
        body = "pytest tests/\npython setup.py develop\n"
        assert docs_check.check_bash_block(body, "doc.md:1") == []


class TestRealDocs:
    def test_shipped_documentation_is_clean(self, capsys):
        """The committed docs/README examples must validate — the same
        check ``make docs-check`` (and thus ``make test``) runs."""
        assert docs_check.main() == 0
        output = capsys.readouterr().out
        assert "0 problem(s)" in output

    def test_main_reports_failures(self, tmp_path, capsys):
        path = md(
            tmp_path,
            """\
            ```python
            from repro.obs import DoesNotExist
            ```
            """,
        )
        assert docs_check.main([str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
