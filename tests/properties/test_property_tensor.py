"""Property-based tests on the tensor substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, cost_trace
from repro.tensor import functional as F

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)


def float_arrays(max_dims=2, max_side=8):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


class TestElementwiseProperties:
    @given(float_arrays())
    def test_add_commutes(self, x):
        a, b = Tensor(x), Tensor(x[::-1].copy() if x.ndim == 1 else x)
        np.testing.assert_allclose(
            (a + b).numpy(), (b + a).numpy(), rtol=1e-6
        )

    @given(float_arrays())
    def test_double_negation(self, x):
        t = Tensor(x)
        np.testing.assert_allclose((-(-t)).numpy(), x, rtol=1e-6)

    @given(float_arrays())
    def test_relu_idempotent(self, x):
        t = Tensor(x)
        once = t.relu().numpy()
        twice = t.relu().relu().numpy()
        np.testing.assert_array_equal(once, twice)

    @given(float_arrays())
    def test_sigmoid_bounded(self, x):
        out = Tensor(x).sigmoid().numpy()
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(float_arrays())
    def test_softmax_is_distribution(self, x):
        out = F.softmax(Tensor(x), axis=-1).numpy()
        np.testing.assert_allclose(
            out.sum(axis=-1), np.ones(out.shape[:-1]), rtol=1e-4
        )
        assert np.all(out >= 0)


class TestTopKProperties:
    @given(
        arrays(
            dtype=np.float32,
            shape=st.integers(1, 200),
            elements=finite_floats,
            unique=True,
        ),
        st.integers(1, 50),
    )
    def test_topk_returns_the_k_largest(self, scores, k):
        result = F.topk(Tensor(scores), k).numpy()
        k_eff = min(k, scores.shape[0])
        expected = np.argsort(-scores)[:k_eff]
        np.testing.assert_array_equal(result, expected)

    @given(
        arrays(dtype=np.float32, shape=st.integers(2, 100), elements=finite_floats),
        st.integers(1, 10),
    )
    def test_topk_scores_descending(self, scores, k):
        result = F.topk(Tensor(scores), k).numpy()
        picked = scores[result]
        assert np.all(np.diff(picked) <= 1e-6)


class TestCostAccountingProperties:
    @given(float_arrays())
    def test_every_op_records_exactly_once(self, x):
        t = Tensor(x)
        with cost_trace() as trace:
            t.exp()
            t.tanh()
            _ = t + t
        assert len(trace) == 3

    @given(float_arrays(), st.floats(1.0, 1e4))
    def test_catalog_scale_monotone_in_costs(self, x, scale):
        t_plain = Tensor(x)
        t_scaled = Tensor(x, catalog_scale=scale)
        with cost_trace() as plain:
            t_plain.exp()
        with cost_trace() as scaled:
            t_scaled.exp()
        assert scaled.total_flops >= plain.total_flops


class TestMaskingProperties:
    @given(st.integers(1, 50), st.integers(0, 50))
    def test_sequence_mask_counts(self, max_len, length):
        mask = F.sequence_mask(
            Tensor(np.array([min(length, max_len)], dtype=np.int64)), max_len
        ).numpy()
        assert mask.sum() == min(length, max_len)
        # Valid positions form a prefix.
        if mask.sum() < max_len:
            assert not mask[int(mask.sum()):].any()
