"""Latency-digest correctness sweep: the bin-edge semantics cross-checked
against the exact order statistic, exact-minimum tracking through queries
and merges, and input validation on ``record``.

The digest's contract (see ``repro.metrics.percentile``): a percentile
query returns the *upper edge* of the bin holding the matched order
statistic, clamped into the observed ``[min, max]`` envelope — a one-sided
error of at most one bin width (``10 ** (1/bins_per_decade)``, ~4.7% at
the default resolution), never an underestimate.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LatencyDigest
from repro.metrics.percentile import exact_percentile

#: Strictly inside the digest's [1e-5, 1e3] coverage so boundary clamping
#: never muddies the order-statistic bound.
latencies = st.lists(
    st.floats(min_value=2e-5, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

#: One-sided bin-width bound at the default resolution, with float slack.
BIN_FACTOR = 10 ** (1 / 50)
SLACK = 1e-9


class TestBinEdgeSemantics:
    @given(latencies, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_upper_edge_brackets_the_exact_order_statistic(self, values, q):
        """digest.percentile(q) lands in [v_k, v_k * bin_width] where v_k
        is the exact order statistic the query targets (clamped to max)."""
        digest = LatencyDigest()
        digest.record_many(values)
        estimate = digest.percentile(q)
        ordered = sorted(values)
        k = max(int(math.ceil(q / 100.0 * len(values))), 1)
        exact = ordered[k - 1]
        if q == 0:
            assert estimate == ordered[0]
            return
        assert estimate >= exact * (1.0 - SLACK)
        assert estimate <= min(exact * BIN_FACTOR, max(values)) * (1.0 + SLACK)

    @given(latencies)
    @settings(max_examples=100, deadline=None)
    def test_never_escapes_the_observed_envelope(self, values):
        digest = LatencyDigest()
        digest.record_many(values)
        for q in (0, 1, 25, 50, 75, 90, 99, 100):
            estimate = digest.percentile(q)
            assert min(values) <= estimate <= max(values)

    @given(latencies)
    @settings(max_examples=100, deadline=None)
    def test_tracks_exact_percentile_within_one_bin(self, values):
        """Cross-check against ``exact_percentile``'s neighbouring order
        statistics: the digest's answer sits between the ``lower``-method
        value and the ``higher``-method value inflated by one bin width."""
        digest = LatencyDigest()
        digest.record_many(values)
        for q in (50, 90, 99):
            exact = exact_percentile(values, q)
            estimate = digest.percentile(q)
            floor = float(np.percentile(values, q, method="lower"))
            ceiling = float(np.percentile(values, q, method="higher"))
            assert floor <= exact <= ceiling
            assert estimate >= floor * (1.0 - SLACK)
            assert estimate <= min(ceiling * BIN_FACTOR, max(values)) * (1.0 + SLACK)


class TestMinimumTracking:
    @given(latencies)
    @settings(max_examples=100, deadline=None)
    def test_q0_is_the_exact_minimum(self, values):
        digest = LatencyDigest()
        digest.record_many(values)
        assert digest.percentile(0) == min(values)
        assert digest.min() == min(values)

    @given(latencies, latencies)
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_min_max_count(self, a, b):
        left, right = LatencyDigest(), LatencyDigest()
        left.record_many(a)
        right.record_many(b)
        merged = left.merge(right)
        assert merged.min() == min(a + b)
        assert merged.max() == max(a + b)
        assert merged.count == len(a) + len(b)
        assert merged.percentile(0) == min(a + b)

    def test_empty_digest_min_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LatencyDigest().min()


class TestRecordValidation:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), -1e-9, -5.0]
    )
    def test_rejects_nan_and_negative(self, bad):
        digest = LatencyDigest()
        with pytest.raises(ValueError, match="finite and non-negative"):
            digest.record(bad)
        # A rejected sample must leave the digest untouched.
        assert digest.count == 0

    def test_record_many_stops_at_the_first_bad_sample(self):
        digest = LatencyDigest()
        with pytest.raises(ValueError):
            digest.record_many([0.001, 0.002, float("nan"), 0.003])
        assert digest.count == 2

    def test_zero_is_a_valid_latency(self):
        digest = LatencyDigest()
        digest.record(0.0)
        assert digest.min() == 0.0
        assert digest.percentile(0) == 0.0
        assert digest.percentile(90) == 0.0  # clamped to the observed max
