"""Property-based tests on the serving stack and schedules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.loadgen import (
    ConstantSchedule,
    DiurnalSchedule,
    FlashSaleSchedule,
    RampSchedule,
    StepSchedule,
)
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.request import RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace


def make_profile(device, param_bytes, item_bytes):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=param_bytes, write_bytes=item_bytes)
    )
    return LatencyModel(device).profile(trace)


schedules = st.one_of(
    st.floats(1, 2000).map(RampSchedule),
    st.floats(1, 2000).map(ConstantSchedule),
    st.tuples(st.floats(1, 500), st.floats(1, 500)).map(
        lambda pair: StepSchedule(((0.0, pair[0]), (0.5, pair[1])))
    ),
    st.tuples(st.floats(1, 100), st.floats(100, 2000)).map(
        lambda pair: DiurnalSchedule(low_rps=pair[0], high_rps=pair[1])
    ),
    st.floats(1, 500).map(lambda base: FlashSaleSchedule(baseline_rps=base)),
)


class TestScheduleProperties:
    @given(schedules, st.floats(0, 2000), st.floats(1, 1000))
    @settings(max_examples=80)
    def test_rates_are_positive_integers(self, schedule, elapsed, duration):
        rate = schedule.rate_at(elapsed, duration)
        assert isinstance(rate, int)
        assert rate >= 1

    @given(st.floats(1, 2000), st.floats(1, 1000))
    @settings(max_examples=40)
    def test_ramp_bounded_by_target(self, target, duration):
        schedule = RampSchedule(target)
        for fraction in (0.0, 0.25, 0.5, 1.0, 2.0):
            assert schedule.rate_at(duration * fraction, duration) <= max(
                int(np.ceil(target)), 1
            )


class TestServerConservation:
    @given(
        st.integers(1, 60),
        st.floats(0.0, 0.01),
        st.integers(0, 100),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_request_answered_exactly_once(
        self, count, spacing, seed, use_gpu
    ):
        """Any burst pattern against either device path: request count in
        equals response count out, each exactly once."""
        sim = Simulator()
        device = GPU_T4.device if use_gpu else CPU_E2.device
        server = EtudeInferenceServer(
            sim,
            device,
            make_profile(device, 1e7, 1e5),
            np.random.default_rng(seed),
            batching=BatchingConfig(max_batch_size=16, max_delay_s=0.002),
        )
        seen = []

        def client():
            for index in range(count):
                request = RecommendationRequest(
                    request_id=index,
                    session_id=index,
                    session_items=np.array([1], dtype=np.int64),
                    sent_at=sim.now,
                )
                server.submit(request, lambda r: seen.append(r.request_id))
                if spacing:
                    yield spacing
            if False:
                yield

        sim.spawn(client())
        sim.run()
        assert sorted(seen) == list(range(count))

    @given(st.integers(2, 40), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_gpu_batches_never_exceed_cap(self, count, seed):
        sim = Simulator()
        cap = 1 + seed % 7
        server = EtudeInferenceServer(
            sim,
            GPU_T4.device,
            make_profile(GPU_T4.device, 1e8, 1e5),
            np.random.default_rng(seed),
            batching=BatchingConfig(max_batch_size=cap, max_delay_s=0.001),
        )
        batches = []

        def client():
            for index in range(count):
                request = RecommendationRequest(
                    request_id=index,
                    session_id=index,
                    session_items=np.array([1], dtype=np.int64),
                    sent_at=sim.now,
                )
                server.submit(request, lambda r: batches.append(r.batch_size))
            if False:
                yield

        sim.spawn(client())
        sim.run()
        assert len(batches) == count
        assert max(batches) <= cap
