"""Property-based tests: percentile digest, ramp-up, latency model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import GPU_T4, LatencyModel
from repro.loadgen import timeprop_rampup
from repro.metrics import LatencyDigest
from repro.tensor.ops import CostRecord, CostTrace

latencies = st.lists(
    st.floats(min_value=1e-5, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=300,
)


class TestDigestProperties:
    @given(latencies)
    def test_percentile_monotone_in_q(self, values):
        digest = LatencyDigest()
        digest.record_many(values)
        estimates = [digest.percentile(q) for q in (10, 50, 90, 99, 100)]
        assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))

    @given(latencies)
    def test_percentile_close_to_exact(self, values):
        digest = LatencyDigest()
        digest.record_many(values)
        exact = float(np.percentile(values, 90, method="lower"))
        estimate = digest.percentile(90)
        assert estimate >= exact * 0.9
        assert estimate <= max(values) * 1.06

    @given(latencies, latencies)
    def test_merge_equals_combined(self, a, b):
        separate_a, separate_b = LatencyDigest(), LatencyDigest()
        separate_a.record_many(a)
        separate_b.record_many(b)
        merged = separate_a.merge(separate_b)
        combined = LatencyDigest()
        combined.record_many(a + b)
        assert merged.count == combined.count
        for q in (50, 90):
            assert merged.percentile(q) == combined.percentile(q)

    @given(latencies)
    def test_mean_exact(self, values):
        digest = LatencyDigest()
        digest.record_many(values)
        assert abs(digest.mean() - np.mean(values)) < 1e-9


class TestRampupProperties:
    @given(
        st.integers(1, 5_000),
        st.floats(0.0, 1_000.0),
        st.floats(1.0, 1_000.0),
    )
    def test_bounds(self, target, elapsed, duration):
        rate = timeprop_rampup(target, elapsed, duration)
        assert 1 <= rate <= max(target, 1)

    @given(st.integers(1, 5_000), st.floats(1.0, 1_000.0))
    def test_monotone_in_time(self, target, duration):
        points = np.linspace(0, duration * 1.5, 20)
        rates = [timeprop_rampup(target, t, duration) for t in points]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    @given(st.integers(1, 5_000), st.floats(1.0, 1_000.0))
    def test_reaches_target_at_deadline(self, target, duration):
        assert timeprop_rampup(target, duration, duration) == target


class TestLatencyModelProperties:
    @given(
        st.floats(0, 1e10),
        st.floats(0, 1e9),
        st.floats(0, 1e12),
        st.integers(1, 1024),
    )
    @settings(max_examples=50)
    def test_latency_positive_and_affine(self, param_bytes, act_bytes, flops, batch):
        trace = CostTrace()
        trace.append(
            CostRecord(
                op="x", param_bytes=param_bytes, write_bytes=act_bytes, flops=flops
            )
        )
        profile = LatencyModel(GPU_T4.device).profile(trace)
        t1 = profile.latency(1)
        tb = profile.latency(batch)
        assert t1 > 0
        assert abs(tb - (profile.fixed_s + batch * profile.per_item_s)) < 1e-12
        assert tb >= t1 - 1e-12

    @given(st.floats(1.0, 1e4))
    @settings(max_examples=30)
    def test_catalog_scale_scales_latency(self, scale):
        def profiled(s):
            trace = CostTrace()
            trace.append(CostRecord(op="x", param_bytes=1e7, catalog_scale=s))
            return LatencyModel(GPU_T4.device).profile(trace)

        base = profiled(1.0)
        scaled = profiled(scale)
        launch = GPU_T4.device.launch_overhead_s
        assert (scaled.fixed_s - launch) >= (base.fixed_s - launch) * min(scale, 1.0)
