"""Property-based tests on the model zoo and session replay."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import SessionReplayQueue
from repro.models import ModelConfig, create_model
from repro.tensor import Tensor, optimize_for_inference

CATALOG = 2_000
CONFIG = ModelConfig.for_catalog(CATALOG, top_k=5)

sessions = st.lists(
    st.integers(0, CATALOG - 1), min_size=1, max_size=60
)


class TestModelContractProperties:
    @given(sessions)
    @settings(max_examples=25, deadline=None)
    def test_stamp_output_always_valid(self, session):
        model = _cached("stamp")
        recs = model.recommend(session)
        assert recs.shape == (5,)
        assert len(set(recs.tolist())) == 5
        assert np.all((recs >= 0) & (recs < CATALOG))

    @given(sessions)
    @settings(max_examples=25, deadline=None)
    def test_gru4rec_jit_matches_eager(self, session):
        model = _cached("gru4rec")
        scripted = _cached_scripted("gru4rec")
        items, length = model.prepare_inputs(session)
        eager = model(Tensor(items), Tensor(length)).numpy()
        replay = scripted(items, length).numpy()
        np.testing.assert_array_equal(eager, replay)

    @given(sessions)
    @settings(max_examples=15, deadline=None)
    def test_srgnn_handles_any_session_shape(self, session):
        model = _cached("srgnn")
        recs = model.recommend(session)
        assert recs.shape == (5,)


_MODELS = {}
_SCRIPTED = {}


def _cached(name):
    if name not in _MODELS:
        _MODELS[name] = create_model(name, CONFIG)
    return _MODELS[name]


def _cached_scripted(name):
    if name not in _SCRIPTED:
        model = _cached(name)
        _SCRIPTED[name] = optimize_for_inference(model, model.example_inputs())
    return _SCRIPTED[name]


class TestSessionReplayProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 100), min_size=1, max_size=5),
            min_size=1,
            max_size=10,
        ),
        st.lists(st.booleans(), min_size=5, max_size=100),
    )
    @settings(max_examples=50)
    def test_ordering_invariant_under_any_interleaving(self, pool, choices):
        """Random next_click/complete interleavings never break ordering."""

        def source():
            index = 0
            while True:
                yield np.asarray(pool[index % len(pool)], dtype=np.int64)
                index += 1

        queue = SessionReplayQueue(source())
        last_length = {}
        in_flight = []
        for advance in choices:
            if advance or not in_flight:
                session_id, prefix = queue.next_click()
                previous = last_length.get(session_id, 0)
                assert prefix.shape[0] == previous + 1
                last_length[session_id] = prefix.shape[0]
                in_flight.append(session_id)
            else:
                queue.complete(in_flight.pop(0))
