"""Property-based tests on workload generation (Algorithm 1)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import SyntheticWorkloadGenerator, WorkloadStatistics
from repro.workload.powerlaw import BoundedPowerLaw, EmpiricalCDF

alphas = st.floats(min_value=1.05, max_value=3.5)


class TestPowerLawProperties:
    @given(alphas, st.integers(1, 20), st.integers(0, 200), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_samples_always_in_support(self, alpha, x_min, span, seed):
        x_max = x_min + span
        dist = BoundedPowerLaw(alpha, x_min=x_min, x_max=x_max)
        samples = dist.sample(500, np.random.default_rng(seed))
        assert samples.min() >= x_min
        assert samples.max() <= x_max

    @given(alphas, st.integers(0, 1000))
    @settings(max_examples=25)
    def test_pmf_monotone_decreasing(self, alpha, _seed):
        dist = BoundedPowerLaw(alpha, x_min=1, x_max=100)
        pmf = dist.pmf()
        assert np.all(np.diff(pmf) <= 1e-15)

    @given(alphas)
    @settings(max_examples=25)
    def test_mean_within_support(self, alpha):
        dist = BoundedPowerLaw(alpha, x_min=1, x_max=50)
        assert 1.0 <= dist.mean() <= 50.0


class TestEmpiricalCDFProperties:
    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=50).filter(
            lambda counts: sum(counts) > 0
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40)
    def test_zero_weight_never_drawn(self, counts, seed):
        cdf = EmpiricalCDF(np.asarray(counts, dtype=np.float64))
        draws = cdf.sample(300, np.random.default_rng(seed))
        zero_items = {i for i, c in enumerate(counts) if c == 0}
        assert not (set(draws.tolist()) & zero_items)
        assert draws.min() >= 0 and draws.max() < len(counts)


class TestAlgorithm1Properties:
    @given(
        st.integers(100, 5_000),
        st.integers(50, 2_000),
        st.floats(1.2, 3.0),
        st.floats(1.1, 2.0),
        st.integers(0, 1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants(self, catalog, clicks, alpha_l, alpha_c, seed):
        statistics = WorkloadStatistics(
            catalog_size=catalog,
            alpha_length=alpha_l,
            alpha_clicks=alpha_c,
            max_session_length=40,
        )
        log = SyntheticWorkloadGenerator(statistics, seed=seed).generate_clicks(clicks)
        # At least the requested volume, whole sessions only.
        assert len(log) >= clicks
        lengths = log.session_lengths()
        assert lengths.sum() == len(log)
        assert lengths.max() <= 40
        # Items within the catalog; session ids contiguous from 0.
        assert log.item_ids.min() >= 0 and log.item_ids.max() < catalog
        np.testing.assert_array_equal(
            np.unique(log.session_ids), np.arange(lengths.shape[0])
        )
        # Steps strictly increasing (global click order).
        assert np.all(np.diff(log.steps) == 1)
