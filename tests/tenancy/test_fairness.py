"""Weighted-fair shedding: the admission math under synthetic overload
(unit + Hypothesis property) and a real 4x tenant storm end to end —
one tenant's storm must not starve another tenant's SLO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.infra_test import run_infra_test
from repro.hardware import CPU_E2, LatencyModel
from repro.serving import AdmissionPolicy, EtudeInferenceServer, FallbackConfig
from repro.serving.request import RecommendationRequest
from repro.simulation import Simulator
from repro.tenancy import TenancyConfig, TenantConfig, TenantServing
from repro.tensor.ops import CostRecord, CostTrace


def make_profile():
    trace = CostTrace()
    trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e5))
    return LatencyModel(CPU_E2.device).profile(trace)


def make_server(weights, fair_depth=32, shadows=()):
    profile = make_profile()
    tenants = {}
    for name, weight in weights.items():
        config = TenantConfig(
            name=name, model="stamp", weight=weight, shadow=name in shadows
        )
        tenants[name] = TenantServing(
            config=config, service_profile=profile, artifact_version="v0"
        )
    return EtudeInferenceServer(
        Simulator(), CPU_E2.device, profile, np.random.default_rng(0),
        tenants=tenants, tenant_fair_depth=fair_depth,
    )


def make_request(tenant, request_id=0):
    return RecommendationRequest(
        request_id=request_id, session_id=request_id,
        session_items=np.asarray([1, 2], dtype=np.int64),
        sent_at=0.0, tenant=tenant, arm="stable",
    )


def synthetic_overload(server, offered, rounds=400, drain_per_round=2):
    """Drive the admission math directly: every round each tenant
    attempts ``offered[name]`` arrivals against the shared queue and the
    (slower) drain pops FIFO — pure bookkeeping, no simulation clock."""
    admitted = {name: 0 for name in offered}
    shed = {name: 0 for name in offered}
    for _ in range(rounds):
        for name, count in offered.items():
            for _ in range(count):
                request = make_request(name)
                if server._fair_admit(request):
                    server._note_queued(request)
                    server._queue.append((request, None, 0.0))
                    admitted[name] += 1
                else:
                    shed[name] += 1
        for _ in range(drain_per_round):
            if server._queue:
                popped, _, _ = server._queue.popleft()
                server._note_dequeued(popped)
    return admitted, shed


class TestFairAdmitUnit:
    def test_everyone_queues_freely_below_the_depth(self):
        server = make_server({"a": 1.0, "b": 1.0}, fair_depth=32)
        for index in range(31):
            request = make_request("a", index)
            assert server._fair_admit(request)
            server._note_queued(request)
            server._queue.append((request, None, 0.0))

    def test_storming_tenant_is_capped_at_its_share(self):
        server = make_server({"a": 1.0, "b": 1.0}, fair_depth=8)
        admitted, shed = synthetic_overload(
            server, {"a": 8, "b": 2}, rounds=200, drain_per_round=2
        )
        # Equal entitlements: the storming tenant gets no more than its
        # half of the drained capacity (plus the slack), despite
        # offering 4x the load.
        total = admitted["a"] + admitted["b"]
        assert admitted["a"] / total < 0.6
        assert shed["a"] > shed["b"]
        # The polite tenant barely sheds: it never exceeds its share.
        assert shed["b"] / (admitted["b"] + shed["b"]) < 0.05

    def test_shadow_work_is_shed_first(self):
        server = make_server(
            {"a": 1.0, "m": 0.5}, fair_depth=8, shadows=("m",)
        )
        admitted, shed = synthetic_overload(
            server, {"a": 4, "m": 4}, rounds=100, drain_per_round=2
        )
        # Zero entitlement: once fairness engages, shadow work only ever
        # rides in the fixed slack slots.
        assert shed["m"] > shed["a"]
        assert admitted["m"] < admitted["a"] / 4

    def test_untenanted_requests_bypass_fair_admission(self):
        server = make_server({"a": 1.0, "b": 1.0}, fair_depth=4)
        for index in range(20):
            request = make_request("a", index)
            server._note_queued(request)
            server._queue.append((request, None, 0.0))
        assert not server._fair_admit(make_request("a"))
        bare = make_request(None)
        assert server._fair_admit(bare)


class TestWeightedFairProperty:
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            min_size=2, max_size=4,
        ),
        storm_index=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_admitted_shares_track_entitlements(self, weights, storm_index):
        names = [f"t{i}" for i in range(len(weights))]
        storm = names[storm_index % len(names)]
        server = make_server(dict(zip(names, weights)), fair_depth=16)
        total_weight = sum(weights)
        # Every tenant floods (storming tenant 4x harder): under full
        # saturation the queue slots — and therefore the admissions —
        # must split by entitlement, not by offered load.
        offered = {
            name: (16 if name == storm else 4) for name in names
        }
        admitted, shed = synthetic_overload(
            server, offered, rounds=500, drain_per_round=3
        )
        total_admitted = sum(admitted.values())
        assert sum(shed.values()) > 0  # the overload was real
        for name, weight in zip(names, weights):
            entitlement = weight / total_weight
            share = admitted[name] / total_admitted
            # Tolerance covers the fixed +2 slack and the fill phase.
            assert share == pytest.approx(entitlement, abs=0.15)


class TestStormEndToEnd:
    """The acceptance drill: tenant a storms at 4x its entitlement on a
    saturated server; tenant b must keep its SLO and shed (almost)
    nothing — the storm is paid for by the tenant that caused it."""

    SLO_MS = 50.0
    RPS = 8_000
    DURATION_S = 10.0

    @pytest.fixture(scope="class")
    def storm(self):
        fleet = TenancyConfig.parse(
            f"a=noop:1,slo={self.SLO_MS:g},burst=4;"
            f"b=noop:1,slo={self.SLO_MS:g};fair=16"
        )
        return run_infra_test(
            "actix", target_rps=self.RPS, duration_s=self.DURATION_S,
            seed=7, slo_deadline_s=self.SLO_MS / 1000.0,
            admission=AdmissionPolicy(slack_s=0.01),
            fallback=FallbackConfig(),
            tenants=fleet,
        )

    def test_storm_traffic_splits_four_to_one(self, storm):
        rows = storm.tenancy["tenants"]
        assert rows["a"]["requests"] == pytest.approx(
            4 * rows["b"]["requests"], rel=0.01
        )

    def test_victim_tenant_keeps_its_slo(self, storm):
        row = storm.tenancy["tenants"]["b"]
        assert row["p90_ms"] is not None
        assert row["p90_ms"] <= self.SLO_MS
        assert row["slo_met"] is True
        assert row["errors"] == 0

    def test_sheds_concentrate_on_the_storming_tenant(self, storm):
        rows = storm.tenancy["tenants"]
        assert rows["a"]["shed"] > 0  # fairness really engaged
        # Per offered request, the storming tenant sheds at many times
        # the victim's rate.
        storm_rate = rows["a"]["shed"] / rows["a"]["requests"]
        victim_rate = rows["b"]["shed"] / max(1, rows["b"]["requests"])
        assert storm_rate > 4 * victim_rate
