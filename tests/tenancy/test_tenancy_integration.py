"""The tenant fleet end to end: spec wiring, the disabled-path
determinism contract, co-location budgets, non-composition guards,
canary/shadow accounting in a full run, rolling version updates, and
the observability surface."""

import pytest

from repro.cluster.kubernetes import DeploymentError
from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.tenancy import TenancyConfig


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=10_000, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=15.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecWiring:
    def test_string_spec_coerces_to_config(self):
        s = spec(tenants="a=stamp:3,slo=60;b=stamp:1")
        assert isinstance(s.tenants, TenancyConfig)
        assert [t.name for t in s.tenants.tenants] == ["a", "b"]

    def test_empty_fleet_normalizes_to_none(self):
        assert spec(tenants="").tenants is None
        assert spec(tenants=TenancyConfig()).tenants is None

    def test_specfile_round_trips_tenants(self):
        s = spec(tenants="a=stamp:3,slo=60;b=narm:1,canary=0.1;fair=32")
        document = spec_to_dict(s)
        assert isinstance(document["tenants"], str)
        restored, _slo = spec_from_dict(document)
        assert restored.tenants == s.tenants
        # The default is omitted so old spec files stay byte-stable.
        assert "tenants" not in spec_to_dict(spec())

    def test_plain_run_has_no_tenancy_section(self):
        result = ExperimentRunner(seed=22).run(spec(duration_s=10.0))
        assert result.tenancy is None


class TestDisabledDeterminism:
    """With ``--tenants`` unset no tenancy object exists anywhere and a
    run is bit-identical to the paper-faithful harness; a *single-tenant*
    fleet draws no extra RNG either, so even it must leave the latency
    fingerprint untouched on both device paths."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_single_tenant_fleet_is_latency_identical(self, instance):
        baseline = ExperimentRunner(seed=33).run(
            spec(hardware=HardwareSpec(instance, 1))
        )
        solo = ExperimentRunner(seed=33).run(
            spec(hardware=HardwareSpec(instance, 1), tenants="solo=stamp:1")
        )
        assert self._fingerprint(solo) == self._fingerprint(baseline)
        assert baseline.tenancy is None
        assert solo.tenancy is not None  # the section reports, only


class TestFleetRun:
    @pytest.fixture(scope="class")
    def fleet(self):
        return ExperimentRunner(seed=33).run(
            spec(
                hardware=HardwareSpec("GPU-T4", 2),
                duration_s=20.0,
                target_rps=100,
                tenants=(
                    "home=stamp:3,slo=200;search=stamp:1,slo=400,"
                    "canary=0.1;mirror=stamp:0.2,shadow"
                ),
            )
        )

    def test_traffic_splits_by_weight(self, fleet):
        rows = fleet.tenancy["tenants"]
        assert rows["home"]["requests"] == pytest.approx(
            3 * rows["search"]["requests"], rel=0.01
        )
        assert rows["home"]["entitlement"] == pytest.approx(0.75)

    def test_canary_arm_served_at_its_fraction(self, fleet):
        row = fleet.tenancy["tenants"]["search"]
        assert row["canary_requests"] == pytest.approx(
            row["requests"] * 0.1, abs=2
        )

    def test_shadow_scored_never_returned(self, fleet):
        shadow = fleet.tenancy["shadow"]["mirror"]
        total_client = sum(
            row["requests"] for row in fleet.tenancy["tenants"].values()
        )
        assert shadow["mirrored"] == pytest.approx(total_client * 0.2, abs=2)
        # Every mirrored request completed server-side; client-visible
        # totals exclude all of them.
        assert shadow["completed"] == shadow["mirrored"] - shadow["shed"]
        assert fleet.total_requests == total_client

    def test_per_tenant_slos_are_checked(self, fleet):
        for row in fleet.tenancy["tenants"].values():
            assert row["slo_met"] is True
            assert row["errors"] == 0


class TestRollingUpdate:
    def test_rollout_bumps_every_pod_without_errors(self):
        result = ExperimentRunner(seed=33).run(
            spec(
                hardware=HardwareSpec("CPU", 2),
                duration_s=25.0,
                tenants="a=stamp:1,rollout=5;b=stamp:1",
            )
        )
        (rollout,) = result.tenancy["rollouts"]
        assert rollout["tenant"] == "a"
        assert rollout["completed"] is True
        assert rollout["pods_updated"] == 2
        versions = {event["version"] for event in rollout["events"]}
        assert len(versions) == 1
        assert next(iter(versions)).endswith("+r1")
        assert result.error_requests == 0

    def test_canary_rollout_promotes_the_canary_version(self):
        result = ExperimentRunner(seed=33).run(
            spec(
                hardware=HardwareSpec("CPU", 2),
                duration_s=25.0,
                tenants="a=stamp:1,canary=0.2,rollout=5;b=stamp:1",
            )
        )
        (rollout,) = result.tenancy["rollouts"]
        assert rollout["completed"] is True
        versions = {event["version"] for event in rollout["events"]}
        assert len(versions) == 1
        assert next(iter(versions)).endswith("+next")  # the canary artifact
        assert result.error_requests == 0


class TestColocationBudget:
    def test_oversized_fleet_reports_per_tenant_breakdown(self):
        # Eight gru4rec tenants at a 10M catalog cannot co-locate on a
        # 16 GB T4: the DeploymentError itemizes every tenant's bytes.
        fleet = ";".join(f"t{i}=gru4rec:1" for i in range(8))
        with pytest.raises(DeploymentError) as error:
            ExperimentRunner(seed=33).run(
                spec(
                    model="gru4rec",
                    catalog_size=10_000_000,
                    hardware=HardwareSpec("GPU-T4", 2),
                    tenants=fleet,
                )
            )
        message = str(error.value)
        assert "tenant fleet needs" in message
        assert "t0=" in message and "t7=" in message

    def test_canary_doubles_a_tenants_footprint(self):
        from repro.hardware import GPU_T4
        from repro.tenancy import check_colocation
        from tests.tenancy.test_cache_isolation import serving

        plain = serving("a")
        plain.resident_bytes = 8e9
        with_canary = serving("b", canary="v1")
        with_canary.resident_bytes = 8e9
        # 8 GB fits a 16 GB T4 (2 GB runtime reserve); 2 x 8 GB does not.
        assert check_colocation(GPU_T4, [plain]) == 8e9
        with pytest.raises(DeploymentError) as error:
            check_colocation(GPU_T4, [with_canary])
        assert "(+canary)" in str(error.value)


class TestNonComposition:
    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(sharding="2"), "sharding"),
            (dict(scheduler="cpu=1,target=20"), "scheduler"),
            (dict(retrieval="ivf:nlist=32,nprobe=8"), "retrieval"),
        ],
    )
    def test_tenants_reject_unsupported_dimensions(self, overrides, fragment):
        with pytest.raises(DeploymentError) as error:
            ExperimentRunner(seed=33).run(
                spec(tenants="a=stamp:1;b=stamp:1", **overrides)
            )
        assert fragment in str(error.value)


class TestObservability:
    def test_route_spans_and_counters(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        result = ExperimentRunner(seed=33).run(
            spec(duration_s=10.0, tenants="a=stamp:3;b=stamp:1"),
            telemetry=telemetry,
        )
        rows = result.tenancy["tenants"]
        spans = telemetry.trace.find("tenant_route")
        assert len(spans) == rows["a"]["requests"] + rows["b"]["requests"]
        counters = [
            m
            for m in telemetry.metrics.counters()
            if m.name == "tenant_requests_total"
        ]
        by_tenant = {m.labels["tenant"]: m.value for m in counters}
        assert by_tenant["a"] == rows["a"]["requests"]
        assert by_tenant["b"] == rows["b"]["requests"]
