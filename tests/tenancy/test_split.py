"""The deterministic traffic splitter: exact proportions, smooth
interleaving, canary arms, shadow mirroring, SLO deadline stamping."""

import numpy as np
import pytest

from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.simulation import Simulator
from repro.tenancy import SHADOW_ID_BASE, TenancyConfig, TrafficSplitter


def make_request(request_id, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.asarray([1, 2, 3], dtype=np.int64),
        sent_at=now,
    )


class Backend:
    """Records routed requests and answers each one immediately."""

    def __init__(self, status=HTTP_OK):
        self.status = status
        self.requests = []

    def submit(self, request, respond):
        self.requests.append(request)
        respond(
            RecommendationResponse(
                request_id=request.request_id,
                status=self.status,
                completed_at=request.sent_at + 0.01,
                latency_s=0.01,
            )
        )

    def tenant_sequence(self):
        return [r.tenant for r in self.requests]


def drive(config_text, n, status=HTTP_OK):
    config = TenancyConfig.parse(config_text)
    backend = Backend(status=status)
    splitter = TrafficSplitter(config, backend.submit, Simulator())
    delivered = []
    for request_id in range(n):
        splitter.submit(make_request(request_id), delivered.append)
    return backend, splitter, delivered


class TestPrimarySplit:
    def test_single_tenant_takes_everything(self):
        backend, splitter, delivered = drive("solo=stamp:1", 50)
        assert backend.tenant_sequence() == ["solo"] * 50
        assert len(delivered) == 50
        assert splitter.tallies["solo"].requests == 50

    def test_three_to_one_split_is_exact(self):
        backend, splitter, _ = drive("a=stamp:3;b=stamp:1", 400)
        sequence = backend.tenant_sequence()
        assert sequence.count("a") == 300
        assert sequence.count("b") == 100

    def test_split_is_smooth_not_bursty(self):
        # Smooth WRR interleaves: with weights 3:1 the minority tenant
        # never waits more than one full cycle and never runs twice in
        # a row.
        backend, _, _ = drive("a=stamp:3;b=stamp:1", 400)
        sequence = backend.tenant_sequence()
        for first, second in zip(sequence, sequence[1:]):
            assert not (first == "b" and second == "b")
        b_positions = [i for i, name in enumerate(sequence) if name == "b"]
        gaps = np.diff(b_positions)
        assert gaps.max() <= 4

    def test_burst_scales_a_tenants_offered_share(self):
        backend, _, _ = drive("a=stamp:1,burst=3;b=stamp:1", 400)
        sequence = backend.tenant_sequence()
        assert sequence.count("a") == 300  # equal weights, 3x storm
        assert sequence.count("b") == 100

    def test_routing_is_deterministic(self):
        first, _, _ = drive("a=stamp:3;b=stamp:2;c=stamp:1", 300)
        second, _, _ = drive("a=stamp:3;b=stamp:2;c=stamp:1", 300)
        assert first.tenant_sequence() == second.tenant_sequence()


class TestDeadlineStamping:
    def test_slo_becomes_an_absolute_deadline(self):
        backend, _, _ = drive("a=stamp:1,slo=60", 3)
        assert all(r.deadline_s == r.sent_at + 0.06 for r in backend.requests)

    def test_no_slo_means_no_deadline(self):
        backend, _, _ = drive("a=stamp:1", 3)
        assert all(r.deadline_s is None for r in backend.requests)


class TestCanaryArm:
    def test_canary_fraction_is_exact(self):
        backend, splitter, _ = drive("a=stamp:1,canary=0.25", 100)
        arms = [r.arm for r in backend.requests]
        assert arms.count("canary") == 25
        assert splitter.tallies["a"].canary_requests == 25
        # The accumulator fires every 1/fraction-th request, interleaved.
        assert arms[:4] == ["stable", "stable", "stable", "canary"]

    def test_no_canary_without_fraction(self):
        backend, _, _ = drive("a=stamp:1", 20)
        assert all(r.arm == "stable" for r in backend.requests)


class TestShadowMirroring:
    def test_mirror_fraction_is_exact_and_never_client_visible(self):
        backend, splitter, delivered = drive(
            "a=stamp:1;m=stamp:0.5,shadow", 100
        )
        shadow = [r for r in backend.requests if r.tenant == "m"]
        assert len(shadow) == 50
        assert splitter.shadow_mirrored["m"] == 50
        # Every mirrored copy was scored (the backend answered it) but
        # no shadow answer ever reached the client callback.
        assert splitter.shadow_completed["m"] == 50
        assert len(delivered) == 100
        assert {r.request_id for r in delivered} == set(range(100))

    def test_mirror_ids_come_from_the_shadow_range(self):
        backend, _, _ = drive("a=stamp:1;m=stamp:0.5,shadow", 100)
        shadow_ids = [
            r.request_id for r in backend.requests if r.tenant == "m"
        ]
        assert shadow_ids == list(
            range(SHADOW_ID_BASE, SHADOW_ID_BASE + 50)
        )

    def test_shadow_slo_stamps_the_copy_only(self):
        backend, _, _ = drive("a=stamp:1;m=stamp:1,shadow,slo=80", 10)
        for request in backend.requests:
            if request.tenant == "m":
                assert request.deadline_s == request.sent_at + 0.08
            else:
                assert request.deadline_s is None

    def test_shadow_never_counts_as_primary_traffic(self):
        _, splitter, _ = drive("a=stamp:1;m=stamp:1,shadow", 40)
        assert splitter.tallies["a"].requests == 40
        assert "m" not in splitter.tallies


class TestSummary:
    def test_summary_shape_and_tallies(self):
        _, splitter, _ = drive(
            "a=stamp:3,slo=1000;b=stamp:1;m=stamp:0.25,shadow", 200
        )
        section = splitter.summary(duration_s=10.0)
        assert section["config"] == splitter.config.spec_string()
        row = section["tenants"]["a"]
        assert row["requests"] == 150
        assert row["ok"] == 150
        assert row["errors"] == 0
        assert row["entitlement"] == pytest.approx(0.75)
        assert row["rps"] == pytest.approx(15.0)
        assert row["slo_met"] is True  # 10ms latency vs 1000ms SLO
        assert section["tenants"]["b"]["slo_met"] is None  # no contract
        assert section["shadow"]["m"]["mirrored"] == 50
        assert section["shadow"]["m"]["completed"] == 50

    def test_errors_and_server_sheds_merge_into_rows(self):
        _, splitter, delivered = drive(
            "a=stamp:1", 30, status=HTTP_SERVICE_UNAVAILABLE
        )
        assert len(delivered) == 30
        section = splitter.summary(shed_by_tenant={"a": 7})
        row = section["tenants"]["a"]
        assert row["errors"] == 30
        assert row["ok"] == 0
        assert row["shed"] == 7
