"""Cross-tenant cache isolation: two tenants serving the *same* model
and the *same* session prefix must never share a cache entry — on the
local tier, on the shared remote tier, and across a rolling version
bump (which must invalidate exactly one tenant's keyspace)."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.cache import MISSING
from repro.cache.tier import RecommendationCache, RemoteCacheTier
from repro.tenancy import TenantConfig, TenantServing
from repro.tenancy.fleet import ARM_CANARY, ARM_STABLE


PREFIX = np.asarray([11, 12, 13], dtype=np.int64)


def serving(name, version="art-v0", canary=None):
    return TenantServing(
        config=TenantConfig(
            name=name,
            model="stamp",
            weight=1.0,
            canary_fraction=0.1 if canary else 0.0,
        ),
        service_profile=None,
        artifact_version=version,
        canary_version=canary,
    )


def make_cache(remote=None):
    config = CacheConfig(
        capacity=64, window=4, remote_capacity=256 if remote else 0
    )
    return RecommendationCache(config, version="art-v0", remote=remote)


class TestKeyspaceScoping:
    def test_same_artifact_same_prefix_distinct_keys(self):
        cache = make_cache()
        key_a = cache.key_for(PREFIX, version=serving("a").cache_version())
        key_b = cache.key_for(PREFIX, version=serving("b").cache_version())
        assert key_a != key_b
        # Same prefix, same tenant: stable key.
        assert key_a == cache.key_for(
            PREFIX, version=serving("a").cache_version()
        )

    def test_canary_arm_has_its_own_keyspace(self):
        tenant = serving("a", canary="art-v1")
        cache = make_cache()
        stable = cache.key_for(PREFIX, version=tenant.cache_version(ARM_STABLE))
        canary = cache.key_for(PREFIX, version=tenant.cache_version(ARM_CANARY))
        assert stable != canary

    def test_local_tier_never_crosses_tenants(self):
        cache = make_cache()
        key_a = cache.key_for(PREFIX, version=serving("a").cache_version())
        key_b = cache.key_for(PREFIX, version=serving("b").cache_version())
        cache.fill_local(key_a, "answer-for-a", now=0.0)
        assert cache.lookup_local(key_a, now=1.0) == "answer-for-a"
        assert cache.lookup_local(key_b, now=1.0) is MISSING

    def test_remote_tier_never_crosses_tenants(self):
        # The remote tier is one store shared by every pod — isolation
        # must hold there too, purely through the key.
        config = CacheConfig(capacity=64, window=4, remote_capacity=256)
        remote = RemoteCacheTier(config)
        cache = make_cache(remote=remote)
        key_a = cache.key_for(PREFIX, version=serving("a").cache_version())
        key_b = cache.key_for(PREFIX, version=serving("b").cache_version())
        cache.fill(key_a, "answer-for-a", now=0.0)  # local + remote
        assert cache.lookup_remote(key_a, now=1.0) == "answer-for-a"
        assert cache.lookup_remote(key_b, now=1.0) is MISSING


class TestRolloutInvalidation:
    def test_version_bump_invalidates_exactly_one_tenant(self):
        cache = make_cache()
        tenant_a = serving("a")
        tenant_b = serving("b")
        key_a = cache.key_for(PREFIX, version=tenant_a.cache_version())
        key_b = cache.key_for(PREFIX, version=tenant_b.cache_version())
        cache.fill_local(key_a, "a-old", now=0.0)
        cache.fill_local(key_b, "b-old", now=0.0)

        # The rollout bumps tenant a's artifact version on this pod.
        tenant_a.artifact_version = "art-v1"
        new_key_a = cache.key_for(PREFIX, version=tenant_a.cache_version())
        assert new_key_a != key_a
        # a's stale entry is unreachable under the new version...
        assert cache.lookup_local(new_key_a, now=1.0) is MISSING
        # ...while b's entry survives untouched.
        assert (
            cache.lookup_local(
                cache.key_for(PREFIX, version=tenant_b.cache_version()),
                now=1.0,
            )
            == "b-old"
        )

    def test_server_set_tenant_version_rescopes_cache_keys(self):
        from repro.hardware import CPU_E2, LatencyModel
        from repro.serving import EtudeInferenceServer
        from repro.serving.profiles import ActixProfile
        from repro.serving.request import RecommendationRequest
        from repro.simulation import Simulator
        from repro.tensor.ops import CostRecord, CostTrace

        trace = CostTrace()
        trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e5))
        profile = LatencyModel(CPU_E2.device).profile(trace)
        tenants = {"a": serving("a"), "b": serving("b")}
        for tenant in tenants.values():
            tenant.service_profile = profile
        server = EtudeInferenceServer(
            Simulator(), CPU_E2.device, profile,
            np.random.default_rng(0),
            profile=ActixProfile(cache=CacheConfig(capacity=64, window=4)),
            tenants=tenants,
        )
        request_a = RecommendationRequest(
            request_id=1, session_id=1, session_items=PREFIX,
            sent_at=0.0, tenant="a", arm="stable",
        )
        request_b = RecommendationRequest(
            request_id=2, session_id=2, session_items=PREFIX,
            sent_at=0.0, tenant="b", arm="stable",
        )
        before_a = server.cache.key_for(
            PREFIX, version=server._tenant_cache_version(request_a)
        )
        before_b = server.cache.key_for(
            PREFIX, version=server._tenant_cache_version(request_b)
        )
        server.set_tenant_version("a", "art-v1")
        after_a = server.cache.key_for(
            PREFIX, version=server._tenant_cache_version(request_a)
        )
        after_b = server.cache.key_for(
            PREFIX, version=server._tenant_cache_version(request_b)
        )
        assert after_a != before_a  # tenant a: fresh keyspace
        assert after_b == before_b  # tenant b: untouched

    def test_unknown_tenant_version_bump_is_an_error(self):
        from repro.hardware import CPU_E2, LatencyModel
        from repro.serving import EtudeInferenceServer
        from repro.simulation import Simulator
        from repro.tensor.ops import CostRecord, CostTrace

        trace = CostTrace()
        trace.append(CostRecord(op="linear", param_bytes=1e6, write_bytes=1e5))
        profile = LatencyModel(CPU_E2.device).profile(trace)
        server = EtudeInferenceServer(
            Simulator(), CPU_E2.device, profile, np.random.default_rng(0)
        )
        with pytest.raises(KeyError):
            server.set_tenant_version("ghost", "art-v1")
