"""The ``--tenants`` grammar: parsing, validation, round-tripping."""

import pytest

from repro.tenancy import DEFAULT_FAIR_DEPTH, TenancyConfig, TenantConfig


class TestTenantSegment:
    def test_minimal_segment(self):
        tenant = TenantConfig.parse("home=gru4rec:3")
        assert tenant.name == "home"
        assert tenant.model == "gru4rec"
        assert tenant.weight == 3.0
        assert tenant.slo_ms is None
        assert not tenant.shadow
        assert tenant.canary_fraction == 0.0
        assert tenant.burst == 1.0
        assert tenant.rollout_at_s is None

    def test_full_segment(self):
        tenant = TenantConfig.parse(
            "search=narm:1.5,slo=120,canary=0.1,burst=4,rollout=30"
        )
        assert tenant.slo_ms == 120.0
        assert tenant.canary_fraction == 0.1
        assert tenant.burst == 4.0
        assert tenant.rollout_at_s == 30.0

    def test_shadow_segment(self):
        tenant = TenantConfig.parse("mirror=gru4rec:0.2,shadow")
        assert tenant.shadow
        assert tenant.weight == 0.2  # the mirror fraction

    def test_segment_round_trips(self):
        texts = [
            "home=gru4rec:3",
            "search=narm:1.5,slo=120,canary=0.1,burst=4,rollout=30",
            "mirror=gru4rec:0.2,slo=200,shadow",
        ]
        for text in texts:
            tenant = TenantConfig.parse(text)
            assert TenantConfig.parse(tenant.spec_string()) == tenant

    @pytest.mark.parametrize(
        "text",
        [
            "gru4rec:3",  # no name
            "home=gru4rec",  # no weight
            "home=gru4rec:lots",  # weight not a number
            "home=gru4rec:3,turbo=9",  # unknown option
            "home=gru4rec:3,slo=fast",  # option value not a number
            "Home=gru4rec:3",  # name violates the grammar
            "home=gru4rec:0",  # zero weight on a primary
            "home=gru4rec:-1",
            "home=gru4rec:3,slo=0",
            "home=gru4rec:3,canary=1.0",  # canary fraction must be < 1
            "home=gru4rec:3,burst=0",
            "home=gru4rec:3,rollout=-5",
            "mirror=gru4rec:1.5,shadow",  # mirror fraction > 1
            "mirror=gru4rec:0.2,shadow,canary=0.1",  # shadow has no canary
        ],
    )
    def test_invalid_segments_raise(self, text):
        with pytest.raises(ValueError):
            TenantConfig.parse(text)


class TestFleetString:
    def test_empty_string_is_disabled(self):
        fleet = TenancyConfig.parse("")
        assert not fleet.enabled
        assert fleet.tenants == ()

    def test_fleet_with_fair_depth(self):
        fleet = TenancyConfig.parse(
            "home=gru4rec:3,slo=60;search=narm:1,slo=120;"
            "mirror=gru4rec:0.1,shadow;fair=16"
        )
        assert fleet.enabled
        assert [t.name for t in fleet.tenants] == ["home", "search", "mirror"]
        assert [t.name for t in fleet.primaries] == ["home", "search"]
        assert [t.name for t in fleet.shadows] == ["mirror"]
        assert fleet.fair_depth == 16
        assert fleet.models() == ("gru4rec", "narm")

    def test_fleet_round_trips(self):
        text = (
            "home=gru4rec:3,slo=60;search=narm:1,slo=120,canary=0.1;"
            "mirror=gru4rec:0.1,shadow;fair=16"
        )
        fleet = TenancyConfig.parse(text)
        assert TenancyConfig.parse(fleet.spec_string()) == fleet
        # The default fair depth is omitted from the canonical string.
        assert "fair" not in TenancyConfig.parse("a=stamp:1").spec_string()
        assert TenancyConfig.parse("a=stamp:1").fair_depth == DEFAULT_FAIR_DEPTH

    @pytest.mark.parametrize(
        "text",
        [
            "home=gru4rec:3;home=narm:1",  # duplicate names
            "mirror=gru4rec:0.1,shadow",  # no primary tenant
            "home=gru4rec:3;fair=lots",  # fair depth not an integer
            "home=gru4rec:3;fair=0",
            "home=gru4rec:3;turbo=9",  # unknown fleet option
        ],
    )
    def test_invalid_fleets_raise(self, text):
        with pytest.raises(ValueError):
            TenancyConfig.parse(text)

    def test_entitlements_normalize_over_primaries(self):
        fleet = TenancyConfig.parse(
            "a=stamp:3;b=stamp:1;m=stamp:0.5,shadow"
        )
        assert fleet.entitlement("a") == pytest.approx(0.75)
        assert fleet.entitlement("b") == pytest.approx(0.25)
        assert fleet.entitlement("m") == 0.0  # shadow work is best-effort

    def test_burst_scales_offered_not_entitled(self):
        fleet = TenancyConfig.parse("a=stamp:1,burst=4;b=stamp:1")
        assert fleet.entitlement("a") == pytest.approx(0.5)
        assert fleet.traffic_weight("a") == pytest.approx(4.0)
        assert fleet.traffic_weight("b") == pytest.approx(1.0)

    def test_describe_names_every_tenant(self):
        fleet = TenancyConfig.parse("a=stamp:3,slo=60;m=stamp:0.1,shadow")
        text = fleet.describe()
        assert "a(stamp, 3, slo 60ms)" in text
        assert "shadow 0.1" in text
