"""Algorithm 1: synthetic session generation."""

import numpy as np
import pytest

from repro.workload import (
    SyntheticWorkloadGenerator,
    WorkloadStatistics,
    generate_synthetic_sessions,
)


def stats(catalog=10_000, alpha_l=1.85, alpha_c=1.35):
    return WorkloadStatistics(
        catalog_size=catalog, alpha_length=alpha_l, alpha_clicks=alpha_c
    )


class TestGenerateClicks:
    def test_generates_at_least_n_whole_sessions(self):
        log = SyntheticWorkloadGenerator(stats()).generate_clicks(10_000)
        assert len(log) >= 10_000
        # Whole sessions only: the last session is complete.
        lengths = log.session_lengths()
        assert lengths.sum() == len(log)

    def test_item_ids_within_catalog(self):
        log = SyntheticWorkloadGenerator(stats(catalog=500)).generate_clicks(5_000)
        assert log.item_ids.min() >= 0
        assert log.item_ids.max() < 500

    def test_session_ids_contiguous(self):
        log = SyntheticWorkloadGenerator(stats()).generate_clicks(2_000)
        unique = np.unique(log.session_ids)
        np.testing.assert_array_equal(unique, np.arange(unique.shape[0]))

    def test_deterministic_given_seed(self):
        a = SyntheticWorkloadGenerator(stats(), seed=9).generate_clicks(1_000)
        b = SyntheticWorkloadGenerator(stats(), seed=9).generate_clicks(1_000)
        np.testing.assert_array_equal(a.item_ids, b.item_ids)
        np.testing.assert_array_equal(a.session_ids, b.session_ids)

    def test_different_seeds_differ(self):
        a = SyntheticWorkloadGenerator(stats(), seed=1).generate_clicks(1_000)
        b = SyntheticWorkloadGenerator(stats(), seed=2).generate_clicks(1_000)
        assert not np.array_equal(a.item_ids, b.item_ids)

    def test_lengths_bounded_by_max(self):
        statistics = WorkloadStatistics(
            catalog_size=1_000, alpha_length=1.5, alpha_clicks=1.35,
            max_session_length=20,
        )
        log = SyntheticWorkloadGenerator(statistics).generate_clicks(20_000)
        assert log.session_lengths().max() <= 20


class TestMarginalFidelity:
    def test_session_length_marginal_is_power_law_like(self):
        """Heavy tail: single-click sessions dominate, long tail present."""
        log = SyntheticWorkloadGenerator(stats()).generate_clicks(100_000)
        lengths = log.session_lengths()
        counts = np.bincount(lengths)
        assert counts[1] > counts[2] > counts[4]
        assert lengths.max() > 20

    def test_click_popularity_is_skewed(self):
        log = SyntheticWorkloadGenerator(stats(catalog=2_000)).generate_clicks(100_000)
        counts = np.sort(log.click_counts(2_000))[::-1]
        top_share = counts[:200].sum() / counts.sum()
        assert top_share > 0.3  # top 10% of items draw >30% of clicks


class TestStreaming:
    def test_iter_sessions_is_endless_and_bounded(self):
        gen = SyntheticWorkloadGenerator(stats())
        iterator = gen.iter_sessions()
        sessions = [next(iterator) for _ in range(10_000)]
        assert all(1 <= len(s) <= 80 for s in sessions)

    def test_streamed_items_in_catalog(self):
        gen = SyntheticWorkloadGenerator(stats(catalog=50))
        iterator = gen.iter_sessions()
        for _ in range(100):
            session = next(iterator)
            assert session.max() < 50


class TestFunctionalEntrypoint:
    def test_paper_signature(self):
        log = generate_synthetic_sessions(
            catalog_size=1_000, num_clicks=5_000, alpha_length=1.85, alpha_clicks=1.35
        )
        assert len(log) >= 5_000

    def test_exponents_must_exceed_one(self):
        with pytest.raises(ValueError):
            generate_synthetic_sessions(1_000, 100, alpha_length=0.9, alpha_clicks=1.35)
