"""Synthetic-workload statistical validation."""

import numpy as np
import pytest

from repro.workload import (
    SyntheticWorkloadGenerator,
    WorkloadStatistics,
    synthesize_real_clicklog,
    validate_synthetic,
)
from repro.workload.validation import (
    popularity_curve,
    popularity_l1,
    session_length_ks,
)

CATALOG = 5_000


@pytest.fixture(scope="module")
def reference():
    return synthesize_real_clicklog(CATALOG, 60_000, seed=8)


@pytest.fixture(scope="module")
def fitted_synthetic(reference):
    fitted = WorkloadStatistics.from_clicklog(reference, CATALOG)
    return SyntheticWorkloadGenerator(fitted, seed=9).generate_clicks(60_000)


class TestPrimitives:
    def test_identical_logs_ks_zero(self, reference):
        assert session_length_ks(reference, reference) == 0.0

    def test_popularity_curve_monotone_to_one(self, reference):
        curve = popularity_curve(reference, CATALOG)
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == pytest.approx(1.0)

    def test_identical_logs_popularity_zero(self, reference):
        assert popularity_l1(reference, reference, CATALOG) == 0.0

    def test_empty_log_rejected(self):
        from repro.workload import ClickLog

        empty = ClickLog(
            session_ids=np.array([], dtype=np.int64),
            item_ids=np.array([], dtype=np.int64),
            steps=np.array([], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            popularity_curve(empty, CATALOG)


class TestValidation:
    def test_fitted_synthetic_accepted(self, reference, fitted_synthetic):
        """The paper's workflow produces an acceptable synthetic log."""
        report = validate_synthetic(reference, fitted_synthetic, CATALOG)
        assert report.session_length_ks < 0.15, report.summary()
        assert report.acceptable, report.summary()

    def test_mismatched_workload_rejected(self, reference):
        """Deliberately wrong exponents: the report must flag it."""
        wrong = WorkloadStatistics(
            catalog_size=CATALOG, alpha_length=3.5, alpha_clicks=3.5
        )
        mismatched = SyntheticWorkloadGenerator(wrong, seed=10).generate_clicks(60_000)
        report = validate_synthetic(reference, mismatched, CATALOG)
        assert not report.acceptable, report.summary()

    def test_summary_mentions_verdict(self, reference, fitted_synthetic):
        report = validate_synthetic(reference, fitted_synthetic, CATALOG)
        assert "ACCEPT" in report.summary()
