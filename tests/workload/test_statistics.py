"""Power-law exponent fitting and the workload-statistics roundtrip."""

import numpy as np
import pytest

from repro.workload import (
    ClickLog,
    SyntheticWorkloadGenerator,
    WorkloadStatistics,
    synthesize_real_clicklog,
)
from repro.workload.powerlaw import BoundedPowerLaw
from repro.workload.statistics import fit_power_law_exponent


class TestExponentFitting:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(0)
        for alpha in (1.5, 2.0, 2.5):
            samples = BoundedPowerLaw(alpha, x_min=1, x_max=100_000).sample(
                200_000, rng
            )
            fitted = fit_power_law_exponent(samples, x_min=1)
            assert fitted == pytest.approx(alpha, rel=0.06)

    def test_rejects_empty_tail(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent(np.array([1, 2, 3]), x_min=10)

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent(np.ones(100) * 0.5, x_min=1)


class TestWorkloadStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadStatistics(catalog_size=0, alpha_length=2.0, alpha_clicks=2.0)
        with pytest.raises(ValueError):
            WorkloadStatistics(catalog_size=10, alpha_length=1.0, alpha_clicks=2.0)

    def test_from_clicklog(self):
        log = synthesize_real_clicklog(5_000, 50_000, seed=1)
        statistics = WorkloadStatistics.from_clicklog(log, 5_000)
        assert 1.0 < statistics.alpha_length < 4.0
        assert 1.0 < statistics.alpha_clicks < 4.0

    def test_bol_like_presets(self):
        statistics = WorkloadStatistics.bol_like(1_000_000)
        assert statistics.catalog_size == 1_000_000


class TestEstimateOnceReuseLater:
    def test_fit_then_regenerate_preserves_marginal_shape(self):
        """The paper's workflow: estimate exponents from a real log once,
        then generate synthetic sessions with similar marginals."""
        real = synthesize_real_clicklog(10_000, 100_000, seed=3)
        fitted = WorkloadStatistics.from_clicklog(real, 10_000)
        synthetic = SyntheticWorkloadGenerator(fitted, seed=4).generate_clicks(100_000)

        real_lengths = real.session_lengths()
        synthetic_lengths = synthetic.session_lengths()
        # Means within 2x and both heavy-tailed.
        ratio = synthetic_lengths.mean() / real_lengths.mean()
        assert 0.5 < ratio < 2.0
        # Popularity skew: Gini-like top-share comparison.
        real_counts = np.sort(real.click_counts(10_000))[::-1]
        synthetic_counts = np.sort(synthetic.click_counts(10_000))[::-1]
        real_top = real_counts[:1_000].sum() / real_counts.sum()
        synthetic_top = synthetic_counts[:1_000].sum() / synthetic_counts.sum()
        assert abs(real_top - synthetic_top) < 0.35


class TestClickLog:
    def test_from_sessions_roundtrip(self):
        sessions = [[1, 2, 3], [4], [5, 6]]
        log = ClickLog.from_sessions(sessions)
        assert len(log) == 6
        assert log.num_sessions == 3
        recovered = [items.tolist() for items in log.sessions()]
        assert recovered == sessions

    def test_parallel_array_validation(self):
        with pytest.raises(ValueError):
            ClickLog(
                session_ids=np.zeros(3, dtype=np.int64),
                item_ids=np.zeros(2, dtype=np.int64),
                steps=np.zeros(3, dtype=np.int64),
            )

    def test_click_counts_cover_catalog(self):
        log = ClickLog.from_sessions([[0, 0, 2]])
        np.testing.assert_array_equal(log.click_counts(4), [2, 0, 1, 0])

    def test_real_log_has_repeats(self):
        """The surrogate production log re-clicks items within sessions."""
        log = synthesize_real_clicklog(1_000, 20_000, seed=5, repeat_probability=0.4)
        repeats = sum(
            len(items) - len(set(items.tolist()))
            for items in log.sessions()
        )
        assert repeats > 0
