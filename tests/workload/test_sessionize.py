"""Sessionization of raw event streams."""

import numpy as np
import pytest

from repro.workload.sessionize import (
    DEFAULT_GAP_S,
    RawEvents,
    sessionize,
    synthesize_raw_events,
)


def events_of(rows):
    """rows: (visitor, timestamp, item) triples."""
    visitors, timestamps, items = zip(*rows)
    return RawEvents(
        visitor_ids=np.asarray(visitors, dtype=np.int64),
        timestamps=np.asarray(timestamps, dtype=np.float64),
        item_ids=np.asarray(items, dtype=np.int64),
    )


class TestSessionize:
    def test_gap_splits_sessions(self):
        events = events_of([
            (1, 0.0, 10),
            (1, 60.0, 11),
            (1, 60.0 + DEFAULT_GAP_S + 1, 12),  # long pause -> new session
        ])
        log = sessionize(events)
        assert log.num_sessions == 2
        sessions = log.sessions()
        np.testing.assert_array_equal(sessions[0], [10, 11])
        np.testing.assert_array_equal(sessions[1], [12])

    def test_visitor_change_splits(self):
        events = events_of([(1, 0.0, 10), (2, 1.0, 20)])
        log = sessionize(events)
        assert log.num_sessions == 2

    def test_events_sorted_per_visitor(self):
        """Out-of-order arrival must not break sessionization."""
        events = events_of([
            (1, 100.0, 11),
            (1, 0.0, 10),
            (2, 50.0, 20),
        ])
        log = sessionize(events, inactivity_gap_s=200.0)
        sessions = log.sessions()
        assert any(list(s) == [10, 11] for s in sessions)

    def test_custom_gap(self):
        events = events_of([(1, 0.0, 1), (1, 10.0, 2), (1, 25.0, 3)])
        assert sessionize(events, inactivity_gap_s=12.0).num_sessions == 2
        assert sessionize(events, inactivity_gap_s=30.0).num_sessions == 1

    def test_max_session_length_cap(self):
        events = events_of([(1, float(i), i) for i in range(10)])
        log = sessionize(events, inactivity_gap_s=100.0, max_session_length=4)
        lengths = log.session_lengths()
        assert lengths.max() <= 4
        assert lengths.sum() == 10

    def test_empty_stream(self):
        empty = RawEvents(
            visitor_ids=np.empty(0, dtype=np.int64),
            timestamps=np.empty(0, dtype=np.float64),
            item_ids=np.empty(0, dtype=np.int64),
        )
        assert len(sessionize(empty)) == 0

    def test_validation(self):
        events = events_of([(1, 0.0, 1)])
        with pytest.raises(ValueError):
            sessionize(events, inactivity_gap_s=0.0)
        with pytest.raises(ValueError):
            sessionize(events, max_session_length=0)
        with pytest.raises(ValueError):
            RawEvents(
                visitor_ids=np.zeros(2, dtype=np.int64),
                timestamps=np.zeros(1),
                item_ids=np.zeros(2, dtype=np.int64),
            )


class TestEndToEndPipeline:
    def test_raw_events_to_workload_statistics(self):
        """The full preprocessing path: raw events -> sessions -> fitted
        statistics -> Algorithm 1."""
        from repro.workload import SyntheticWorkloadGenerator, WorkloadStatistics

        catalog = 5_000
        raw = synthesize_raw_events(catalog, 40_000, num_visitors=2_000)
        log = sessionize(raw)
        assert 2_000 <= log.num_sessions <= 40_000
        lengths = log.session_lengths()
        assert lengths.mean() > 1.0  # visits actually group events

        statistics = WorkloadStatistics.from_clicklog(log, catalog)
        synthetic = SyntheticWorkloadGenerator(statistics, seed=2).generate_clicks(
            20_000
        )
        ratio = synthetic.session_lengths().mean() / lengths.mean()
        assert 0.4 < ratio < 2.5

    def test_surrogate_stream_properties(self):
        raw = synthesize_raw_events(1_000, 5_000, num_visitors=100)
        assert len(raw) == 5_000
        assert raw.item_ids.max() < 1_000
        # Timestamps are positive and visitors interleave.
        assert raw.timestamps.min() >= 0.0
        assert len(np.unique(raw.visitor_ids)) > 50
