"""Power-law samplers and the two-stage empirical CDF."""

import numpy as np
import pytest

from repro.workload.powerlaw import BoundedPowerLaw, EmpiricalCDF


class TestBoundedPowerLaw:
    def test_pmf_normalized(self):
        dist = BoundedPowerLaw(2.0, x_min=1, x_max=100)
        assert dist.pmf().sum() == pytest.approx(1.0)

    def test_pmf_decays_as_power(self):
        dist = BoundedPowerLaw(2.0, x_min=1, x_max=1000)
        pmf = dist.pmf()
        # P(2)/P(1) = 2^-2
        assert pmf[1] / pmf[0] == pytest.approx(0.25, rel=1e-6)

    def test_samples_within_support(self):
        dist = BoundedPowerLaw(1.5, x_min=2, x_max=50)
        samples = dist.sample(10_000, np.random.default_rng(0))
        assert samples.min() >= 2 and samples.max() <= 50

    def test_sample_distribution_matches_pmf(self):
        dist = BoundedPowerLaw(2.0, x_min=1, x_max=10)
        samples = dist.sample(200_000, np.random.default_rng(1))
        observed = np.bincount(samples, minlength=11)[1:] / 200_000
        np.testing.assert_allclose(observed, dist.pmf(), atol=0.01)

    def test_mean_matches_empirical(self):
        dist = BoundedPowerLaw(1.8, x_min=1, x_max=80)
        samples = dist.sample(100_000, np.random.default_rng(2))
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedPowerLaw(0.0)
        with pytest.raises(ValueError):
            BoundedPowerLaw(2.0, x_min=5, x_max=2)
        with pytest.raises(ValueError):
            BoundedPowerLaw(2.0, x_min=0)


class TestEmpiricalCDF:
    def test_proportional_sampling(self):
        counts = np.array([1.0, 3.0, 6.0])
        cdf = EmpiricalCDF(counts)
        draws = cdf.sample(100_000, np.random.default_rng(0))
        freq = np.bincount(draws, minlength=3) / 100_000
        np.testing.assert_allclose(freq, counts / counts.sum(), atol=0.01)

    def test_zero_count_items_never_drawn(self):
        counts = np.array([0.0, 5.0, 0.0, 5.0])
        draws = EmpiricalCDF(counts).sample(10_000, np.random.default_rng(1))
        assert set(np.unique(draws)) <= {1, 3}

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([]))
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([-1.0, 2.0]))

    def test_from_power_law_equivalent_marginals(self):
        """The direct construction matches explicit count sampling."""
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        dist = BoundedPowerLaw(1.5, x_min=1, x_max=100)
        explicit = EmpiricalCDF(dist.sample(50_000, rng_a).astype(np.float64))
        direct = EmpiricalCDF.from_power_law(dist, 50_000, rng_b)
        draws_a = explicit.sample(100_000, np.random.default_rng(4))
        draws_b = direct.sample(100_000, np.random.default_rng(4))
        # Item identities differ (exchangeable), but the popularity profile
        # must match: compare sorted per-item draw counts.
        pop_a = np.sort(np.bincount(draws_a, minlength=50_000))[::-1][:100]
        pop_b = np.sort(np.bincount(draws_b, minlength=50_000))[::-1][:100]
        np.testing.assert_allclose(pop_a, pop_b, rtol=0.25, atol=3)

    def test_len(self):
        assert len(EmpiricalCDF(np.ones(7))) == 7
