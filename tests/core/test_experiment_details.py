"""Experiment-runner details: repetition protocol, execution modes,
artifact naming."""

import pytest

from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.experiment import asdict_shallow


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=404)


class TestRepetitionProtocol:
    def test_three_runs_return_median_by_p90(self, runner):
        """'We execute each configuration three times and ignore the runs
        with the lowest and highest latencies.'"""
        spec = ExperimentSpec(
            model="stamp", catalog_size=10_000, target_rps=60,
            hardware=HardwareSpec("CPU", 1), duration_s=20.0,
        )
        singles = [
            runner.run(
                ExperimentSpec(**{**asdict_shallow(spec), "seed": spec.seed + i})
            )
            for i in range(3)
        ]
        median = runner.run_repeated(spec, repetitions=3)
        expected = sorted(singles, key=lambda r: r.p90_ms)[1]
        assert median.p90_ms == pytest.approx(expected.p90_ms)

    def test_single_repetition_shortcut(self, runner):
        spec = ExperimentSpec(
            model="stamp", catalog_size=10_000, target_rps=30,
            hardware=HardwareSpec("CPU", 1), duration_s=10.0,
        )
        assert runner.run_repeated(spec, repetitions=1).ok_requests > 0

    def test_invalid_repetitions(self, runner):
        spec = ExperimentSpec(
            model="stamp", catalog_size=10_000, target_rps=30,
        )
        with pytest.raises(ValueError):
            runner.run_repeated(spec, repetitions=0)


class TestExecutionModes:
    def test_onnx_mode_end_to_end(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="sasrec", catalog_size=10_000, target_rps=50,
                hardware=HardwareSpec("CPU", 1), duration_s=15.0,
                execution="onnx",
            )
        )
        assert result.execution_mode == "onnx"
        assert result.meets_slo(50.0)

    def test_lightsans_reports_fallback_mode(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="lightsans", catalog_size=10_000, target_rps=50,
                hardware=HardwareSpec("CPU", 1), duration_s=15.0,
                execution="jit",
            )
        )
        assert result.execution_mode == "jit-fallback-eager"


class TestArtifacts:
    def test_artifact_names_encode_configuration(self, runner):
        runner.run(
            ExperimentSpec(
                model="narm", catalog_size=10_000, target_rps=30,
                hardware=HardwareSpec("CPU", 1), duration_s=10.0,
            )
        )
        blobs = runner.infra.bucket.list_blobs("models/")
        assert any("narm-c10000-jit" in blob for blob in blobs)

    def test_artifact_loadable(self, runner):
        from repro.tensor.serialization import load_module_state

        runner.run(
            ExperimentSpec(
                model="stamp", catalog_size=10_000, target_rps=30,
                hardware=HardwareSpec("CPU", 1), duration_s=10.0,
            )
        )
        path = next(
            blob for blob in runner.infra.bucket.list_blobs("models/")
            if "stamp" in blob
        )
        payload, _transfer = runner.infra.bucket.download(path)
        state, metadata = load_module_state(payload)
        assert metadata["model"] == "stamp"
        assert "item_embedding.weight" in state
