"""The recommendation cache end to end: spec wiring, the disabled-path
determinism contract, singleflight coalescing on the GPU batch path,
hit correctness against the real model, and the measurable win on a
high-skew workload."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.hardware import CPU_E2, GPU_T4, LatencyModel
from repro.models import ModelConfig, create_model
from repro.serving import BatchingConfig, EtudeInferenceServer
from repro.serving.profiles import ActixProfile
from repro.serving.request import HTTP_OK, RecommendationRequest
from repro.simulation import Simulator
from repro.tensor.ops import CostRecord, CostTrace
from repro.workload.statistics import WorkloadStatistics


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=10_000, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=20.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def make_profile(device, fixed_bytes=1e6, item_bytes=1e5):
    trace = CostTrace()
    trace.append(
        CostRecord(op="linear", param_bytes=fixed_bytes, write_bytes=item_bytes)
    )
    return LatencyModel(device).profile(trace)


def make_request(request_id, session_items, now=0.0):
    return RecommendationRequest(
        request_id=request_id,
        session_id=request_id,
        session_items=np.asarray(session_items, dtype=np.int64),
        sent_at=now,
    )


class TestSpecWiring:
    def test_string_spec_coerces_to_config(self):
        s = spec(cache="lfu,capacity=512,window=4")
        assert isinstance(s.cache, CacheConfig)
        assert s.cache.policy == "lfu"
        assert s.cache.capacity == 512

    def test_specfile_round_trip(self):
        s = spec(cache="segmented,capacity=2048,ttl=30,remote=65536")
        document = spec_to_dict(s)
        assert isinstance(document["cache"], str)
        restored, _slo = spec_from_dict(document)
        assert restored.cache == s.cache

    def test_specfile_omits_unset_cache(self):
        assert "cache" not in spec_to_dict(spec())

    def test_plain_run_has_no_cache_section(self):
        result = ExperimentRunner(seed=22).run(spec(duration_s=10.0))
        assert result.cache is None


class TestDisabledCacheDeterminism:
    """A run with no cache and a run with a configured-but-zero-capacity
    cache must be bit-identical — latencies and recommendations — on both
    the CPU and the GPU path (same contract as admission/fallback)."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_zero_capacity_cache_is_bit_identical(self, instance):
        base = spec(hardware=HardwareSpec(instance, 1), duration_s=15.0)
        baseline = ExperimentRunner(seed=33).run(base)
        disabled = ExperimentRunner(seed=33).run(
            spec(
                hardware=HardwareSpec(instance, 1), duration_s=15.0,
                cache=CacheConfig(capacity=0, remote_capacity=0),
            )
        )
        assert self._fingerprint(disabled) == self._fingerprint(baseline)
        assert disabled.cache is None  # disabled cache reports nothing


class TestSingleflightCoalescing:
    """A burst of concurrent same-prefix requests costs ONE inference:
    the leader computes, the followers park on the flight and are served
    from its answer — and a GPU batch holds unique keys only."""

    def make_server(self, sim, device, batching=None, **config_overrides):
        config = CacheConfig(**{"capacity": 64, "window": 4, **config_overrides})
        return EtudeInferenceServer(
            sim, device, make_profile(device), np.random.default_rng(0),
            profile=ActixProfile(cache=config),
            batching=batching
            or BatchingConfig(max_batch_size=1, max_delay_s=0.0),
        )

    def test_one_inference_per_unique_key_under_gpu_burst(self):
        sim = Simulator()
        server = self.make_server(
            sim, GPU_T4.device,
            batching=BatchingConfig(max_batch_size=64, max_delay_s=0.002),
        )
        prefixes = ([1, 2, 3], [4, 5, 6], [7, 8, 9])
        responses = []
        for index in range(12):  # 4 copies of each of the 3 prefixes
            request = make_request(index, prefixes[index % 3])
            server.submit(request, responses.append)
        sim.run()
        assert len(responses) == 12
        assert all(r.status == HTTP_OK for r in responses)
        # Exactly one leader per unique key reached the GPU.
        assert server.cache.misses == 3
        assert server.cache.coalesced == 9
        assert server.cache.fills == 3
        leaders = [r for r in responses if not r.cache_hit]
        followers = [r for r in responses if r.cache_hit]
        assert len(leaders) == 3 and len(followers) == 9
        # The three leaders shared one batch of unique keys.
        assert all(r.batch_size == 3 for r in leaders)
        # Followers never ran inference.
        assert all(r.inference_s == 0.0 for r in followers)

    def test_followers_get_the_leaders_answer(self):
        model = create_model("stamp", ModelConfig.for_catalog(500, top_k=5))
        sim = Simulator()
        server = EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0), model=model,
            profile=ActixProfile(cache=CacheConfig(capacity=64, window=4)),
        )
        responses = []
        for index in range(5):
            server.submit(make_request(index, [1, 2, 3]), responses.append)
        sim.run()
        assert len(responses) == 5
        expected = model.recommend([1, 2, 3])
        for response in responses:
            np.testing.assert_array_equal(response.items, expected)


class TestHitCorrectness:
    """A hit returns exactly what the model would compute for that prefix
    at the current artifact version; a redeploy invalidates."""

    def make_server(self, sim, model, version="v1"):
        return EtudeInferenceServer(
            sim, CPU_E2.device, make_profile(CPU_E2.device),
            np.random.default_rng(0), model=model,
            profile=ActixProfile(cache=CacheConfig(capacity=64, window=8)),
            artifact_version=version,
        )

    def test_hit_matches_model_output(self):
        model = create_model("stamp", ModelConfig.for_catalog(500, top_k=5))
        sim = Simulator()
        server = self.make_server(sim, model)
        responses = []

        def driver():
            server.submit(make_request(0, [1, 2, 3], sim.now), responses.append)
            yield 1.0  # first answer computed and cached by now
            server.submit(make_request(1, [1, 2, 3], sim.now), responses.append)

        sim.spawn(driver())
        sim.run()
        miss, hit = responses
        assert not miss.cache_hit and hit.cache_hit
        assert hit.inference_s == 0.0
        np.testing.assert_array_equal(hit.items, miss.items)
        np.testing.assert_array_equal(hit.items, model.recommend([1, 2, 3]))
        assert hit.latency_s < miss.latency_s

    def test_window_scopes_the_prefix(self):
        """Sessions differing only beyond the window share an entry."""
        model = create_model("stamp", ModelConfig.for_catalog(500, top_k=5))
        sim = Simulator()
        server = self.make_server(sim, model)
        server.cache.keyer.window = 2
        responses = []

        def driver():
            server.submit(make_request(0, [9, 9, 1, 2], sim.now), responses.append)
            yield 1.0
            server.submit(make_request(1, [7, 7, 1, 2], sim.now), responses.append)

        sim.spawn(driver())
        sim.run()
        assert responses[1].cache_hit  # same last-2 clicks -> same key

    def test_redeploy_invalidates_entries(self):
        model = create_model("stamp", ModelConfig.for_catalog(500, top_k=5))
        sim = Simulator()
        server = self.make_server(sim, model, version="models/v1.pt")
        responses = []

        def driver():
            server.submit(make_request(0, [1, 2, 3], sim.now), responses.append)
            yield 1.0
            server.cache.set_version("models/v2.pt")  # redeploy
            server.submit(make_request(1, [1, 2, 3], sim.now), responses.append)

        sim.spawn(driver())
        sim.run()
        assert not responses[1].cache_hit  # stale entry no longer reachable
        assert server.cache.misses == 2


class TestMeasurableWin:
    """On a high-skew click distribution, cache-on beats cache-off."""

    SKEWED = WorkloadStatistics(
        catalog_size=5_000, alpha_length=1.85, alpha_clicks=1.85
    )

    def _run(self, cache):
        return ExperimentRunner(seed=17).run(
            spec(
                catalog_size=5_000, target_rps=120, duration_s=25.0,
                workload=self.SKEWED, cache=cache,
            )
        )

    @pytest.fixture(scope="class")
    def cache_off(self):
        return self._run(None)

    @pytest.fixture(scope="class")
    def cache_on(self):
        return self._run(CacheConfig(capacity=4096, window=2, ttl_s=0.0))

    def test_cache_reports_real_hits(self, cache_on):
        section = cache_on.cache
        assert section is not None
        assert section["hit_rate"] > 0.2
        assert section["fills"] == section["misses"]

    def test_hits_are_faster_than_misses(self, cache_on):
        assert cache_on.cache["p90_hit_ms"] < cache_on.cache["p90_miss_ms"]

    def test_p90_improves(self, cache_off, cache_on):
        assert cache_on.p90_ms <= cache_off.p90_ms
        assert cache_on.error_requests == 0


class TestPlannerCacheSeed:
    def test_expected_hit_rate_positive_with_cache(self):
        from repro.core import SLO, DeploymentPlanner
        from repro.core.spec import Scenario

        scenario = Scenario("g", 10_000, 200)
        cached = DeploymentPlanner(
            runner=ExperimentRunner(seed=11),
            cache=CacheConfig(capacity=16384, window=2),
        )
        plain = DeploymentPlanner(runner=ExperimentRunner(seed=11))
        assert plain.expected_hit_rate(scenario) == 0.0
        rate = cached.expected_hit_rate(scenario)
        assert 0.0 < rate < 1.0
        # The cache can only shrink the analytic replica seed.
        assert cached.estimate_replicas(
            "stamp", scenario, CPU_E2
        ) <= plain.estimate_replicas("stamp", scenario, CPU_E2)
