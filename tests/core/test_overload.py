"""Overload protection end to end: spec wiring, the disabled-path
determinism contract, collapse-vs-degrade under sustained overload, and
the circuit breaker under crash-storm chaos."""

import pytest

from repro.cluster import RoutingPolicy
from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.infra_test import run_infra_test
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.serving import AdmissionPolicy, FallbackConfig


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=10_000, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=20.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecWiring:
    def test_string_specs_coerce_to_objects(self):
        s = spec(
            slo_deadline_s=0.05,
            admission="codel,slack=0.01",
            routing="lor,eject=3",
            fallback="budget=0.001",
        )
        assert isinstance(s.admission, AdmissionPolicy)
        assert s.admission.discipline == "codel"
        assert isinstance(s.routing, RoutingPolicy)
        assert s.routing.eject_after == 3
        assert isinstance(s.fallback, FallbackConfig)
        assert s.fallback.budget_s == 0.001

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            spec(slo_deadline_s=0.0)

    def test_specfile_round_trip(self):
        s = spec(
            slo_deadline_s=0.05,
            admission="lifo,slack=0.005,depth=128",
            routing="rr,eject=5,cooldown=30,lag=2",
            fallback="budget=0.003,topk=10",
        )
        document = spec_to_dict(s)
        assert document["slo_deadline_s"] == 0.05
        assert isinstance(document["admission"], str)
        restored, _slo = spec_from_dict(document)
        assert restored.slo_deadline_s == s.slo_deadline_s
        assert restored.admission == s.admission
        assert restored.routing == s.routing
        assert restored.fallback == s.fallback

    def test_specfile_omits_unset_overload(self):
        document = spec_to_dict(spec())
        for key in ("slo_deadline_s", "admission", "routing", "fallback"):
            assert key not in document

    def test_plain_run_has_no_overload_section(self):
        result = ExperimentRunner(seed=22).run(spec(duration_s=10.0))
        assert result.overload is None


class TestDisabledOverloadDeterminism:
    """Configured-but-idle overload protection must not perturb a run —
    the bit-identical contract, on both the CPU and the GPU path."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_idle_protection_is_bit_identical(self, instance):
        base = spec(hardware=HardwareSpec(instance, 1), duration_s=15.0)
        baseline = ExperimentRunner(seed=33).run(base)
        protected = ExperimentRunner(seed=33).run(
            spec(
                hardware=HardwareSpec(instance, 1), duration_s=15.0,
                # Far-away deadline: everything stays viable, nothing sheds,
                # no pod ever fails, so every mechanism stays idle.
                slo_deadline_s=30.0,
                admission=AdmissionPolicy(discipline="codel", slack_s=0.01),
                routing=RoutingPolicy(eject_after=5, endpoint_lag_s=3.0),
                fallback=FallbackConfig(),
            )
        )
        assert self._fingerprint(protected) == self._fingerprint(baseline)
        section = protected.overload
        assert section is not None
        assert section["shed_deadline"] == 0
        assert section["shed_codel"] == 0
        assert section["degraded_served"] == 0
        assert section["degraded_fraction"] == 0.0
        assert section["ejections"] == 0


class TestCollapseVersusDegrade:
    """The headline scenario: 3x-capacity overload on the Figure 2 server.

    Without protection the latency is unbounded (the queue just grows);
    with a deadline + fallback, >= 99% of requests get a 200 within the
    SLO and the rest of the truth shows up as the degraded fraction."""

    SLO_S = 0.05
    RPS = 8_000
    DURATION_S = 15.0

    @pytest.fixture(scope="class")
    def collapse(self):
        return run_infra_test(
            "actix", target_rps=self.RPS, duration_s=self.DURATION_S, seed=7
        )

    @pytest.fixture(scope="class")
    def degrade(self):
        return run_infra_test(
            "actix", target_rps=self.RPS, duration_s=self.DURATION_S, seed=7,
            slo_deadline_s=self.SLO_S,
            admission=AdmissionPolicy(slack_s=0.01),
            fallback=FallbackConfig(),
        )

    def test_unprotected_server_collapses(self, collapse):
        assert collapse.p90_ms > self.SLO_S * 1000.0 * 10  # way past the SLO
        assert collapse.overload is None

    def test_protection_keeps_the_slo(self, collapse, degrade):
        # >= 99% of requests answered 200 within the SLO: here it is 100%
        # of them — zero errors and p99 under the deadline.
        assert degrade.errors == 0
        assert degrade.ok == degrade.total
        assert degrade.p99_ms <= self.SLO_S * 1000.0
        assert degrade.p90_ms < collapse.p90_ms / 10

    def test_degraded_fraction_reported(self, degrade):
        section = degrade.overload
        assert section is not None
        assert section["shed_deadline"] > 0
        assert section["degraded_served"] == section["shed_deadline"] + section["shed_codel"]
        assert 0.0 < section["degraded_fraction"] < 1.0
        assert section["p90_full_ms"] is not None
        assert section["p90_degraded_ms"] is not None


class TestCircuitBreakerUnderChaos:
    """Crash-storm chaos with a laggy endpoint view: passive ejection must
    beat the no-ejection baseline, and probes must re-admit recovered pods."""

    def _spec(self, routing):
        return spec(
            target_rps=60,
            hardware=HardwareSpec("CPU", 3),
            duration_s=45.0,
            chaos="storm@10:count=2:stagger=0.5:restart=8",
            routing=routing,
        )

    @pytest.fixture(scope="class")
    def no_ejection(self):
        return ExperimentRunner(seed=11).run(self._spec("rr,lag=6"))

    @pytest.fixture(scope="class")
    def with_ejection(self):
        return ExperimentRunner(seed=11).run(
            self._spec("rr,eject=3,cooldown=2,lag=6")
        )

    def test_ejection_beats_the_baseline(self, no_ejection, with_ejection):
        assert no_ejection.error_requests > 0  # the lag window really hurt
        assert with_ejection.error_rate < no_ejection.error_rate
        assert with_ejection.overload["ejections"] >= 2  # both stormed pods

    def test_recovered_pods_re_enter_via_half_open_probes(self, with_ejection):
        assert with_ejection.overload["probe_recoveries"] >= 1
        # Re-entry actually restored capacity: the run ends healthy.
        tail_ok = with_ejection.series.ok[-5:]
        tail_err = with_ejection.series.errors[-5:]
        assert sum(tail_ok) > 0
        assert sum(tail_err) == 0

    def test_ejection_counters_and_spans_recorded(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        result = ExperimentRunner(seed=11).run(
            self._spec("rr,eject=3,cooldown=2,lag=6"), telemetry=telemetry
        )
        counter = telemetry.metrics.get("pod_ejected_total")
        assert counter is not None
        assert counter.value == result.overload["ejections"]
        ejection_spans = telemetry.trace.find("pod_ejected")
        assert len(ejection_spans) == result.overload["ejections"]
        assert all(span.trace_id < 0 for span in ejection_spans)
        recovery_spans = telemetry.trace.find("pod_recovered")
        assert len(recovery_spans) == result.overload["probe_recoveries"]
