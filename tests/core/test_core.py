"""Core ETUDE: specs, registry, experiment runner, microbench, infra test."""

import numpy as np
import pytest

from repro.core import (
    SCENARIOS,
    SLO,
    AssetRegistry,
    ExperimentRunner,
    ExperimentSpec,
    HardwareSpec,
    run_infra_test,
    scenario_by_name,
    serial_microbenchmark,
)
from repro.hardware import CPU_E2, GPU_T4


class TestSpecs:
    def test_table1_scenarios(self):
        assert len(SCENARIOS) == 5
        platform = scenario_by_name("Platform")
        assert platform.catalog_size == 20_000_000
        assert platform.target_rps == 1_000
        groceries = scenario_by_name("groceries (small)")
        assert groceries.catalog_size == 10_000

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_by_name("metaverse")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(model="stamp", catalog_size=0, target_rps=10)
        with pytest.raises(ValueError):
            ExperimentSpec(
                model="stamp", catalog_size=10, target_rps=10, execution="tensorrt"
            )
        with pytest.raises(ValueError):
            HardwareSpec(replicas=0)

    def test_with_hardware(self):
        spec = ExperimentSpec(model="stamp", catalog_size=100, target_rps=10)
        new = spec.with_hardware("GPU-T4", 3)
        assert new.hardware.replicas == 3
        assert spec.hardware.replicas == 1

    def test_default_workload_statistics(self):
        spec = ExperimentSpec(model="stamp", catalog_size=123, target_rps=10)
        assert spec.workload_statistics().catalog_size == 123


class TestAssetRegistry:
    def test_models_are_cached(self):
        registry = AssetRegistry()
        a = registry.model("stamp", 1000)
        b = registry.model("stamp", 1000)
        assert a is b

    def test_profiles_differ_per_device(self):
        registry = AssetRegistry()
        cpu = registry.profile("stamp", 100_000, CPU_E2.device, "jit")
        gpu = registry.profile("stamp", 100_000, GPU_T4.device, "jit")
        assert cpu.latency(1) > gpu.latency(1)

    def test_jit_reduces_or_keeps_profile_cost(self):
        registry = AssetRegistry()
        eager = registry.profile("sasrec", 10_000, CPU_E2.device, "eager")
        jit = registry.profile("sasrec", 10_000, CPU_E2.device, "jit")
        assert jit.latency(1) <= eager.latency(1)

    def test_lightsans_falls_back_to_eager(self):
        registry = AssetRegistry()
        assets = registry.assets("lightsans", 10_000, CPU_E2.device, "jit")
        assert assets.jit_failed
        assert assets.execution_effective == "eager"
        assert assets.jit_fell_back

    def test_unknown_model_raises(self):
        registry = AssetRegistry()
        with pytest.raises(KeyError):
            registry.model("bert4rec", 1000)


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(seed=99)

    def test_small_run_succeeds(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="stamp", catalog_size=10_000, target_rps=100,
                hardware=HardwareSpec("CPU", 1), duration_s=30.0,
            )
        )
        assert result.ok_requests > 1_000
        assert result.error_requests == 0
        assert result.p90_at_target_ms is not None
        assert result.meets_slo(50.0)

    def test_results_persisted_to_bucket(self, runner):
        runner.run(
            ExperimentSpec(
                model="stamp", catalog_size=10_000, target_rps=50,
                hardware=HardwareSpec("CPU", 1), duration_s=20.0,
            )
        )
        assert runner.infra.bucket.list_blobs("results/")

    def test_artifact_uploaded_once(self, runner):
        spec = ExperimentSpec(
            model="narm", catalog_size=10_000, target_rps=50,
            hardware=HardwareSpec("CPU", 1), duration_s=15.0,
        )
        runner.run(spec)
        first = runner.infra.bucket.list_blobs("models/")
        runner.run(spec)
        assert runner.infra.bucket.list_blobs("models/") == first

    def test_deterministic_given_seed(self):
        def run_once():
            runner = ExperimentRunner(seed=7)
            return runner.run(
                ExperimentSpec(
                    model="stamp", catalog_size=10_000, target_rps=80,
                    hardware=HardwareSpec("CPU", 1), duration_s=20.0,
                )
            )

        a, b = run_once(), run_once()
        assert a.ok_requests == b.ok_requests
        assert a.p90_ms == pytest.approx(b.p90_ms)

    def test_run_repeated_returns_median(self, runner):
        spec = ExperimentSpec(
            model="stamp", catalog_size=10_000, target_rps=50,
            hardware=HardwareSpec("CPU", 1), duration_s=15.0,
        )
        result = runner.run_repeated(spec, repetitions=3)
        assert result.ok_requests > 0

    def test_overloaded_cpu_triggers_backpressure(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="core", catalog_size=1_000_000, target_rps=500,
                hardware=HardwareSpec("CPU", 1), duration_s=40.0,
            )
        )
        assert result.backpressure_stalls > 0
        assert not result.meets_slo(50.0)


class TestMicrobench:
    def test_gpu_beats_cpu_at_one_million(self):
        cpu = serial_microbenchmark("gru4rec", 1_000_000, CPU_E2, num_requests=50)
        gpu = serial_microbenchmark("gru4rec", 1_000_000, GPU_T4, num_requests=50)
        assert cpu.p90_ms > 10 * gpu.p90_ms

    def test_latency_scales_with_catalog(self):
        small = serial_microbenchmark("stamp", 10_000, CPU_E2, num_requests=50)
        large = serial_microbenchmark("stamp", 1_000_000, CPU_E2, num_requests=50)
        assert large.p90_ms > 20 * small.p90_ms

    def test_lightsans_reports_jit_failure(self):
        result = serial_microbenchmark(
            "lightsans", 10_000, CPU_E2, "jit", num_requests=20
        )
        assert result.jit_failed
        assert result.execution_effective == "eager"


class TestInfraTest:
    def test_actix_handles_the_load(self):
        result = run_infra_test("actix", target_rps=500, duration_s=60)
        assert result.errors == 0
        assert result.p90_ms < 5.0

    def test_torchserve_fails_the_load(self):
        result = run_infra_test("torchserve", target_rps=1000, duration_s=60)
        assert result.error_rate > 0.05
        assert result.p90_ms > 50.0

    def test_unknown_server_kind(self):
        with pytest.raises(ValueError):
            run_infra_test("flask")
