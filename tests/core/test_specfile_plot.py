"""Declarative spec files and ASCII plotting."""

import json

import pytest

from repro.core.ascii_plot import plot_latency_curve, plot_series, sparkline
from repro.core.spec import ExperimentSpec, HardwareSpec, SLO
from repro.core.specfile import load_spec_file, spec_from_dict, spec_to_dict
from repro.metrics.results import LatencySeries


class TestSpecFromDict:
    def test_minimal_document(self):
        spec, slo = spec_from_dict(
            {"model": "stamp", "catalog_size": 1000, "target_rps": 50}
        )
        assert spec.model == "stamp"
        assert spec.hardware.instance_type == "CPU"
        assert slo.p90_latency_ms == 50.0

    def test_full_document(self):
        spec, slo = spec_from_dict(
            {
                "model": "gru4rec",
                "catalog_size": 1_000_000,
                "target_rps": 500,
                "hardware": {"instance_type": "GPU-T4", "replicas": 2},
                "duration_s": 300,
                "execution": "onnx",
                "top_k": 10,
                "seed": 7,
                "workload": {"alpha_length": 2.0, "alpha_clicks": 1.4},
                "slo": {"p90_latency_ms": 30, "max_error_rate": 0.0},
            }
        )
        assert spec.hardware.replicas == 2
        assert spec.execution == "onnx"
        assert spec.workload.alpha_length == 2.0
        assert spec.workload.catalog_size == 1_000_000  # inherited
        assert slo.p90_latency_ms == 30.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            spec_from_dict(
                {"model": "stamp", "catalog_size": 10, "target_rps": 1, "gpu": True}
            )

    def test_missing_required_rejected(self):
        with pytest.raises(ValueError):
            spec_from_dict({"model": "stamp", "catalog_size": 10})

    def test_roundtrip(self):
        original = ExperimentSpec(
            model="narm", catalog_size=500, target_rps=20,
            hardware=HardwareSpec("GPU-A100", 3), duration_s=42.0,
        )
        document = spec_to_dict(original, SLO(p90_latency_ms=25))
        restored, slo = spec_from_dict(document)
        assert restored.model == original.model
        assert restored.hardware == original.hardware
        assert restored.duration_s == original.duration_s
        assert slo.p90_latency_ms == 25.0


class TestSpecFile:
    def test_single_and_list(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(
            json.dumps({"model": "stamp", "catalog_size": 10, "target_rps": 1})
        )
        assert len(load_spec_file(str(single))) == 1

        many = tmp_path / "many.json"
        many.write_text(
            json.dumps(
                [
                    {"model": "stamp", "catalog_size": 10, "target_rps": 1},
                    {"model": "narm", "catalog_size": 10, "target_rps": 1},
                ]
            )
        )
        specs = load_spec_file(str(many))
        assert [s.model for s, _slo in specs] == ["stamp", "narm"]

    def test_empty_rejected(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(ValueError):
            load_spec_file(str(empty))


class TestAsciiPlot:
    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0, None, 1.0])
        assert len(line) == 5
        assert line[3] == " "
        assert line[2] == "█"

    def test_sparkline_empty(self):
        assert sparkline([None, None]) == ""

    def test_plot_series_contains_markers(self):
        text = plot_series([0, 1, 2, 3], [1.0, 2.0, 4.0, 8.0], width=20, height=6)
        assert "*" in text
        assert "+" in text  # the x axis

    def test_log_scale_ticks(self):
        text = plot_series(
            [0, 1, 2], [1.0, 100.0, 10000.0], width=20, height=8, log_y=True
        )
        assert "10000" in text

    def test_parallel_input_validation(self):
        with pytest.raises(ValueError):
            plot_series([1, 2], [1.0])

    def test_all_none_handled(self):
        assert plot_series([1, 2], [None, None]) == "(no data)"

    def test_latency_curve_wrapper(self):
        series = LatencySeries(
            seconds=[0, 1, 2], offered_rps=[10, 20, 30], ok=[10, 20, 30],
            errors=[0, 0, 0], p90_ms=[1.0, 2.0, 3.0], mean_batch=[1, 1, 1],
        )
        text = plot_latency_curve(series, title="demo")
        assert "--- demo" in text
        assert "offered load" in text
