"""The one-command reproduction report."""

import pytest

from repro.core.reproduce import ALL_ARTIFACTS, ReproduceConfig, reproduce


class TestConfig:
    def test_rejects_unknown_artifacts(self):
        with pytest.raises(ValueError):
            ReproduceConfig(artifacts=("fig2", "fig9"))

    def test_default_covers_everything(self):
        assert set(ReproduceConfig().artifacts) == set(ALL_ARTIFACTS)


class TestReport:
    def test_subset_report_structure(self):
        report = reproduce(
            ReproduceConfig(artifacts=("fig2", "alg1", "bugs"), duration_s=30.0)
        )
        assert report.startswith("# ETUDE reproduction report")
        assert "## Figure 2" in report
        assert "torchserve" in report and "actix" in report
        assert "M clicks/s" in report and "✓" in report
        assert "repeatnet" in report

    def test_fig3_section_renders_table(self):
        report = reproduce(
            ReproduceConfig(
                artifacts=("fig3",),
                micro_requests=20,
                catalog_sizes=(10_000,),
            )
        )
        assert "## Figure 3" in report
        assert "could not be JIT-compiled" in report

    def test_fig4_section_single_model(self):
        report = reproduce(
            ReproduceConfig(
                artifacts=("fig4",), duration_s=30.0, models=("stamp",)
            )
        )
        assert "## Figure 4" in report
        assert "| Fashion | GPU-T4 x1 | stamp |" in report
