"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["micro", "--model", "bert", "--catalog", "10"])


class TestModelsCommand:
    def test_lists_zoo_with_bug_flags(self):
        code, output = run_cli("models")
        assert code == 0
        assert "gru4rec" in output
        assert "repeatnet" in output and "performance bug" in output


class TestMicroCommand:
    def test_reports_percentiles(self):
        code, output = run_cli(
            "micro", "--model", "stamp", "--catalog", "10000",
            "--requests", "30",
        )
        assert code == 0
        assert "p90=" in output and "stamp" in output

    def test_jit_fallback_noted(self):
        code, output = run_cli(
            "micro", "--model", "lightsans", "--catalog", "10000",
            "--requests", "20",
        )
        assert code == 0
        assert "JIT failed" in output


class TestRunCommand:
    def test_exit_zero_when_slo_met(self):
        code, output = run_cli(
            "run", "--model", "stamp", "--catalog", "10000",
            "--rps", "50", "--duration", "20",
        )
        assert code == 0
        assert "meets p90<=50ms SLO: True" in output

    def test_exit_two_when_slo_missed(self):
        code, output = run_cli(
            "run", "--model", "core", "--catalog", "1000000",
            "--rps", "500", "--replicas", "1", "--duration", "30",
        )
        assert code == 2
        assert "False" in output


class TestInfraCommand:
    def test_actix_summary(self):
        code, output = run_cli(
            "infra-test", "--server", "actix", "--rps", "300", "--duration", "30"
        )
        assert code == 0
        assert "0 errors" in output


class TestWorkloadCommand:
    def test_stdout_head(self):
        code, output = run_cli(
            "workload", "--catalog", "1000", "--clicks", "500", "--head", "5"
        )
        assert code == 0
        assert output.startswith("session_id,item_id,step")
        assert "sessions" in output

    def test_csv_file(self, tmp_path):
        target = tmp_path / "clicks.csv"
        code, output = run_cli(
            "workload", "--catalog", "1000", "--clicks", "200",
            "--out", str(target),
        )
        assert code == 0
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "session_id,item_id,step"
        assert len(lines) >= 201


class TestPlanCommand:
    def test_small_scenario_plans(self):
        code, output = run_cli(
            "plan", "--catalog", "10000", "--rps", "50",
            "--models", "stamp", "--duration", "30", "--max-replicas", "2",
        )
        assert code == 0
        assert "stamp" in output and "$108" in output
