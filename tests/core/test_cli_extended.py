"""CLI: compare / reproduce / profile commands."""

import io

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompareCommand:
    def test_table_with_slo_column(self):
        code, output = run_cli(
            "compare", "--models", "stamp,gru4rec", "--catalog", "10000",
            "--rps", "50", "--duration", "20",
        )
        assert code == 0
        assert "stamp" in output and "gru4rec" in output
        assert "yes" in output


class TestProfileCommand:
    def test_breakdown_rows(self):
        code, output = run_cli(
            "profile", "--model", "srgnn", "--catalog", "100000",
            "--instance", "GPU-T4", "--rows", "6",
        )
        assert code == 0
        assert "[host]" in output
        assert "share" in output


class TestReproduceCommand:
    def test_subset_to_stdout(self):
        code, output = run_cli(
            "reproduce", "--artifacts", "alg1,bugs", "--duration", "20",
        )
        assert code == 0
        assert "# ETUDE reproduction report" in output
        assert "Algorithm 1" in output

    def test_write_to_file(self, tmp_path):
        target = tmp_path / "report.md"
        code, output = run_cli(
            "reproduce", "--artifacts", "bugs", "--out", str(target),
        )
        assert code == 0
        assert "wrote report" in output
        assert "RecBole" in target.read_text()
