"""Study helpers: model comparison, throughput sweeps, curves."""

import pytest

from repro.core import (
    ExperimentRunner,
    HardwareSpec,
    compare_models,
    latency_throughput_curve,
    saturation_point,
    throughput_sweep,
)
from repro.core.spec import ExperimentSpec


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=314)


class TestCompareModels:
    def test_same_deployment_all_models(self, runner):
        outcomes = compare_models(
            runner,
            ["stamp", "gru4rec"],
            catalog_size=10_000,
            target_rps=80,
            hardware=HardwareSpec("CPU", 1),
            duration_s=30.0,
        )
        assert set(outcomes) == {"stamp", "gru4rec"}
        for model, result in outcomes.items():
            assert result is not None and result.meets_slo(50.0), model

    def test_undeployable_model_is_none(self, runner):
        """A 20M-item model cannot be resident on a T4 at any batch size
        once its table exceeds device memory."""
        outcomes = compare_models(
            runner,
            ["gru4rec"],
            catalog_size=50_000_000,
            target_rps=10,
            hardware=HardwareSpec("GPU-T4", 1),
            duration_s=10.0,
        )
        assert outcomes["gru4rec"] is None


class TestThroughputSweep:
    def test_sweep_and_saturation(self, runner):
        sweep = throughput_sweep(
            runner,
            "core",
            catalog_size=1_000_000,
            hardware=HardwareSpec("CPU", 1),
            rps_points=(20, 60, 300),
            duration_s=40.0,
        )
        assert [target for target, _r in sweep] == [20, 60, 300]
        point = saturation_point(sweep, p90_limit_ms=50.0)
        # One CPU serves ~36ms CORE requests with 5 workers: 20 rps is
        # fine, 300 rps is far past saturation.
        assert point in (20, 60)
        assert not sweep[-1][1].meets_slo(50.0)

    def test_saturation_none_when_nothing_feasible(self, runner):
        sweep = throughput_sweep(
            runner,
            "repeatnet",
            catalog_size=1_000_000,
            hardware=HardwareSpec("CPU", 1),
            rps_points=(100,),
            duration_s=30.0,
        )
        assert saturation_point(sweep) is None


class TestCurveExtraction:
    def test_curve_from_ramp(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="stamp", catalog_size=10_000, target_rps=100,
                hardware=HardwareSpec("CPU", 1), duration_s=40.0,
            )
        )
        curve = latency_throughput_curve(result, buckets=8)
        assert len(curve) >= 8
        # The ramp grows monotonically except for the partial boundary
        # seconds at the start and end of the run.
        offered = [point.offered_rps for point in curve[1:-1]]
        assert offered == sorted(offered)
        assert any(point.p90_ms is not None for point in curve)

    def test_requires_series(self, runner):
        result = runner.run(
            ExperimentSpec(
                model="stamp", catalog_size=10_000, target_rps=50,
                hardware=HardwareSpec("CPU", 1), duration_s=20.0,
                collect_series=False,
            )
        )
        with pytest.raises(ValueError):
            latency_throughput_curve(result)
