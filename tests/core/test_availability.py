"""Failure domains end to end: the zones=1 determinism contract, the
availability section of a zoned run, the scripted failure drill, and the
planner's ``--survive-zones`` gate."""

import math

import pytest

from repro.core import DeploymentPlanner, ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.drill import run_failure_drill
from repro.core.spec import Scenario
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.hardware import CPU_E2


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=10_000, target_rps=40,
        hardware=HardwareSpec("CPU", 2), duration_s=15.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSingleZoneDeterminism:
    """zones=1 (the default) must leave every run untouched — the
    zone machinery draws no RNG and schedules no events when off."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_explicit_single_zone_is_bit_identical(self, instance):
        base = spec(hardware=HardwareSpec(instance, 2))
        baseline = ExperimentRunner(seed=33).run(base)
        single = ExperimentRunner(seed=33).run(spec(
            hardware=HardwareSpec(instance, 2), zones=1,
        ))
        assert self._fingerprint(single) == self._fingerprint(baseline)
        assert baseline.availability is None
        assert single.availability is None

    def test_specfile_round_trips_zones(self):
        zoned = spec(zones=3)
        document = spec_to_dict(zoned)
        assert document["zones"] == 3
        restored, _slo = spec_from_dict(document)
        assert restored.zones == 3
        # The default is omitted so old spec files stay byte-stable.
        assert "zones" not in spec_to_dict(spec())


class TestAvailabilitySection:
    def test_zoned_run_reports_spread_and_cross_zone_legs(self):
        result = ExperimentRunner(seed=21).run(spec(zones=2))
        availability = result.availability
        assert availability is not None
        assert availability["zones"] == 2
        assert availability["home_zone"] == "z0"
        assert availability["pods_per_zone"] == {"z0": 1, "z1": 1}
        # Half the traffic lands on the z1 replica; both directions of
        # each such request are charged and counted.
        assert availability["cross_zone_legs"] > 0
        assert availability["zone_outages"] == []
        assert availability["time_to_recovery_s"] is None

    def test_zone_outage_chaos_reports_recovery(self):
        result = ExperimentRunner(seed=21).run(spec(
            zones=2, duration_s=30.0, chaos="zone@5:name=z1:restart=5",
        ))
        availability = result.availability
        (outage,) = availability["zone_outages"]
        assert outage["zone"] == "z1"
        assert outage["pods_lost"] == 1
        assert outage["restart_after_s"] == 5.0
        # Readiness needs the restart delay plus artifact pull + load +
        # warmup, so TTR is strictly above the chaos knob.
        assert outage["time_to_recovery_s"] > 5.0
        assert availability["time_to_recovery_s"] == outage["time_to_recovery_s"]


class TestFailureDrill:
    """Acceptance drill: a zone-replicated sharded deployment rides
    through a full zone outage; the unreplicated one collapses."""

    @pytest.fixture(scope="class")
    def replicated(self):
        return run_failure_drill(
            spec(
                target_rps=80, duration_s=45.0, sharding=2, zones=2,
                hardware=HardwareSpec("CPU", 2), seed=7,
            ),
            outage_at_s=15.0,
            restart_after_s=10.0,
        )

    @pytest.fixture(scope="class")
    def unreplicated(self):
        return run_failure_drill(
            spec(
                target_rps=80, duration_s=45.0, sharding=2, zones=2,
                hardware=HardwareSpec("CPU", 1), seed=7,
            ),
            outage_at_s=15.0,
            restart_after_s=10.0,
        )

    def test_replicated_deployment_survives(self, replicated):
        assert replicated.survived
        assert replicated.during.ok_fraction >= 0.99
        # Every 200 through the outage still merged every shard's slice.
        assert replicated.min_coverage == 1.0

    def test_replicated_deployment_recovers(self, replicated):
        assert replicated.recovered
        ttr = replicated.time_to_recovery_s
        assert ttr is not None and math.isfinite(ttr)
        assert ttr > 10.0  # restart delay + pod boot, both real
        assert replicated.after.p90_ms is not None
        assert replicated.after.p90_ms <= replicated.before.p90_ms * 2

    def test_windows_partition_the_run(self, replicated):
        names = [w.name for w in (replicated.before, replicated.during,
                                  replicated.after)]
        assert names == ["before", "during", "after"]
        total = sum(w.seconds for w in (replicated.before,
                                        replicated.during, replicated.after))
        assert total == pytest.approx(45, abs=2)

    def test_report_serializes(self, replicated):
        document = replicated.to_dict()
        assert document["survived"] is True
        assert document["recovered"] is True
        assert [w["name"] for w in document["windows"]] == [
            "before", "during", "after",
        ]
        assert document["min_coverage"] == 1.0

    def test_unreplicated_deployment_collapses(self, unreplicated):
        assert not unreplicated.survived
        # The dead zone takes one whole shard with it: every merge during
        # the outage is missing half the catalog.
        assert unreplicated.min_coverage <= 0.5

    def test_drill_rejects_single_zone_specs(self):
        with pytest.raises(ValueError, match="zones >= 2"):
            run_failure_drill(spec())

    def test_drill_rejects_zones_down_at_or_above_zones(self):
        with pytest.raises(ValueError):
            run_failure_drill(spec(zones=2), zones_down=2)
        with pytest.raises(ValueError):
            run_failure_drill(spec(zones=2), zones_down=0)

    def test_drill_owns_the_failure_script(self):
        with pytest.raises(ValueError, match="drill injects its own"):
            run_failure_drill(spec(zones=2, chaos="crash@5:pod=0"))

    def test_outage_must_fall_inside_the_run(self):
        with pytest.raises(ValueError, match="inside the run"):
            run_failure_drill(spec(zones=2), outage_at_s=100.0)


class TestPlannerSurviveZones:
    """--survive-zones buys availability with replicas and proves it
    with a drill; the gated plan is strictly more expensive."""

    SCENARIO = Scenario("Groceries (small)", 10_000, 100)

    @pytest.fixture(scope="class")
    def unconstrained(self):
        planner = DeploymentPlanner(
            runner=ExperimentRunner(seed=11), duration_s=30.0,
            max_replicas=4, shard_counts=(2,),
        )
        return planner.min_feasible_replicas("stamp", self.SCENARIO, CPU_E2)

    @pytest.fixture(scope="class")
    def gated(self):
        planner = DeploymentPlanner(
            runner=ExperimentRunner(seed=11), duration_s=30.0,
            max_replicas=4, shard_counts=(2,), survive_zones=1,
        )
        assert planner.zones == 2
        return planner.min_feasible_replicas("stamp", self.SCENARIO, CPU_E2)

    def test_availability_costs_real_money(self, unconstrained, gated):
        assert unconstrained is not None and gated is not None
        assert unconstrained.survives_zones is None
        assert gated.survives_zones == 1
        # One replica per shard meets the SLO; surviving a zone outage
        # needs a second, and the plan pays for it honestly.
        assert unconstrained.replicas == 1
        assert gated.replicas >= 2
        assert gated.monthly_cost_usd > unconstrained.monthly_cost_usd

    def test_survive_zones_validation(self):
        with pytest.raises(ValueError):
            DeploymentPlanner(survive_zones=-1)
