"""Deployment planner: Table I logic on a reduced scenario set."""

import pytest

from repro.core import DeploymentPlanner, ExperimentRunner, SLO
from repro.core.spec import Scenario
from repro.hardware import CPU_E2, GPU_A100, GPU_T4


@pytest.fixture(scope="module")
def planner():
    return DeploymentPlanner(
        runner=ExperimentRunner(seed=11), duration_s=60.0, max_replicas=6
    )


class TestCapacityEstimates:
    def test_cpu_estimate_small_catalog(self, planner):
        scenario = Scenario("g", 10_000, 100)
        assert planner.estimate_replicas("stamp", scenario, CPU_E2) == 1

    def test_cpu_infeasible_at_ten_million(self, planner):
        scenario = Scenario("e", 10_000_000, 1000)
        estimate = planner.estimate_replicas("stamp", scenario, CPU_E2)
        assert estimate > planner.max_replicas

    def test_gpu_estimate_reasonable(self, planner):
        scenario = Scenario("e", 10_000_000, 1000)
        estimate = planner.estimate_replicas("gru4rec", scenario, GPU_T4)
        assert 2 <= estimate <= 8


class TestFeasibilitySearch:
    def test_groceries_small_needs_one_cpu(self, planner):
        scenario = Scenario("Groceries (small)", 10_000, 100)
        option = planner.min_feasible_replicas("stamp", scenario, CPU_E2)
        assert option is not None
        assert option.replicas == 1
        assert option.monthly_cost_usd == pytest.approx(108.09)

    def test_platform_infeasible_on_t4(self, planner):
        scenario = Scenario("Platform", 20_000_000, 1000)
        option = planner.min_feasible_replicas("gru4rec", scenario, GPU_T4)
        assert option is None

    def test_platform_feasible_on_a100(self, planner):
        scenario = Scenario("Platform", 20_000_000, 1000)
        option = planner.min_feasible_replicas("gru4rec", scenario, GPU_A100)
        assert option is not None
        assert option.replicas == 3  # the paper's Table I cell

    def test_plan_collects_options_and_infeasibles(self, planner):
        scenario = Scenario("Fashion", 1_000_000, 500)
        plans = planner.plan(scenario, ["stamp"], instances=[CPU_E2, GPU_T4])
        plan = plans["stamp"]
        names = {option.instance_type for option in plan.options}
        assert "GPU-T4" in names
        cheapest = plan.cheapest()
        assert cheapest is not None
        assert cheapest.monthly_cost_usd == min(
            option.monthly_cost_usd for option in plan.options
        )


class TestCheapestTieBreak:
    """Regression: cost ties used to resolve by list insertion order, so
    the planner's answer depended on instance-catalog ordering."""

    def _tied_options(self):
        from repro.core.planner import DeploymentOption

        return [
            DeploymentOption("CPU-B", 4, 100.0, result=None),
            DeploymentOption("CPU-A", 2, 100.0, result=None),
            DeploymentOption("GPU-Z", 2, 100.0, result=None),
            DeploymentOption("GPU-X", 1, 250.0, result=None),
        ]

    def test_ties_break_by_replicas_then_name(self):
        from repro.core.planner import ScenarioPlan

        scenario = Scenario("tied", 10_000, 100)
        options = self._tied_options()
        plan = ScenarioPlan(scenario=scenario, model="stamp", options=options)
        winner = plan.cheapest()
        assert (winner.instance_type, winner.replicas) == ("CPU-A", 2)

    def test_order_independent(self):
        from repro.core.planner import ScenarioPlan

        scenario = Scenario("tied", 10_000, 100)
        options = self._tied_options()
        answers = set()
        for rotation in range(len(options)):
            rotated = options[rotation:] + options[:rotation]
            plan = ScenarioPlan(
                scenario=scenario, model="stamp", options=rotated
            )
            winner = plan.cheapest()
            answers.add((winner.instance_type, winner.replicas))
        assert answers == {("CPU-A", 2)}

    def test_empty_plan_has_no_cheapest(self):
        from repro.core.planner import ScenarioPlan

        plan = ScenarioPlan(scenario=Scenario("e", 1, 1), model="stamp")
        assert plan.cheapest() is None
