"""Deployment planner: Table I logic on a reduced scenario set."""

import pytest

from repro.core import DeploymentPlanner, ExperimentRunner, SLO
from repro.core.spec import Scenario
from repro.hardware import CPU_E2, GPU_A100, GPU_T4


@pytest.fixture(scope="module")
def planner():
    return DeploymentPlanner(
        runner=ExperimentRunner(seed=11), duration_s=60.0, max_replicas=6
    )


class TestCapacityEstimates:
    def test_cpu_estimate_small_catalog(self, planner):
        scenario = Scenario("g", 10_000, 100)
        assert planner.estimate_replicas("stamp", scenario, CPU_E2) == 1

    def test_cpu_infeasible_at_ten_million(self, planner):
        scenario = Scenario("e", 10_000_000, 1000)
        estimate = planner.estimate_replicas("stamp", scenario, CPU_E2)
        assert estimate > planner.max_replicas

    def test_gpu_estimate_reasonable(self, planner):
        scenario = Scenario("e", 10_000_000, 1000)
        estimate = planner.estimate_replicas("gru4rec", scenario, GPU_T4)
        assert 2 <= estimate <= 8


class TestFeasibilitySearch:
    def test_groceries_small_needs_one_cpu(self, planner):
        scenario = Scenario("Groceries (small)", 10_000, 100)
        option = planner.min_feasible_replicas("stamp", scenario, CPU_E2)
        assert option is not None
        assert option.replicas == 1
        assert option.monthly_cost_usd == pytest.approx(108.09)

    def test_platform_infeasible_on_t4(self, planner):
        scenario = Scenario("Platform", 20_000_000, 1000)
        option = planner.min_feasible_replicas("gru4rec", scenario, GPU_T4)
        assert option is None

    def test_platform_feasible_on_a100(self, planner):
        scenario = Scenario("Platform", 20_000_000, 1000)
        option = planner.min_feasible_replicas("gru4rec", scenario, GPU_A100)
        assert option is not None
        assert option.replicas == 3  # the paper's Table I cell

    def test_plan_collects_options_and_infeasibles(self, planner):
        scenario = Scenario("Fashion", 1_000_000, 500)
        plans = planner.plan(scenario, ["stamp"], instances=[CPU_E2, GPU_T4])
        plan = plans["stamp"]
        names = {option.instance_type for option in plan.options}
        assert "GPU-T4" in names
        cheapest = plan.cheapest()
        assert cheapest is not None
        assert cheapest.monthly_cost_usd == min(
            option.monthly_cost_usd for option in plan.options
        )


class TestCheapestTieBreak:
    """Regression: cost ties used to resolve by list insertion order, so
    the planner's answer depended on instance-catalog ordering."""

    def _tied_options(self):
        from repro.core.planner import DeploymentOption

        return [
            DeploymentOption("CPU-B", 4, 100.0, result=None),
            DeploymentOption("CPU-A", 2, 100.0, result=None),
            DeploymentOption("GPU-Z", 2, 100.0, result=None),
            DeploymentOption("GPU-X", 1, 250.0, result=None),
        ]

    def test_ties_break_by_replicas_then_name(self):
        from repro.core.planner import ScenarioPlan

        scenario = Scenario("tied", 10_000, 100)
        options = self._tied_options()
        plan = ScenarioPlan(scenario=scenario, model="stamp", options=options)
        winner = plan.cheapest()
        assert (winner.instance_type, winner.replicas) == ("CPU-A", 2)

    def test_order_independent(self):
        from repro.core.planner import ScenarioPlan

        scenario = Scenario("tied", 10_000, 100)
        options = self._tied_options()
        answers = set()
        for rotation in range(len(options)):
            rotated = options[rotation:] + options[:rotation]
            plan = ScenarioPlan(
                scenario=scenario, model="stamp", options=rotated
            )
            winner = plan.cheapest()
            answers.add((winner.instance_type, winner.replicas))
        assert answers == {("CPU-A", 2)}

    def test_empty_plan_has_no_cheapest(self):
        from repro.core.planner import ScenarioPlan

        plan = ScenarioPlan(scenario=Scenario("e", 1, 1), model="stamp")
        assert plan.cheapest() is None


class TestCombinedDimensionTieBreak:
    """Regression for the full option space: when sharded, scheduler-mixed,
    ANN and co-located-tenant options tie on cost and machine count, the
    winner must be the *plainest* deployment (fewest shards, then name,
    then exact retrieval, then homogeneous, then single-tenant) and must
    not depend on list insertion order."""

    def _tied_options(self):
        from repro.core.planner import DeploymentOption

        # All cost 100, all 2 machines total — only the qualitative
        # dimensions differ.
        return [
            DeploymentOption(
                "CPU", 2, 100.0, result=None,
                tenants="a=stamp:1;b=stamp:1",
            ),
            DeploymentOption(
                "CPU", 2, 100.0, result=None, scheduler="cpu=1",
            ),
            DeploymentOption(
                "CPU", 2, 100.0, result=None, retrieval="ivf:nlist=32",
            ),
            DeploymentOption("CPU", 1, 100.0, result=None, shards=2),
            DeploymentOption("CPU", 2, 100.0, result=None),  # the winner
        ]

    def _fingerprint(self, option):
        return (
            option.instance_type, option.replicas, option.shards,
            option.retrieval, option.scheduler, option.tenants,
        )

    def test_plainest_option_wins(self):
        from repro.core.planner import option_sort_key

        winner = min(self._tied_options(), key=option_sort_key)
        assert self._fingerprint(winner) == ("CPU", 2, 1, None, None, None)

    def test_order_independent_across_planners(self):
        import itertools

        from repro.core.planner import ScenarioPlan
        from repro.tenancy import TenancyConfig
        from repro.tenancy.placement import FleetPlan

        options = self._tied_options()
        scenario = Scenario("tied", 10_000, 100)
        fleet = TenancyConfig.parse("a=stamp:1;b=stamp:1")
        answers = set()
        for permutation in itertools.permutations(options):
            shuffled = list(permutation)
            scenario_winner = ScenarioPlan(
                scenario=scenario, model="stamp", options=shuffled
            ).cheapest()
            fleet_winner = FleetPlan(
                tenancy=fleet, catalog_size=10_000, target_rps=100,
                options=shuffled,
            ).cheapest()
            # Both planners share one ordering contract.
            assert self._fingerprint(fleet_winner) == self._fingerprint(
                scenario_winner
            )
            answers.add(self._fingerprint(scenario_winner))
        assert answers == {("CPU", 2, 1, None, None, None)}
