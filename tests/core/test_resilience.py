"""Resilience wiring at the experiment level: spec coercion, specfile
round-trips, telemetry counters/spans, and the disabled-path determinism
invariant."""

import pytest

from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.cluster import ChaosSchedule, PodCrash
from repro.loadgen import RetryPolicy
from repro.obs import Telemetry


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=10_000, target_rps=40,
        hardware=HardwareSpec("CPU", 1), duration_s=20.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecCoercion:
    def test_string_specs_coerce_to_objects(self):
        s = spec(retry="max=2,base=0.05", chaos="crash@10:restart=5")
        assert isinstance(s.retry, RetryPolicy)
        assert s.retry.max_retries == 2
        assert isinstance(s.chaos, ChaosSchedule)
        assert s.chaos.events == (PodCrash(at_s=10.0, restart_after_s=5.0),)

    def test_object_specs_pass_through(self):
        policy = RetryPolicy(max_retries=4)
        schedule = ChaosSchedule(events=(PodCrash(at_s=1.0),))
        s = spec(retry=policy, chaos=schedule)
        assert s.retry is policy
        assert s.chaos is schedule

    def test_specfile_round_trip(self):
        s = spec(retry="max=3,base=0.02,cap=1,jitter=0.25,hedge=0.2",
                 chaos="crash@15:restart=10,slow@30:factor=2:dur=5")
        document = spec_to_dict(s)
        assert isinstance(document["retry"], str)
        assert isinstance(document["chaos"], str)
        restored, _slo = spec_from_dict(document)
        assert restored.retry == s.retry
        assert restored.chaos == s.chaos

    def test_specfile_omits_unset_resilience(self):
        document = spec_to_dict(spec())
        assert "retry" not in document
        assert "chaos" not in document


class TestInstrumentedResilienceRun:
    @pytest.fixture(scope="class")
    def traced(self):
        """One crash mid-ramp, bridged by retries, fully instrumented."""
        telemetry = Telemetry()
        result = ExperimentRunner(seed=21).run(
            spec(
                duration_s=60.0,
                retry="max=8,base=0.5,cap=5,jitter=0.5",
                chaos="crash@15:restart=10",
            ),
            telemetry=telemetry,
        )
        return result, telemetry

    def test_result_carries_resilience_section(self, traced):
        result, _telemetry = traced
        section = result.resilience
        assert section is not None
        assert section["retries"] > 0
        assert section["retry_successes"] > 0
        assert section["retry_policy"].startswith("max=8")
        assert [e["kind"] for e in section["chaos_events"]] == ["crash"]
        assert section["chaos_schedule"] == "crash@15:pod=0:restart=10"

    def test_retry_and_chaos_counters_registered(self, traced):
        result, telemetry = traced
        retries = telemetry.metrics.get("loadgen_retries_total")
        assert retries is not None
        assert retries.value == result.resilience["retries"]
        crashes = telemetry.metrics.get("chaos_events_total", {"kind": "crash"})
        assert crashes is not None
        assert crashes.value == 1

    def test_retry_and_chaos_spans_recorded(self, traced):
        _result, telemetry = traced
        backoffs = telemetry.trace.find("retry_backoff")
        assert backoffs
        assert all(span.finished for span in backoffs)
        (crash_span,) = telemetry.trace.find("chaos_crash")
        assert crash_span.trace_id < 0  # outside any request trace

    def test_plain_run_has_no_resilience_section(self):
        result = ExperimentRunner(seed=22).run(spec(duration_s=10.0))
        assert result.resilience is None


class TestInfraTestResilience:
    def test_crash_recover_with_retries_on_the_bare_server(self):
        from repro.core.infra_test import run_infra_test

        result = run_infra_test(
            "actix", target_rps=200, duration_s=30.0, seed=5,
            retry_policy=RetryPolicy.parse("max=6,base=0.5,cap=4"),
            chaos=ChaosSchedule.parse("crash@10:restart=5"),
        )
        assert [e["kind"] for e in result.chaos_events] == ["crash"]
        assert result.retries > 0
        # Retries bridged the 5 s outage almost entirely.
        assert result.error_rate < 0.05

    def test_chaos_needs_actix_hooks(self):
        from repro.core.infra_test import run_infra_test

        with pytest.raises(ValueError):
            run_infra_test(
                "torchserve", target_rps=50, duration_s=5.0,
                chaos=ChaosSchedule.parse("crash@1"),
            )


class TestDisabledResilienceDeterminism:
    """Configured-but-idle resilience must not perturb a healthy run."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    def test_unused_policy_and_empty_schedule_are_bit_identical(self):
        baseline = ExperimentRunner(seed=33).run(spec())
        with_retry = ExperimentRunner(seed=33).run(
            spec(retry=RetryPolicy(max_retries=5, jitter=0.9))
        )
        with_empty_chaos = ExperimentRunner(seed=33).run(
            spec(chaos=ChaosSchedule())
        )
        assert self._fingerprint(with_retry) == self._fingerprint(baseline)
        assert self._fingerprint(with_empty_chaos) == self._fingerprint(baseline)
        # The idle machinery reported itself but changed nothing.
        assert with_retry.resilience["retries"] == 0
        assert with_empty_chaos.resilience["chaos_events"] == []
