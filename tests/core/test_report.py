"""Report rendering."""

import pytest

from repro.core.planner import DeploymentOption, ScenarioPlan
from repro.core.report import (
    format_cost,
    render_latency_series,
    render_microbench_table,
    render_scenario_table,
)
from repro.core.spec import Scenario
from repro.core.microbench import MicrobenchResult
from repro.metrics.results import LatencySeries, RunResult


def make_result(**overrides):
    base = dict(
        model="stamp", instance_type="CPU", replicas=1, catalog_size=1000,
        target_rps=100, duration_s=60.0, execution_mode="jit",
        total_requests=100, ok_requests=100, error_requests=0,
        achieved_rps=95.0, p50_ms=1.0, p90_ms=2.0, p99_ms=3.0,
        p90_at_target_ms=2.0,
    )
    base.update(overrides)
    return RunResult(**base)


def make_plan(scenario, model, options):
    plan = ScenarioPlan(scenario=scenario, model=model)
    for instance, replicas, cost in options:
        plan.options.append(
            DeploymentOption(
                instance_type=instance,
                replicas=replicas,
                monthly_cost_usd=cost,
                result=make_result(instance_type=instance, replicas=replicas),
            )
        )
    return plan


class TestScenarioTable:
    def test_marks_cheapest_and_shows_replicas(self):
        scenario = Scenario("Demo", 1000, 100)
        plans = {
            "stamp": make_plan(scenario, "stamp",
                               [("CPU", 1, 108.0), ("GPU-T4", 1, 268.0)]),
            "core": make_plan(scenario, "core", [("GPU-T4", 2, 536.0)]),
        }
        table = render_scenario_table({"Demo": plans}, ["stamp", "core"])
        assert "*CPU" in table
        assert "x1" in table and "x2" in table
        assert "$108" in table

    def test_infeasible_cells_dashed(self):
        scenario = Scenario("Demo", 1000, 100)
        plans = {"stamp": make_plan(scenario, "stamp", [("CPU", 1, 108.0)])}
        table = render_scenario_table({"Demo": plans}, ["stamp", "core"])
        assert "-" in table

    def test_empty_scenario_reported(self):
        scenario = Scenario("Demo", 1000, 100)
        plans = {"stamp": make_plan(scenario, "stamp", [])}
        table = render_scenario_table({"Demo": plans}, ["stamp"])
        assert "no feasible deployment" in table

    def test_zone_surviving_options_marked_and_legended(self):
        scenario = Scenario("Demo", 1000, 100)
        plan = make_plan(scenario, "stamp", [("CPU", 2, 216.0)])
        plan.options[0].survives_zones = 1
        table = render_scenario_table({"Demo": {"stamp": plan}}, ["stamp"])
        assert "x2^" in table
        assert "drill-verified" in table
        # No legend noise when nothing is zoned.
        plain = render_scenario_table(
            {"Demo": {"stamp": make_plan(scenario, "stamp",
                                         [("CPU", 2, 216.0)])}},
            ["stamp"],
        )
        assert "^" not in plain
        assert "drill-verified" not in plain


class TestLatencySeries:
    def test_render_aligned_columns(self):
        series = LatencySeries(
            seconds=[0, 1, 2],
            offered_rps=[1, 2, 3],
            ok=[1, 2, 3],
            errors=[0, 0, 1],
            p90_ms=[1.0, None, 3.0],
            mean_batch=[1.0, None, 2.0],
        )
        text = render_latency_series(series, "demo", every=1)
        lines = text.splitlines()
        assert lines[0] == "--- demo"
        assert "offered" in lines[1]
        assert len(lines) == 5
        assert "-" in lines[3]  # the None p90 row


class TestMicrobenchTable:
    def test_jit_failure_flagged(self):
        results = [
            MicrobenchResult(
                model="lightsans", catalog_size=10_000, instance_type="CPU",
                execution_requested="jit", execution_effective="eager",
                jit_failed=True, num_requests=10,
                mean_ms=1.0, p50_ms=1.0, p90_ms=1.2, p99_ms=1.4,
            )
        ]
        table = render_microbench_table(results, [10_000])
        assert "!" in table
        assert "could not be JIT-compiled" in table


class TestFormatCost:
    def test_thousands_separator(self):
        assert format_cost(6026.4) == "$6,026"
        assert format_cost(108.09) == "$108"
