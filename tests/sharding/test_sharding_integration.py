"""Catalog sharding end to end: spec wiring, the S=1 bit-identity
contract, shard-scoped scoring against the real model, scatter-gather
semantics under failure, chaos shard crashes with partial coverage, and
the planner's shard dimension."""

import numpy as np
import pytest

from repro.core import ExperimentRunner, ExperimentSpec, HardwareSpec
from repro.core.infra_test import run_infra_test
from repro.core.specfile import spec_from_dict, spec_to_dict
from repro.models import ModelConfig, create_model
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.sharding import (
    ScatterGatherAggregator,
    ShardingConfig,
    ShardScorer,
    build_shard_scorers,
    merge_topk,
)
from repro.simulation import Simulator


def spec(**overrides):
    base = dict(
        model="stamp", catalog_size=100_000, target_rps=30,
        hardware=HardwareSpec("CPU", 1), duration_s=15.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestConfigAndSpecWiring:
    def test_parse_grammar(self):
        assert ShardingConfig.parse("4") == ShardingConfig(shards=4)
        assert ShardingConfig.parse("shards=8") == ShardingConfig(shards=8)
        parsed = ShardingConfig.parse("4,partial=off")
        assert parsed.shards == 4 and not parsed.allow_partial

    def test_spec_string_round_trips(self):
        for text in ("1", "4", "4,partial=off"):
            config = ShardingConfig.parse(text)
            assert ShardingConfig.parse(config.spec_string()) == config

    def test_spec_coerces_string_and_int(self):
        assert spec(sharding="4").sharding == ShardingConfig(shards=4)
        assert spec(sharding=4).sharding == ShardingConfig(shards=4)

    def test_specfile_round_trip(self):
        s = spec(sharding="4,partial=off")
        document = spec_to_dict(s)
        assert document["shards"] == "4,partial=off"
        restored, _slo = spec_from_dict(document)
        assert restored.sharding == s.sharding

    def test_specfile_omits_unset_sharding(self):
        assert "shards" not in spec_to_dict(spec())

    def test_enabled_only_above_one(self):
        assert not ShardingConfig(shards=1).enabled
        assert ShardingConfig(shards=2).enabled


class TestDisabledShardingDeterminism:
    """S=1 (or unconfigured) sharding must be bit-identical to the
    baseline — latencies and per-second series — on both the CPU and the
    GPU path (same contract as admission/fallback/cache)."""

    def _fingerprint(self, result):
        return (
            result.total_requests, result.ok_requests, result.error_requests,
            result.p50_ms, result.p90_ms, result.p99_ms,
            tuple(result.series.p90_ms), tuple(result.series.ok),
        )

    @pytest.mark.parametrize("instance", ["CPU", "GPU-T4"])
    def test_single_shard_is_bit_identical(self, instance):
        base = spec(hardware=HardwareSpec(instance, 1))
        baseline = ExperimentRunner(seed=33).run(base)
        single = ExperimentRunner(seed=33).run(
            spec(hardware=HardwareSpec(instance, 1), sharding=1)
        )
        assert self._fingerprint(single) == self._fingerprint(baseline)
        assert single.sharding is None  # S=1 reports nothing


class TestShardScorer:
    CATALOG = 2_000
    MODEL = create_model("stamp", ModelConfig.for_catalog(CATALOG, top_k=5))

    def test_shards_union_covers_catalog_exactly(self):
        session = [3, 14, 159]
        scorers = build_shard_scorers(self.MODEL, 4)
        seen = np.concatenate(
            [s.recommend_with_scores(session)[0] for s in scorers]
        )
        assert len(np.unique(seen)) == len(seen)  # disjoint slices

    def test_merged_equals_full_model(self):
        session = [3, 14, 159]
        parts = [
            scorer.recommend_with_scores(session)
            for scorer in build_shard_scorers(self.MODEL, 4)
        ]
        merged, _ = merge_topk(parts, self.MODEL.top_k)
        np.testing.assert_array_equal(merged, self.MODEL.recommend(session))

    def test_fused_head_models_are_rejected(self):
        vmis = create_model("vmisknn", ModelConfig.for_catalog(500, top_k=5))
        with pytest.raises(ValueError, match="fuses its scoring head"):
            ShardScorer(vmis, 0, 4)


def _leg(request, items=None, scores=None, status=HTTP_OK, degraded=False):
    return RecommendationResponse(
        request_id=request.request_id, status=status, completed_at=0.0,
        latency_s=0.0, items=items, scores=scores, degraded=degraded,
    )


class TestAggregatorSemantics:
    """Unit-level scatter-gather: merge, partial coverage, total failure."""

    def run_fanout(self, shard_behaviours, allow_partial=True):
        sim = Simulator()
        config = ShardingConfig(
            shards=len(shard_behaviours), allow_partial=allow_partial
        )

        def make_submit(behaviour):
            def submit(request, respond):
                sim.call_in(0.001, lambda: respond(behaviour(request)))

            return submit

        aggregator = ScatterGatherAggregator(
            simulator=sim,
            config=config,
            shard_submits=[make_submit(b) for b in shard_behaviours],
            network_delay=lambda: 0.0005,
            top_k=3,
        )
        request = RecommendationRequest(
            request_id=1, session_id=1,
            session_items=np.asarray([1, 2], dtype=np.int64), sent_at=0.0,
        )
        responses = []
        aggregator.scatter(request, responses.append)
        sim.run()
        assert len(responses) == 1
        return aggregator, responses[0]

    def test_all_shards_ok_merges_exact_topk(self):
        def shard(lo):
            def behaviour(request):
                ids = np.arange(lo, lo + 4, dtype=np.int64)
                return _leg(request, ids, -ids.astype(np.float64))

            return behaviour

        aggregator, response = self.run_fanout([shard(0), shard(4)])
        assert response.status == HTTP_OK and not response.degraded
        assert response.coverage == 1.0
        np.testing.assert_array_equal(response.items, [0, 1, 2])
        assert aggregator.stats()["partial_responses"] == 0

    def test_failed_shard_yields_partial_200(self):
        def ok(request):
            ids = np.arange(3, dtype=np.int64)
            return _leg(request, ids, np.ones(3))

        def dead(request):
            return _leg(request, status=HTTP_SERVICE_UNAVAILABLE)

        aggregator, response = self.run_fanout([ok, dead])
        assert response.status == HTTP_OK
        assert response.degraded and response.coverage == 0.5
        assert aggregator.stats()["partial_responses"] == 1
        assert aggregator.stats()["min_coverage"] == 0.5

    def test_partial_off_turns_coverage_loss_into_503(self):
        def ok(request):
            ids = np.arange(3, dtype=np.int64)
            return _leg(request, ids, np.ones(3))

        def dead(request):
            return _leg(request, status=HTTP_SERVICE_UNAVAILABLE)

        aggregator, response = self.run_fanout([ok, dead], allow_partial=False)
        assert response.status == HTTP_SERVICE_UNAVAILABLE
        assert aggregator.stats()["failed_fanouts"] == 1

    def test_all_shards_dead_is_503(self):
        def dead(request):
            return _leg(request, status=HTTP_SERVICE_UNAVAILABLE)

        aggregator, response = self.run_fanout([dead, dead])
        assert response.status == HTTP_SERVICE_UNAVAILABLE
        assert response.coverage == 0.0

    def test_degraded_legs_count_as_survivors_not_coverage(self):
        """A shard shedding to its fallback tier keeps the fan-out alive
        but contributes no catalog coverage (PR-3 composition)."""

        def fallback(request):
            ids = np.arange(3, dtype=np.int64)
            return _leg(request, ids, degraded=True)

        aggregator, response = self.run_fanout([fallback, fallback])
        assert response.status == HTTP_OK and response.degraded
        assert response.coverage == 0.0
        assert response.items is not None


class TestShardedRuns:
    """Full simulated deployments with S > 1."""

    def test_sharded_run_reports_section(self):
        result = ExperimentRunner(seed=7).run(spec(sharding=4))
        assert result.error_requests == 0
        section = result.sharding
        assert section is not None
        assert section["shards"] == 4
        assert section["fanouts"] == result.ok_requests
        assert section["mean_coverage"] == 1.0
        assert section["replicas_per_shard"] == 1

    def test_shard_crash_degrades_coverage_not_availability(self):
        result = ExperimentRunner(seed=7).run(
            spec(
                duration_s=20.0, sharding=4,
                chaos="crash@4:restart=60:shard=1",
            )
        )
        section = result.sharding
        assert result.error_requests == 0  # no 5xx flood
        assert section["partial_responses"] > 0
        assert 0.7 < section["mean_coverage"] < 1.0
        assert section["min_coverage"] == pytest.approx(0.75, abs=0.01)

    def test_unshardable_model_cannot_deploy(self):
        from repro.cluster.kubernetes import DeploymentError

        with pytest.raises(DeploymentError, match="shard"):
            ExperimentRunner(seed=7).run(spec(model="vmisknn", sharding=4))

    def test_infra_test_sharded_matches_contract(self):
        result = run_infra_test(
            "actix", target_rps=150, duration_s=15.0, seed=5,
            sharding=ShardingConfig(shards=4),
        )
        assert result.errors == 0
        assert result.sharding is not None
        assert result.sharding["fanouts"] == result.total
        assert len(result.sharding["per_shard_completed"]) == 4
        # Every shard served every fan-out.
        assert set(result.sharding["per_shard_completed"]) == {result.total}

    def test_infra_test_rejects_torchserve_sharding(self):
        with pytest.raises(ValueError, match="Actix"):
            run_infra_test(
                "torchserve", duration_s=5.0,
                sharding=ShardingConfig(shards=2),
            )


class TestPlannerShardDimension:
    def test_sharded_estimate_never_exceeds_unsharded(self):
        from repro.core import DeploymentPlanner
        from repro.core.spec import Scenario
        from repro.hardware import GPU_T4

        planner = DeploymentPlanner(runner=ExperimentRunner(seed=11))
        scenario = Scenario("big", 10_000_000, 500)
        assert planner.estimate_replicas(
            "gru4rec", scenario, GPU_T4, shards=4
        ) <= planner.estimate_replicas("gru4rec", scenario, GPU_T4)

    def test_cheapest_tie_break_prefers_fewer_shards(self):
        from repro.core.planner import DeploymentOption, ScenarioPlan
        from repro.core.spec import Scenario

        plan = ScenarioPlan(Scenario("s", 1000, 10), "stamp")
        sharded = DeploymentOption("GPU-T4", 1, 100.0, None, shards=4)
        flat = DeploymentOption("GPU-T4", 4, 100.0, None)
        plan.options = [sharded, flat]
        assert plan.cheapest() is flat
