"""Property-based proof of scatter-gather exactness.

The sharding contract: partition the catalog any way you like, take each
shard's local top-k under the deterministic (-score, id) order, merge —
and you must get exactly the unsharded top-k, same ids in the same order,
with ties broken identically. Hypothesis hunts for score matrices (ties
included deliberately), shard counts and k values that break it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import merge_topk, shard_bounds, topk_by_score

# Scores from a coarse grid so ties across shard boundaries are common —
# tie-breaking is exactly what this property has to pin down.
tied_scores = st.lists(
    st.integers(0, 7).map(lambda v: v / 4.0), min_size=1, max_size=120
)
distinct_scores = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=120,
    unique=True,
)
shard_counts = st.integers(1, 9)
k_values = st.integers(1, 40)


def reference_topk(scores, k):
    """Ground truth: sort the full catalog by (-score, id), take k."""
    scores = np.asarray(scores, dtype=np.float64)
    ids = np.arange(scores.size, dtype=np.int64)
    order = np.lexsort((ids, -scores))[:k]
    return ids[order], scores[order]


def sharded_topk(scores, shards, k):
    """What the serving path computes: local top-k per slice, then merge."""
    scores = np.asarray(scores, dtype=np.float64)
    parts = []
    for lo, hi in shard_bounds(scores.size, shards):
        local_ids = np.arange(lo, hi, dtype=np.int64)
        parts.append(topk_by_score(local_ids, scores[lo:hi], k))
    return merge_topk(parts, k)


class TestMergeExactness:
    @given(tied_scores, shard_counts, k_values)
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_unsharded_with_ties(self, scores, shards, k):
        expected_ids, expected_scores = reference_topk(scores, k)
        got_ids, got_scores = sharded_topk(scores, shards, k)
        np.testing.assert_array_equal(got_ids, expected_ids)
        np.testing.assert_array_equal(got_scores, expected_scores)

    @given(distinct_scores, shard_counts, k_values)
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_unsharded_distinct(self, scores, shards, k):
        expected_ids, expected_scores = reference_topk(scores, k)
        got_ids, got_scores = sharded_topk(scores, shards, k)
        np.testing.assert_array_equal(got_ids, expected_ids)
        np.testing.assert_array_equal(got_scores, expected_scores)

    @given(tied_scores, shard_counts, k_values)
    @settings(max_examples=100, deadline=None)
    def test_result_is_sorted_and_within_k(self, scores, shards, k):
        ids, out = sharded_topk(scores, shards, k)
        assert ids.size == out.size == min(k, len(scores))
        # Non-increasing scores; ties in ascending-id order.
        for i in range(1, out.size):
            assert out[i] <= out[i - 1]
            if out[i] == out[i - 1]:
                assert ids[i] > ids[i - 1]

    @given(tied_scores, shard_counts)
    @settings(max_examples=100, deadline=None)
    def test_bounds_partition_the_catalog(self, scores, shards):
        bounds = shard_bounds(len(scores), shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == len(scores)
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo  # contiguous, no gap, no overlap
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1  # balanced

    @given(tied_scores, shard_counts, k_values)
    @settings(max_examples=100, deadline=None)
    def test_single_shard_is_identity(self, scores, shards, k):
        one_ids, one_scores = sharded_topk(scores, 1, k)
        expected_ids, expected_scores = reference_topk(scores, k)
        np.testing.assert_array_equal(one_ids, expected_ids)
        np.testing.assert_array_equal(one_scores, expected_scores)
