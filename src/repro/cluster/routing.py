"""Health-aware routing policies for the ClusterIP service.

The paper's service is a plain round-robin over the *instantaneously*
known ready pods — an idealization on two counts. Real load balancers
(Envoy, HAProxy, the k8s endpoint controller) neither learn about a dead
pod instantly nor keep hammering a pod that answers nothing but 503s:

- ``endpoint_lag_s`` models endpoint-propagation delay: after a pod drops
  out of readiness, the router keeps it in rotation for that long (the
  window in which real systems send traffic into a dead backend);
- **least-outstanding-requests** (``lor``) routes each request to the
  candidate with the fewest in-flight requests, which automatically
  steers around slow or degraded replicas;
- **passive outlier ejection** (the circuit breaker): a pod returning
  ``eject_after`` *consecutive* 503s leaves the rotation for
  ``cooldown_s``; it then re-enters via a single half-open probe request —
  a 200 restores it, another 503 re-ejects it for a fresh cooldown.
  Passive ejection is exactly what closes the endpoint-lag window:
  observed failures act faster than any readiness probe.

Fail-open rule: when every candidate is ejected, ejection is ignored and
the router falls back to the plain rotation (mirroring Envoy's
``max_ejection_percent`` guardrail) — a misconfigured breaker must never
turn a degraded service into a fully dead one.

Determinism: routing draws no random numbers; with no policy configured
the service executes exactly the pre-routing code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

DISCIPLINES = ("rr", "lor")


def partition_by_shard(pods: Sequence) -> Dict[int, List]:
    """Group a pod list by shard index, preserving deployment order.

    The scatter-gather service routes each shard leg within its own pod
    group — every routing discipline (rr / lor / ejection) then applies
    per shard, because balancing across shards would be meaningless: a
    request must reach *every* shard exactly once. Pods without a shard
    attribute (plain deployments) all land in group 0.
    """
    groups: Dict[int, List] = {}
    for pod in pods:
        groups.setdefault(getattr(pod, "shard", 0), []).append(pod)
    return groups


@dataclass(frozen=True)
class RoutingPolicy:
    """Declarative routing behaviour for one ClusterIP service."""

    discipline: str = "rr"
    #: Consecutive 503s that eject a pod (None = ejection disabled).
    eject_after: Optional[int] = None
    #: How long an ejected pod sits out before its half-open probe.
    cooldown_s: float = 10.0
    #: Endpoint-propagation delay: a pod that left readiness stays in the
    #: routing view this long (0 = the paper's instantaneous view).
    endpoint_lag_s: float = 0.0

    def __post_init__(self):
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {self.discipline!r}"
            )
        if self.eject_after is not None and self.eject_after < 1:
            raise ValueError("eject_after must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.endpoint_lag_s < 0:
            raise ValueError("endpoint_lag_s must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "RoutingPolicy":
        """Build a policy from a compact CLI spec.

        Comma-separated: an optional leading bare discipline (``rr`` /
        ``lor``) plus ``key=value`` options, e.g.
        ``"lor,eject=3,cooldown=15,lag=2"``. Empty string = plain
        round-robin.
        """
        kwargs: dict = {}
        keys = {
            "eject": ("eject_after", int),
            "cooldown": ("cooldown_s", float),
            "lag": ("endpoint_lag_s", float),
        }
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                if part not in DISCIPLINES:
                    raise ValueError(
                        f"unknown routing discipline {part!r}; "
                        f"known: {list(DISCIPLINES)}"
                    )
                kwargs["discipline"] = part
                continue
            key, _, value = part.partition("=")
            if key not in keys:
                raise ValueError(
                    f"unknown routing spec key {key!r}; known: {sorted(keys)}"
                )
            name, cast = keys[key]
            kwargs[name] = cast(value)
        return cls(**kwargs)

    def spec_string(self) -> str:
        """The compact form :meth:`parse` accepts (for spec files)."""
        default = RoutingPolicy()
        parts = [self.discipline]
        if self.eject_after is not None:
            parts.append(f"eject={self.eject_after}")
        if self.cooldown_s != default.cooldown_s:
            parts.append(f"cooldown={self.cooldown_s:g}")
        if self.endpoint_lag_s != default.endpoint_lag_s:
            parts.append(f"lag={self.endpoint_lag_s:g}")
        return ",".join(parts)

    def describe(self) -> str:
        name = (
            "round-robin" if self.discipline == "rr"
            else "least-outstanding-requests"
        )
        if self.eject_after is None:
            return name
        return (
            f"{name}, eject after {self.eject_after} consecutive 503s "
            f"for {self.cooldown_s:g} s"
        )


__all__ = ["RoutingPolicy", "DISCIPLINES", "partition_by_shard"]
