"""Horizontal pod autoscaling over a model deployment.

The paper's conclusion mentions "the automatic choice of appropriate
instance types for declaratively specified workloads"; the
:class:`~repro.core.planner.DeploymentPlanner` covers the *offline* choice.
This module adds the *online* half: a Kubernetes-HPA-style control loop
that observes per-pod queue pressure and scales the replica count while an
experiment runs.

Control law (the standard HPA proportional rule):

``desired = ceil(ready_replicas * observed_metric / target_metric)``

with the metric being the mean per-pod queue depth (a direct proxy for
utilization in this serving model), clamped to ``[min_replicas,
max_replicas]``, with a stabilization window before scaling down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cluster.kubernetes import Cluster, ModelDeployment

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


@dataclass
class AutoscalerConfig:
    min_replicas: int = 1
    max_replicas: int = 8
    #: Mean queued requests per pod the controller aims for.
    target_queue_per_pod: float = 4.0
    #: Control-loop period (Kubernetes default: 15 s).
    interval_s: float = 15.0
    #: Consecutive low-pressure observations required before scaling down
    #: (stabilization window, in control intervals).
    scale_down_intervals: int = 4

    def __post_init__(self):
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.target_queue_per_pod <= 0:
            raise ValueError("target_queue_per_pod must be positive")


@dataclass
class ScalingEvent:
    time: float
    direction: str  # "up" | "down"
    from_replicas: int
    to_replicas: int
    observed_queue_per_pod: float


class HorizontalPodAutoscaler:
    """HPA control loop for one deployment (runs as a simulator process)."""

    def __init__(
        self,
        cluster: Cluster,
        deployment: ModelDeployment,
        config: Optional[AutoscalerConfig] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.cluster = cluster
        self.deployment = deployment
        self.config = config or AutoscalerConfig()
        self.events: List[ScalingEvent] = []
        self._low_pressure_streak = 0
        self._starting_pods: List = []
        self._stopped = False
        #: Optional telemetry handle; None = zero overhead.
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.gauge(
                "autoscaler_ready_replicas",
                fn=lambda: len(self.deployment.ready_pods),
                unit="pods", help="replicas past their readiness probe",
            )
            metrics.gauge(
                "autoscaler_starting_replicas",
                fn=lambda: len(self._starting_pods),
                unit="pods", help="replicas still provisioning/booting",
            )
            self._queue_gauge = metrics.gauge(
                "autoscaler_observed_queue_per_pod", unit="requests",
                help="mean per-pod queue depth at the last control tick",
            )
            self._scale_up_counter = metrics.counter(
                "autoscaler_scale_ups_total", unit="events",
            )
            self._scale_down_counter = metrics.counter(
                "autoscaler_scale_downs_total", unit="events",
            )

    def start(self) -> None:
        self.cluster.simulator.spawn(self._control_loop())

    def stop(self) -> None:
        self._stopped = True

    # -- metric + decision ---------------------------------------------------

    def observed_queue_per_pod(self) -> Optional[float]:
        ready = self.deployment.ready_pods
        if not ready:
            return None
        total = sum(pod.server.queue_depth() for pod in ready)
        return total / len(ready)

    def _desired_replicas(self, observed: float, current: int) -> int:
        raw = math.ceil(current * observed / self.config.target_queue_per_pod)
        return max(self.config.min_replicas, min(raw, self.config.max_replicas))

    # -- control loop -----------------------------------------------------------

    def _control_loop(self):
        config = self.config
        while not self._stopped:
            yield config.interval_s
            # Pods finish starting asynchronously; drop the ready ones.
            self._starting_pods = [p for p in self._starting_pods if not p.ready]
            observed = self.observed_queue_per_pod()
            if observed is None:
                continue
            if self.telemetry is not None:
                self._queue_gauge.set(observed)
            ready = len(self.deployment.ready_pods)
            current = ready + len(self._starting_pods)
            desired = self._desired_replicas(observed, max(ready, 1))

            if desired > current:
                self._low_pressure_streak = 0
                if self.telemetry is not None:
                    self._scale_up_counter.inc()
                for _new in range(desired - current):
                    self._starting_pods.append(self.cluster.add_pod(self.deployment))
                self.events.append(
                    ScalingEvent(
                        time=self.cluster.simulator.now,
                        direction="up",
                        from_replicas=current,
                        to_replicas=desired,
                        observed_queue_per_pod=observed,
                    )
                )
            elif desired < ready and not self._starting_pods:
                self._low_pressure_streak += 1
                if self._low_pressure_streak >= config.scale_down_intervals:
                    self._low_pressure_streak = 0
                    removed = self.cluster.remove_pod(self.deployment)
                    if removed is not None:
                        if self.telemetry is not None:
                            self._scale_down_counter.inc()
                        self.events.append(
                            ScalingEvent(
                                time=self.cluster.simulator.now,
                                direction="down",
                                from_replicas=ready,
                                to_replicas=ready - 1,
                                observed_queue_per_pod=observed,
                            )
                        )
            else:
                self._low_pressure_streak = 0
