"""Composable fault-injection schedules for the simulated cluster.

``Cluster.inject_pod_failure`` covers exactly one scenario: one pod, one
crash, one optional restart. Measuring how a deployment behaves at the
edge of its capacity needs richer degradation patterns — the regimes the
DeepRecSys and capacity-driven scale-out studies identify as the ones
that actually determine provisioning. A :class:`ChaosSchedule` composes
timed events over one run:

- :class:`PodCrash` — the classic single-pod crash (+ kubelet restart);
- :class:`CrashStorm` — several pods crashing in quick succession;
- :class:`SlowNode` — one replica's service times degrade by a factor
  (thermal throttling, noisy neighbour) for a window;
- :class:`NetworkDelay` — transient extra latency on the client→server
  leg of the ClusterIP service;
- :class:`ZoneOutage` — a *correlated* failure: every pod in one failure
  domain crashes at the same instant (requires a deployment spread with
  ``zones > 1``, see ``cluster/kubernetes.py``).

Event times are **relative to load start** (the schedule is installed
once the deployment's readiness signal fires), so the same schedule means
the same thing regardless of how long provisioning took.

Determinism: chaos draws no random numbers. An empty schedule — or none —
leaves every code path bit-identical to the pre-chaos simulator; the
degradation hooks multiply by 1.0 / add 0.0 when nominal.

Targets: cluster runs pass ``cluster`` + ``deployment`` (+ ``service``
for :class:`NetworkDelay`); bare-server setups like the Figure 2 infra
test pass ``servers`` instead, where crashes recover in place (no pod
boot sequence to replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.simulation import Simulator

if TYPE_CHECKING:
    from repro.cluster.kubernetes import Cluster, ModelDeployment
    from repro.cluster.service import ClusterIPService
    from repro.obs.telemetry import Telemetry
    from repro.serving.actix import EtudeInferenceServer


def _parse_optional_s(value: str) -> Optional[float]:
    return None if value.lower() in ("none", "never") else float(value)


def _parse_optional_index(value: str) -> Optional[int]:
    return None if value.lower() == "none" else int(value)


def _format_option(value) -> str:
    """Render one option value for :meth:`ChaosSchedule.spec_string`.

    Numbers go through ``'g'`` formatting (``20.0`` -> ``20``); strings —
    e.g. a :class:`ZoneOutage` zone name — are emitted verbatim so they
    survive the round trip instead of raising in ``format(value, 'g')``.
    """
    if value is None:
        return "none"
    if isinstance(value, str):
        return value
    return format(value, "g")


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault; ``at_s`` is seconds after load start."""

    at_s: float = 0.0

    kind = "event"
    # Class attribute (deliberately unannotated — not a dataclass field):
    # override to record the run-level span under a domain name instead
    # of the default "chaos_{kind}".
    span_name = None

    def fire(self, controller: "ChaosController") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}@{self.at_s:g}s"


@dataclass(frozen=True)
class PodCrash(ChaosEvent):
    """Crash one pod; the kubelet restarts it after ``restart_after_s``
    (``None``: stays dead). On bare servers, "restart" is an in-place
    recovery after the same delay."""

    pod_index: int = 0
    restart_after_s: Optional[float] = 20.0
    #: Restrict the crash to one catalog shard's replica group:
    #: ``pod_index`` then counts within that group. On a sharded run this
    #: is how to knock out (part of) one shard and observe partial
    #: coverage; ``None`` on unsharded runs.
    shard: Optional[int] = None

    kind = "crash"

    def fire(self, controller: "ChaosController") -> None:
        controller.crash_pod(self.pod_index, self.restart_after_s, shard=self.shard)
        detail = {"pod_index": self.pod_index}
        if self.shard is not None:
            detail["shard"] = self.shard
        controller.note(self, **detail)


@dataclass(frozen=True)
class CrashStorm(ChaosEvent):
    """``count`` pods crash ``stagger_s`` apart, starting at ``at_s``."""

    count: int = 2
    stagger_s: float = 1.0
    restart_after_s: Optional[float] = 20.0

    kind = "storm"

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("storm count must be >= 1")
        if self.stagger_s < 0:
            raise ValueError("stagger_s must be >= 0")

    def fire(self, controller: "ChaosController") -> None:
        for index in range(self.count):
            controller.simulator.call_in(
                index * self.stagger_s,
                lambda i=index: controller.crash_pod(i, self.restart_after_s),
            )
        controller.note(self, count=self.count)


@dataclass(frozen=True)
class SlowNode(ChaosEvent):
    """One replica's service times multiply by ``factor`` for
    ``duration_s`` (``None``: for the rest of the run)."""

    pod_index: int = 0
    factor: float = 3.0
    duration_s: Optional[float] = 30.0

    kind = "slow"

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")

    def fire(self, controller: "ChaosController") -> None:
        server = controller.server(self.pod_index)
        if server is None:
            return  # pod not up (crashed or still booting): nothing to slow
        server.set_slowdown(self.factor)
        if self.duration_s is not None:
            controller.simulator.call_in(
                self.duration_s, lambda: server.set_slowdown(1.0)
            )
        controller.note(
            self,
            pod_index=self.pod_index,
            factor=self.factor,
            duration_s=self.duration_s,
        )


@dataclass(frozen=True)
class NetworkDelay(ChaosEvent):
    """Extra one-way latency on the client→server leg for a window."""

    extra_s: float = 0.005
    duration_s: Optional[float] = 30.0

    kind = "netdelay"

    def __post_init__(self):
        if self.extra_s < 0:
            raise ValueError("extra_s must be >= 0")

    def fire(self, controller: "ChaosController") -> None:
        service = controller.service
        if service is None:
            raise ValueError("netdelay chaos requires a ClusterIP service")
        service.extra_latency_s += self.extra_s
        if self.duration_s is not None:

            def restore() -> None:
                service.extra_latency_s = max(
                    service.extra_latency_s - self.extra_s, 0.0
                )

            controller.simulator.call_in(self.duration_s, restore)
        controller.note(
            self, extra_s=self.extra_s, duration_s=self.duration_s
        )


@dataclass(frozen=True)
class ZoneOutage(ChaosEvent):
    """Correlated failure: every pod in one failure domain crashes at the
    same instant (rack power loss, zonal network partition, a rolling
    kernel upgrade gone wrong). Each kubelet restarts its pod *in the
    pod's home zone* after ``restart_after_s`` (``None``: the zone stays
    dark for the rest of the run). Requires a cluster deployment placed
    with ``zones > 1``."""

    zone: str = "z0"
    restart_after_s: Optional[float] = 20.0

    kind = "zone"
    span_name = "zone_outage"

    def __post_init__(self):
        if not self.zone:
            raise ValueError("zone outage needs a zone name")

    def fire(self, controller: "ChaosController") -> None:
        names = controller.crash_zone(self.zone, self.restart_after_s)
        controller.note(
            self,
            zone=self.zone,
            pods=len(names),
            duration_s=self.restart_after_s,
        )


_EVENT_KINDS = {
    "crash": (
        PodCrash,
        {
            "pod": ("pod_index", int),
            "restart": ("restart_after_s", _parse_optional_s),
            "shard": ("shard", _parse_optional_index),
        },
    ),
    "storm": (
        CrashStorm,
        {
            "count": ("count", int),
            "stagger": ("stagger_s", float),
            "restart": ("restart_after_s", _parse_optional_s),
        },
    ),
    "slow": (
        SlowNode,
        {
            "pod": ("pod_index", int),
            "factor": ("factor", float),
            "dur": ("duration_s", _parse_optional_s),
        },
    ),
    "netdelay": (
        NetworkDelay,
        {"add": ("extra_s", float), "dur": ("duration_s", _parse_optional_s)},
    ),
    "zone": (
        ZoneOutage,
        {
            "name": ("zone", str),
            "restart": ("restart_after_s", _parse_optional_s),
        },
    ),
}


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, immutable collection of chaos events for one run."""

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self):
        for event in self.events:
            if event.at_s < 0:
                raise ValueError(f"event time must be >= 0: {event}")

    def install(
        self,
        simulator: Simulator,
        *,
        cluster: Optional["Cluster"] = None,
        deployment: Optional["ModelDeployment"] = None,
        service: Optional["ClusterIPService"] = None,
        servers: Optional[Sequence["EtudeInferenceServer"]] = None,
        telemetry: Optional["Telemetry"] = None,
        start_at: Optional[float] = None,
    ) -> "ChaosController":
        """Schedule every event; returns the controller holding the log.

        ``start_at`` anchors the relative event times (default: now — call
        this when the load starts, e.g. right after the readiness signal).
        """
        controller = ChaosController(
            simulator,
            cluster=cluster,
            deployment=deployment,
            service=service,
            servers=servers,
            telemetry=telemetry,
        )
        origin = simulator.now if start_at is None else start_at
        for event in self.events:
            simulator.call_at(
                origin + event.at_s, lambda e=event: e.fire(controller)
            )
        return controller

    @classmethod
    def parse(cls, text: str) -> "ChaosSchedule":
        """Build a schedule from a compact CLI spec.

        Comma-separated events, each ``kind@at[:key=value...]``::

            crash@150:pod=0:restart=20
            storm@200:count=3:stagger=1:restart=none
            slow@100:pod=1:factor=3:dur=30
            netdelay@50:add=0.005:dur=30
            zone@60:name=z0:restart=25
        """
        events: List[ChaosEvent] = []
        for item in filter(None, (p.strip() for p in text.split(","))):
            head, *options = item.split(":")
            kind, at, at_text = head.partition("@")
            if not at or kind not in _EVENT_KINDS:
                raise ValueError(
                    f"bad chaos event {item!r}; expected kind@seconds with "
                    f"kind in {sorted(_EVENT_KINDS)}"
                )
            event_cls, keys = _EVENT_KINDS[kind]
            kwargs: dict = {"at_s": float(at_text)}
            for option in options:
                key, eq, value = option.partition("=")
                if not eq or key not in keys:
                    raise ValueError(
                        f"bad chaos option {option!r} for {kind!r}; "
                        f"known: {sorted(keys)}"
                    )
                name, cast = keys[key]
                kwargs[name] = cast(value)
            events.append(event_cls(**kwargs))
        return cls(events=tuple(events))

    def describe(self) -> str:
        if not self.events:
            return "no chaos"
        return ", ".join(event.describe() for event in self.events)

    def spec_string(self) -> str:
        """The compact form :meth:`parse` accepts (for spec files)."""
        parts = []
        for event in self.events:
            _, keys = _EVENT_KINDS[event.kind]
            options = "".join(
                f":{key}={_format_option(value)}"
                for key, (name, _) in keys.items()
                for value in (getattr(event, name),)
                # shard=None means "not shard-scoped" — omitted so that
                # pre-sharding schedules round-trip to the same string.
                if not (key == "shard" and value is None)
            )
            parts.append(f"{event.kind}@{event.at_s:g}{options}")
        return ",".join(parts)


class ChaosController:
    """Fires a schedule's events against one run's targets and logs them."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        cluster: Optional["Cluster"] = None,
        deployment: Optional["ModelDeployment"] = None,
        service: Optional["ClusterIPService"] = None,
        servers: Optional[Sequence["EtudeInferenceServer"]] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.simulator = simulator
        self.cluster = cluster
        self.deployment = deployment
        self.service = service
        self.servers = list(servers) if servers is not None else None
        self.telemetry = telemetry
        #: Chronological log of fired events (for ``RunResult.resilience``).
        self.fired: List[Dict] = []
        #: Zone outages with their victim pod names, for the availability
        #: section's time-to-recovery accounting.
        self.zone_outages: List[Dict] = []
        self._counters: Dict[str, object] = {}
        self._next_chaos_trace_id = -1

    # -- target helpers -----------------------------------------------------

    def server(self, pod_index: int) -> Optional["EtudeInferenceServer"]:
        if self.deployment is not None:
            pods = self.deployment.pods
            if not pods:
                return None
            return pods[pod_index % len(pods)].server
        if self.servers:
            return self.servers[pod_index % len(self.servers)]
        return None

    def crash_pod(
        self,
        pod_index: int,
        restart_after_s: Optional[float],
        shard: Optional[int] = None,
    ) -> None:
        if self.cluster is not None and self.deployment is not None:
            pods = self.deployment.pods
            if not pods:
                return
            if shard is None:
                target = pod_index % len(pods)
            else:
                # Crash within one shard's replica group (partial-coverage
                # experiments). No pods on that shard: nothing to crash.
                group = [
                    index for index, pod in enumerate(pods) if pod.shard == shard
                ]
                if not group:
                    return
                target = group[pod_index % len(group)]
            self.cluster.inject_pod_failure(
                self.deployment,
                target,
                at_time=self.simulator.now,
                restart_after=restart_after_s,
            )
            return
        # Bare-server runs deploy one server per shard, so a shard-scoped
        # crash targets that server directly.
        server = self.server(pod_index if shard is None else shard)
        if server is None:
            raise ValueError(
                "crash chaos requires a cluster+deployment or bare servers"
            )
        server.crash()
        if restart_after_s is not None:
            self.simulator.call_in(restart_after_s, server.recover)

    def crash_zone(
        self, zone: str, restart_after_s: Optional[float]
    ) -> List[str]:
        """Crash every pod whose node sits in ``zone``, simultaneously.

        Returns the victim pod names (empty when the zone hosts nothing —
        e.g. the deployment was placed with ``zones=1``). The correlated
        loss is also appended to :attr:`zone_outages` so the experiment
        driver can compute time-to-recovery from the pods' readiness
        timestamps.
        """
        if self.cluster is None or self.deployment is None:
            raise ValueError(
                "zone chaos requires a cluster deployment placed with "
                "zones > 1 (bare servers have no failure domains)"
            )
        now = self.simulator.now
        targets = [
            index
            for index, pod in enumerate(self.deployment.pods)
            if pod.zone == zone
        ]
        for index in targets:
            self.cluster.inject_pod_failure(
                self.deployment,
                index,
                at_time=now,
                restart_after=restart_after_s,
            )
        names = [self.deployment.pods[index].name for index in targets]
        self.zone_outages.append(
            {
                "zone": zone,
                "at_s": now,
                "pods": names,
                "restart_after_s": restart_after_s,
            }
        )
        if self.telemetry is not None and names:
            self.telemetry.metrics.counter(
                "availability_zone_outages_total",
                unit="events",
                help="correlated zone-outage events injected",
            ).inc()
            self.telemetry.metrics.counter(
                "availability_pods_lost_total",
                unit="pods",
                help="pods crashed by zone outages",
            ).inc(len(names))
        return names

    # -- bookkeeping --------------------------------------------------------

    def note(self, event: ChaosEvent, **detail) -> None:
        """Log a fired event, bump its counter, record a run-level span."""
        at = self.simulator.now
        self.fired.append({"at_s": at, "kind": event.kind, **detail})
        if self.telemetry is None:
            return
        counter = self._counters.get(event.kind)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "chaos_events_total",
                unit="events",
                labels={"kind": event.kind},
                help="chaos-schedule events fired during the run",
            )
            self._counters[event.kind] = counter
        counter.inc()
        span = self.telemetry.trace.begin(
            event.span_name or f"chaos_{event.kind}",
            self._next_chaos_trace_id,
            **detail,
        )
        self._next_chaos_trace_id -= 1
        end = at + (detail.get("duration_s") or 0.0)
        span.finish(at=end)

    @property
    def events_fired(self) -> int:
        return len(self.fired)
