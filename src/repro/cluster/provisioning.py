"""One-time infrastructure provisioning (the paper's ``make infra``).

"We automate the cloud infrastructure management via a make infra command,
which provisions and configures essential components such as a Kubernetes
cluster, Google Storage and the addition of service accounts ... this setup
is a one-time operation, which can be reused for multiple experiments."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.kubernetes import Cluster
from repro.cluster.storage import StorageBucket
from repro.simulation import RandomStreams, Simulator


@dataclass
class Infrastructure:
    """Everything a benchmark experiment needs, provisioned once."""

    simulator: Simulator
    streams: RandomStreams
    bucket: StorageBucket
    cluster: Cluster
    service_accounts: List[str] = field(default_factory=list)

    def reset_simulator(self, cluster_rng=None) -> None:
        """Fresh virtual clock for the next experiment, same bucket/streams.

        ``cluster_rng`` (optional) replaces the infrastructure-lifetime
        ``"cluster"`` stream for the next experiment. The experiment driver
        passes a per-run derivation (``streams.fork(spec.seed)``) so every
        run's randomness — pod provisioning jitter, per-server noise seeds —
        is a pure function of ``(infra seed, spec seed)`` instead of how
        many runs happened on this infrastructure before. That hermeticity
        is what lets the parallel execution backend evaluate runs in child
        processes and still produce bit-identical results to a serial sweep
        (see ``docs/parallelism.md``).
        """
        self.simulator = Simulator()
        if cluster_rng is None:
            cluster_rng = self.streams.stream("cluster")
        self.cluster = Cluster(self.simulator, self.bucket, cluster_rng)


def make_infra(seed: int = 1234, bucket_name: str = "etude-artifacts") -> Infrastructure:
    """Provision the cluster, the storage bucket and service accounts."""
    simulator = Simulator()
    streams = RandomStreams(seed)
    bucket = StorageBucket(bucket_name)
    cluster = Cluster(simulator, bucket, streams.stream("cluster"))
    return Infrastructure(
        simulator=simulator,
        streams=streams,
        bucket=bucket,
        cluster=cluster,
        service_accounts=["etude-runner@repro.iam", "etude-results@repro.iam"],
    )
