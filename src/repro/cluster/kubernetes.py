"""Cluster, nodes, pods, deployments, readiness probes.

Mirrors the paper's flow: "ETUDE will then deploy the model onto a
dedicated machine in Kubernetes. Once the model deployment is finished
(determined via Kubernetes's readiness probes), a ClusterIP service
interface is deployed ...". Deployment timing: node provisioning (Autopilot
spins up a machine), artifact download from the storage bucket, model load
+ (optional) JIT warm-up, then the readiness probe flips and the pod joins
the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cache.tier import RemoteCacheTier
from repro.cluster.storage import StorageBucket
from repro.hardware.instances import InstanceType
from repro.hardware.latency_model import LatencyModel, ServiceTimeProfile
from repro.serving.actix import EtudeInferenceServer
from repro.serving.batching import BatchingConfig
from repro.serving.profiles import ActixProfile
from repro.sharding.config import ShardingConfig
from repro.sharding.merge import ShardScorer
from repro.simulation import Signal, Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.tenancy.fleet import TenantServing


class DeploymentError(RuntimeError):
    """The deployment cannot run on the requested hardware."""


def zone_name(index: int) -> str:
    """Canonical failure-domain name for a zone index (``z0``, ``z1``, ...)."""
    return f"z{index}"


@dataclass
class Pod:
    """One serving replica on one node."""

    name: str
    instance_type: InstanceType
    server: Optional[EtudeInferenceServer] = None
    ready: bool = False
    ready_at: float = float("inf")
    #: Catalog shard this replica serves (0 on unsharded deployments).
    shard: int = 0
    #: Failure domain (availability zone) hosting this pod's node. Empty on
    #: single-zone deployments — the pre-zone default. Kubelet restarts
    #: reuse the Pod object, so a restarted pod keeps its home zone.
    zone: str = ""


@dataclass(frozen=True)
class AuxiliaryFleet:
    """A CPU pod pool riding beside a GPU primary fleet.

    The heterogeneous scheduler's deployment shape: the same model and
    artifact, served from non-batching CPU pods with their own (CPU)
    service-time profile. The pool shares the deployment's readiness
    signal, restart path and ClusterIP service; the dispatcher decides
    which class answers which request.
    """

    instance_type: InstanceType
    replicas: int
    service_profile: ServiceTimeProfile
    resident_bytes: float

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("auxiliary replicas must be >= 1")
        if self.instance_type.device.is_accelerator:
            raise ValueError(
                "the auxiliary fleet is the CPU side of a heterogeneous "
                f"deployment; {self.instance_type.name} is an accelerator"
            )


class ModelDeployment:
    """A replicated model-serving deployment."""

    def __init__(
        self,
        name: str,
        pods: List[Pod],
        ready_signal: Signal,
        restart_context: Optional[dict] = None,
        sharding: Optional[ShardingConfig] = None,
        zones: int = 1,
    ):
        self.name = name
        self.pods = pods
        self.ready_signal = ready_signal
        #: Everything needed to restart a crashed pod (kept by the cluster).
        self.restart_context = restart_context or {}
        #: Catalog-sharding config; None or S=1 means unsharded.
        self.sharding = sharding
        #: Failure domains the fleet is spread over (1 = no zone topology).
        self.zones = zones

    @property
    def shards(self) -> int:
        return self.sharding.shards if self.sharding is not None else 1

    @property
    def zone_names(self) -> List[str]:
        """The distinct failure domains hosting pods, in index order."""
        return [zone_name(index) for index in range(self.zones)] if self.zones > 1 else []

    def pods_in_zone(self, zone: str) -> List[Pod]:
        return [pod for pod in self.pods if pod.zone == zone]

    @property
    def heterogeneous(self) -> bool:
        """True when the fleet mixes accelerator and CPU pods."""
        classes = {
            pod.instance_type.device.is_accelerator for pod in self.pods
        }
        return len(classes) > 1

    @property
    def ready_pods(self) -> List[Pod]:
        return [pod for pod in self.pods if pod.ready]

    @property
    def all_ready(self) -> bool:
        return all(pod.ready for pod in self.pods)


class Cluster:
    """The Kubernetes cluster (Autopilot-style: nodes appear on demand)."""

    #: Node provisioning time range (Autopilot cold starts), seconds.
    PROVISION_MIN_S = 25.0
    PROVISION_MAX_S = 75.0
    #: Fixed pod startup cost: image pull + container boot, seconds.
    POD_BOOT_S = 8.0
    #: Model load rate from local disk into (device) memory, bytes/second.
    MODEL_LOAD_BANDWIDTH = 400e6

    def __init__(
        self,
        simulator: Simulator,
        bucket: StorageBucket,
        rng: np.random.Generator,
    ):
        self.simulator = simulator
        self.bucket = bucket
        self.rng = rng
        self.deployments: List[ModelDeployment] = []
        self._pod_counter = 0

    # -- feasibility ------------------------------------------------------------

    @staticmethod
    def fit_batching(
        instance_type: InstanceType,
        resident_bytes: float,
        score_bytes_per_item: float,
        requested: Optional[BatchingConfig] = None,
    ) -> BatchingConfig:
        """Cap the batching buffer so batched score tensors fit device memory.

        Real GPU serving sizes the batch to the device: with a C-item
        catalog every batched request materializes a C-float score vector.
        Raises :class:`DeploymentError` when not even a single request fits.
        """
        requested = requested or BatchingConfig()
        device = instance_type.device
        if not device.is_accelerator:
            return requested
        reserve = 2e9
        available = device.memory_bytes - resident_bytes - reserve
        if score_bytes_per_item <= 0:
            return requested
        max_fit = int(available // score_bytes_per_item)
        if max_fit < 1:
            raise DeploymentError(
                f"model ({resident_bytes / 1e9:.1f} GB resident) leaves no room "
                f"for even one batched request on {device.name} "
                f"({device.memory_bytes / 1e9:.0f} GB)"
            )
        return BatchingConfig(
            max_batch_size=min(requested.max_batch_size, max_fit),
            max_delay_s=requested.max_delay_s,
        )

    @staticmethod
    def check_fit(
        instance_type: InstanceType,
        resident_bytes: float,
        max_batch: int,
        score_bytes_per_item: float,
    ) -> None:
        """Raise :class:`DeploymentError` if the model cannot be resident.

        On GPUs: parameters + the batched score buffers + runtime reserve
        must fit device memory. On CPUs: parameters must fit RAM.
        """
        device = instance_type.device
        model = LatencyModel(device)
        if device.is_accelerator:
            if not model.fits_in_memory(resident_bytes, max_batch, score_bytes_per_item):
                raise DeploymentError(
                    f"model ({resident_bytes / 1e9:.1f} GB resident) does not fit "
                    f"{device.name} memory ({device.memory_bytes / 1e9:.0f} GB) "
                    f"with batch {max_batch}"
                )
        elif resident_bytes + 4e9 > instance_type.ram_bytes:
            raise DeploymentError(
                f"model ({resident_bytes / 1e9:.1f} GB) does not fit "
                f"{instance_type.name} RAM ({instance_type.ram_bytes / 1e9:.0f} GB)"
            )

    # -- deployment --------------------------------------------------------------

    def deploy_model(
        self,
        name: str,
        instance_type: InstanceType,
        replicas: int,
        artifact_path: str,
        service_profile: ServiceTimeProfile,
        resident_bytes: float,
        score_bytes_per_item: float,
        batching: Optional[BatchingConfig] = None,
        server_profile: Optional[ActixProfile] = None,
        model=None,
        jit_warmup_s: float = 0.0,
        load_bytes: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
        sharding: Optional[ShardingConfig] = None,
        index_build_s: float = 0.0,
        auxiliary: Optional[AuxiliaryFleet] = None,
        zones: int = 1,
        tenants: Optional[Sequence["TenantServing"]] = None,
        tenant_fair_depth: int = 64,
    ) -> ModelDeployment:
        """Create a deployment; pods become ready asynchronously.

        Wait on ``deployment.ready_signal`` (the readiness-probe equivalent)
        before routing traffic.

        With ``sharding`` enabled, ``replicas`` is *per shard*:
        ``shards * replicas`` pods come up, grouped by shard, and the
        caller is expected to pass the per-shard ``service_profile`` /
        ``resident_bytes`` / ``score_bytes_per_item`` (each pod hosts one
        catalog slice, not the whole table).

        ``index_build_s`` charges ANN index construction (k-means training
        + list assignment) on every pod before its readiness probe flips —
        also on restarts, since the artifact stores embeddings, not the
        trained index.

        ``auxiliary`` adds a CPU pod pool beside an accelerator primary
        fleet (the heterogeneous scheduler's shape): same artifact and
        model, the pool's own CPU service profile, shared readiness
        signal. Mutually exclusive with ``sharding`` — every pod must hold
        the full catalog so either class can answer any request.

        ``tenants`` co-locates a tenant fleet on every replica
        (``docs/tenancy.md``): each pod's server gets its *own* clones of
        the tenant serving states (rollouts bump versions pod by pod), and
        the caller passes the fleet's *summed* resident footprint as
        ``resident_bytes`` so the fit checks above price the co-location.
        Mutually exclusive with ``sharding`` and ``auxiliary``.

        ``zones > 1`` spreads the fleet over that many failure domains
        with a round-robin anti-affinity policy: within each shard's
        replica group, consecutive replicas land in consecutive zones, so
        no two replicas of a shard co-locate whenever
        ``replicas <= zones`` (and the per-zone spread never differs by
        more than one replica otherwise). Kubelet restarts return a pod to
        its home zone. ``zones=1`` (the default) assigns no zone at all —
        byte-identical to a deployment that predates zone topology.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if zones < 1:
            raise ValueError("zones must be >= 1")
        shards = sharding.shards if sharding is not None and sharding.enabled else 1
        if tenants is not None:
            if shards > 1:
                raise DeploymentError(
                    "a tenant fleet does not compose with catalog sharding: "
                    "every replica hosts every tenant's full artifact"
                )
            if auxiliary is not None:
                raise DeploymentError(
                    "a tenant fleet does not compose with a heterogeneous "
                    "auxiliary pool"
                )
        if auxiliary is not None:
            if shards > 1:
                raise DeploymentError(
                    "a heterogeneous fleet does not compose with catalog "
                    "sharding: CPU pods must hold the full catalog to "
                    "answer any request the dispatcher sends them"
                )
            if not instance_type.device.is_accelerator:
                raise DeploymentError(
                    "an auxiliary CPU pool requires an accelerator primary "
                    f"fleet; the primary is {instance_type.name}"
                )
            self.check_fit(
                auxiliary.instance_type, auxiliary.resident_bytes, 1,
                score_bytes_per_item,
            )
        batching = self.fit_batching(
            instance_type, resident_bytes, score_bytes_per_item, batching
        )
        self.check_fit(
            instance_type,
            resident_bytes,
            batching.max_batch_size,
            score_bytes_per_item,
        )
        if not self.bucket.exists(artifact_path):
            raise DeploymentError(f"artifact {artifact_path!r} not in bucket")

        # One shared remote cache tier per deployment (memcached-style
        # sidecar); every pod reaches the same store over a network hop.
        remote_cache = None
        if (
            server_profile is not None
            and server_profile.cache is not None
            and server_profile.cache.remote_capacity > 0
        ):
            remote_cache = RemoteCacheTier(server_profile.cache)

        pods: List[Pod] = []
        ready_signal = Signal(f"{name}-ready")
        aux_replicas = auxiliary.replicas if auxiliary is not None else 0
        remaining = {"count": shards * replicas + aux_replicas}
        for pod_index in range(shards * replicas):
            shard = pod_index // replicas
            self._pod_counter += 1
            pod = Pod(
                name=f"{name}-{self._pod_counter}",
                instance_type=instance_type,
                shard=shard,
                # Round-robin spread: replica r of shard s lands in zone
                # (s * replicas + r) % zones, so a shard's replicas occupy
                # distinct zones whenever replicas <= zones.
                zone=zone_name(pod_index % zones) if zones > 1 else "",
            )
            pods.append(pod)
            self.simulator.spawn(
                self._start_pod(
                    pod,
                    artifact_path,
                    service_profile,
                    batching,
                    server_profile,
                    self._model_for_shard(model, sharding, shard),
                    jit_warmup_s,
                    ready_signal,
                    remaining,
                    load_bytes,
                    telemetry,
                    remote_cache,
                    index_build_s,
                    tenants=tenants,
                    tenant_fair_depth=tenant_fair_depth,
                )
            )
        for aux_index in range(aux_replicas):
            self._pod_counter += 1
            pod = Pod(
                name=f"{name}-cpu-{self._pod_counter}",
                instance_type=auxiliary.instance_type,
                zone=zone_name((shards * replicas + aux_index) % zones)
                if zones > 1
                else "",
            )
            pods.append(pod)
            self.simulator.spawn(
                self._start_pod(
                    pod,
                    artifact_path,
                    auxiliary.service_profile,
                    batching,
                    server_profile,
                    model,
                    jit_warmup_s,
                    ready_signal,
                    remaining,
                    load_bytes,
                    telemetry,
                    remote_cache,
                    index_build_s,
                )
            )
        deployment = ModelDeployment(
            name=name,
            pods=pods,
            ready_signal=ready_signal,
            restart_context={
                "artifact_path": artifact_path,
                "service_profile": service_profile,
                "batching": batching,
                "server_profile": server_profile,
                "model": model,
                "jit_warmup_s": jit_warmup_s,
                "load_bytes": load_bytes,
                "telemetry": telemetry,
                "remote_cache": remote_cache,
                "sharding": sharding,
                "index_build_s": index_build_s,
                "auxiliary": auxiliary,
                "zones": zones,
                "tenants": tenants,
                "tenant_fair_depth": tenant_fair_depth,
            },
            sharding=sharding if shards > 1 else None,
            zones=zones,
        )
        self.deployments.append(deployment)
        return deployment

    @staticmethod
    def _clone_tenants(
        tenants: Optional[Sequence["TenantServing"]],
    ) -> Optional[Dict[str, "TenantServing"]]:
        """Per-pod copies of the deployment's tenant table (or None)."""
        if tenants is None:
            return None
        return {serving.name: serving.clone() for serving in tenants}

    @staticmethod
    def _model_for_shard(model, sharding: Optional[ShardingConfig], shard: int):
        """Scope a real model object to one pod's catalog slice."""
        if model is None or sharding is None or not sharding.enabled:
            return model
        return ShardScorer(model, shard, sharding.shards)

    # -- failure injection -------------------------------------------------------

    def inject_pod_failure(
        self,
        deployment: ModelDeployment,
        pod_index: int,
        at_time: float,
        restart_after: Optional[float] = 20.0,
    ) -> None:
        """Crash one pod at ``at_time``; the kubelet restarts it after
        ``restart_after`` seconds (None: stays dead).

        On crash the pod drops out of the ClusterIP rotation, its queued
        requests fail with HTTP errors, and in-flight ones fail on
        completion (lost connections). Restart replays the container boot +
        model load sequence on the surviving node — no re-provisioning.
        """
        pod = deployment.pods[pod_index]

        def crash() -> None:
            pod.ready = False
            if pod.server is not None:
                pod.server.crash()
            if restart_after is not None:
                self.simulator.spawn(self._restart_pod(deployment, pod, restart_after))

        self.simulator.call_at(at_time, crash)

    def add_pod(self, deployment: ModelDeployment) -> Pod:
        """Scale a deployment up by one pod (full node provisioning path).

        Used by the autoscaler; the new pod joins the ClusterIP rotation
        once its readiness probe flips.
        """
        context = deployment.restart_context
        instance_type = deployment.pods[0].instance_type
        self._pod_counter += 1
        # On a sharded deployment the new replica reinforces whichever
        # shard currently has the fewest pods (lowest index on ties).
        shard_counts = {shard: 0 for shard in range(deployment.shards)}
        for existing in deployment.pods:
            shard_counts[existing.shard] = shard_counts.get(existing.shard, 0) + 1
        shard = min(shard_counts, key=lambda s: (shard_counts[s], s))
        # Zone spread on scale-up: place the new replica in the zone where
        # its shard currently has the fewest pods (lowest index on ties),
        # preserving the anti-affinity invariant as far as capacity allows.
        zone = ""
        if deployment.zones > 1:
            zone_counts = {name_: 0 for name_ in deployment.zone_names}
            for existing in deployment.pods:
                if existing.shard == shard and existing.zone in zone_counts:
                    zone_counts[existing.zone] += 1
            zone = min(zone_counts, key=lambda z: (zone_counts[z], z))
        pod = Pod(
            name=f"{deployment.name}-{self._pod_counter}",
            instance_type=instance_type,
            shard=shard,
            zone=zone,
        )
        deployment.pods.append(pod)
        self.simulator.spawn(
            self._start_pod(
                pod,
                context["artifact_path"],
                context["service_profile"],
                context["batching"],
                context["server_profile"],
                self._model_for_shard(
                    context["model"], context.get("sharding"), shard
                ),
                context["jit_warmup_s"],
                Signal(f"{pod.name}-ready"),
                {"count": 1},
                context["load_bytes"],
                context.get("telemetry"),
                context.get("remote_cache"),
                context.get("index_build_s", 0.0),
                tenants=context.get("tenants"),
                tenant_fair_depth=context.get("tenant_fair_depth", 64),
            )
        )
        return pod

    @staticmethod
    def remove_pod(deployment: ModelDeployment) -> Optional[Pod]:
        """Scale down by one pod: take the newest ready pod out of rotation
        (it finishes its queued work, but receives no new traffic)."""
        ready = deployment.ready_pods
        if len(ready) <= 1:
            return None
        victim = ready[-1]
        victim.ready = False
        return victim

    def _restart_pod(self, deployment: ModelDeployment, pod: Pod, delay: float):
        context = deployment.restart_context
        yield delay
        # Boot + artifact download + model load (node already provisioned).
        _payload, transfer_s = self.bucket.download(context["artifact_path"])
        load_bytes = context["load_bytes"]
        if load_bytes is None:
            load_bytes = self.bucket.blob_size(context["artifact_path"])
        yield (
            self.POD_BOOT_S
            + transfer_s
            + load_bytes / self.MODEL_LOAD_BANDWIDTH
            + context["jit_warmup_s"]
            + context.get("index_build_s", 0.0)
        )
        pod.server = EtudeInferenceServer(
            simulator=self.simulator,
            device=pod.instance_type.device,
            service_profile=self._profile_for_pod(context, pod),
            rng=np.random.default_rng(self.rng.integers(2**63)),
            profile=context["server_profile"],
            batching=context["batching"],
            model=self._model_for_shard(
                context["model"], context.get("sharding"), pod.shard
            ),
            name=f"{pod.name}-restarted",
            telemetry=context.get("telemetry"),
            artifact_version=context["artifact_path"],
            remote_cache=context.get("remote_cache"),
            tenants=self._clone_tenants(context.get("tenants")),
            tenant_fair_depth=context.get("tenant_fair_depth", 64),
        )
        pod.ready = True
        pod.ready_at = self.simulator.now

    @staticmethod
    def _profile_for_pod(context: dict, pod: Pod) -> ServiceTimeProfile:
        """The service profile matching a pod's device class.

        On a heterogeneous deployment the CPU pool runs the auxiliary
        fleet's (CPU-calibrated) profile; everything else uses the primary
        one.
        """
        auxiliary = context.get("auxiliary")
        if auxiliary is not None and not pod.instance_type.device.is_accelerator:
            return auxiliary.service_profile
        return context["service_profile"]

    def _start_pod(
        self,
        pod: Pod,
        artifact_path: str,
        service_profile: ServiceTimeProfile,
        batching: BatchingConfig,
        server_profile: Optional[ActixProfile],
        model,
        jit_warmup_s: float,
        ready_signal: Signal,
        remaining: dict,
        load_bytes: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
        remote_cache: Optional[RemoteCacheTier] = None,
        index_build_s: float = 0.0,
        tenants: Optional[Sequence["TenantServing"]] = None,
        tenant_fair_depth: int = 64,
    ):
        # 1. Autopilot provisions a node for the pod.
        yield float(self.rng.uniform(self.PROVISION_MIN_S, self.PROVISION_MAX_S))
        # 2. Container boot + artifact download + model load. The virtual
        # catalog means the stored artifact can be smaller than the logical
        # model; ``load_bytes`` charges the logical footprint. ANN index
        # construction (``index_build_s``) happens here too: the artifact
        # ships embeddings, each pod trains its own inverted file.
        _payload, transfer_s = self.bucket.download(artifact_path)
        effective_bytes = (
            load_bytes if load_bytes is not None else self.bucket.blob_size(artifact_path)
        )
        load_s = effective_bytes / self.MODEL_LOAD_BANDWIDTH
        yield self.POD_BOOT_S + transfer_s + load_s + jit_warmup_s + index_build_s
        # 3. Server comes up; the readiness probe flips. Each pod owns
        # fresh clones of the tenant serving states: rollouts bump
        # versions pod by pod, so the state cannot be shared.
        pod.server = EtudeInferenceServer(
            simulator=self.simulator,
            device=pod.instance_type.device,
            service_profile=service_profile,
            rng=np.random.default_rng(self.rng.integers(2**63)),
            profile=server_profile,
            batching=batching,
            model=model,
            name=pod.name,
            telemetry=telemetry,
            artifact_version=artifact_path,
            remote_cache=remote_cache,
            tenants=self._clone_tenants(tenants),
            tenant_fair_depth=tenant_fair_depth,
        )
        pod.ready = True
        pod.ready_at = self.simulator.now
        remaining["count"] -= 1
        if remaining["count"] == 0:
            ready_signal.fire()
