"""Kubernetes/GCP-like deployment substrate.

Replaces the paper's Google Kubernetes Engine setup with an API-faithful
simulation: a :class:`~repro.cluster.kubernetes.Cluster` provisions nodes of
the catalog instance types, runs model-serving pods with readiness probes,
and exposes them through a round-robin
:class:`~repro.cluster.service.ClusterIPService`. Model artifacts are
fetched from the :class:`~repro.cluster.storage.StorageBucket` during pod
startup, exactly like the paper's deployment flow (serialized models in a
Google storage bucket).
"""

from repro.cluster.storage import StorageBucket
from repro.cluster.kubernetes import (
    Cluster,
    DeploymentError,
    ModelDeployment,
    Pod,
)
from repro.cluster.routing import RoutingPolicy
from repro.cluster.service import ClusterIPService
from repro.cluster.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosSchedule,
    CrashStorm,
    NetworkDelay,
    PodCrash,
    SlowNode,
    ZoneOutage,
)
from repro.cluster.provisioning import Infrastructure, make_infra
from repro.cluster.autoscaler import (
    AutoscalerConfig,
    HorizontalPodAutoscaler,
    ScalingEvent,
)

__all__ = [
    "StorageBucket",
    "Cluster",
    "Pod",
    "ModelDeployment",
    "DeploymentError",
    "ClusterIPService",
    "RoutingPolicy",
    "ChaosSchedule",
    "ChaosController",
    "ChaosEvent",
    "PodCrash",
    "CrashStorm",
    "SlowNode",
    "NetworkDelay",
    "ZoneOutage",
    "Infrastructure",
    "make_infra",
    "AutoscalerConfig",
    "HorizontalPodAutoscaler",
    "ScalingEvent",
]
