"""The ClusterIP service: round-robin routing plus network latency.

"Once the model deployment is finished ... a ClusterIP service interface is
deployed for allowing access to the serving machine. Next, the load
generator is deployed on another machine, from which it sends the
corresponding recommendation requests ... via the service interface."
Intra-cluster network latency is sub-millisecond on GCP; both directions
are charged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.cluster.kubernetes import ModelDeployment
from repro.serving.request import (
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
    ResponseCallback,
)
from repro.simulation import Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


class ClusterIPService:
    """Round-robin load balancing over the ready pods of a deployment."""

    #: One-way network latency between load generator and serving pod.
    NETWORK_LATENCY_S = 2.5e-4
    NETWORK_JITTER_SIGMA = 0.3

    def __init__(
        self,
        simulator: Simulator,
        deployment: ModelDeployment,
        rng: np.random.Generator,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.simulator = simulator
        self.deployment = deployment
        self.rng = rng
        self._round_robin = 0
        self.routed = 0
        self.rejected_no_backend = 0
        #: Additional one-way latency injected by chaos schedules
        #: (transient degradation of the client→server leg). 0.0 = nominal
        #: and bit-exact: adding 0.0 never changes a latency.
        self.extra_latency_s = 0.0
        #: Optional telemetry handle; None = zero overhead.
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            self._routed_counter = metrics.counter(
                "service_routed_total", unit="requests",
                help="requests forwarded to a ready pod",
            )
            self._rejected_counter = metrics.counter(
                "service_rejected_no_backend_total", unit="requests",
                help="503s answered because no pod was in rotation",
            )
            metrics.gauge(
                "service_ready_pods",
                fn=lambda: len(self.deployment.ready_pods),
                unit="pods",
                help="pods currently in the ClusterIP rotation",
            )

    def _network_delay(self) -> float:
        return (
            self.NETWORK_LATENCY_S
            * float(self.rng.lognormal(0.0, self.NETWORK_JITTER_SIGMA))
            + self.extra_latency_s
        )

    def submit(
        self, request: RecommendationRequest, respond: ResponseCallback
    ) -> None:
        pods = self.deployment.ready_pods
        if not pods:
            if not self.deployment.ready_signal.fired:
                raise RuntimeError(
                    "no ready pods; wait for the deployment's readiness signal"
                )
            # All pods down after a failure: the service answers 503.
            self.rejected_no_backend += 1
            if self.telemetry is not None:
                self._rejected_counter.inc()
            self.simulator.call_in(
                self._network_delay(),
                lambda: respond(
                    RecommendationResponse(
                        request_id=request.request_id,
                        status=HTTP_SERVICE_UNAVAILABLE,
                        completed_at=self.simulator.now,
                        latency_s=self.simulator.now - request.sent_at,
                    )
                ),
            )
            return
        pod = pods[self._round_robin % len(pods)]
        self._round_robin += 1
        self.routed += 1
        if self.telemetry is not None:
            self._routed_counter.inc()

        def respond_via_network(response: RecommendationResponse) -> None:
            def deliver() -> None:
                now = self.simulator.now
                response.completed_at = now
                response.latency_s = now - request.sent_at
                respond(response)

            self.simulator.call_in(self._network_delay(), deliver)

        self.simulator.call_in(
            self._network_delay(),
            lambda: pod.server.submit(request, respond_via_network),
        )
