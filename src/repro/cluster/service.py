"""The ClusterIP service: request routing plus network latency.

"Once the model deployment is finished ... a ClusterIP service interface is
deployed for allowing access to the serving machine. Next, the load
generator is deployed on another machine, from which it sends the
corresponding recommendation requests ... via the service interface."
Intra-cluster network latency is sub-millisecond on GCP; both directions
are charged — including on 503s answered by the service itself when no
pod is in rotation (the request still crosses the network twice).

Routing defaults to the paper's plain round-robin over the instantaneously
known ready pods. An optional
:class:`~repro.cluster.routing.RoutingPolicy` adds production behaviours
(all default-off, see ``docs/overload.md``): endpoint-propagation lag,
least-outstanding-requests selection, and passive outlier ejection with
half-open probe re-entry (the circuit breaker).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.cluster.kubernetes import ModelDeployment, Pod, zone_name
from repro.cluster.routing import RoutingPolicy, partition_by_shard
from repro.hardware.latency_model import NetworkHop, ShardMergeCost
from repro.sharding.config import shard_bounds
from repro.sharding.gather import ScatterGatherAggregator
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
    ResponseCallback,
)
from repro.simulation import Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.scheduler.dispatch import QueryDispatcher

#: Trace ids for service-level spans (ejections/probes) sit in their own
#: negative range so they can never collide with request ids (>= 0) or the
#: chaos controller's ids (-1, -2, ...).
_SERVICE_SPAN_ID_START = -100_000


class _PodRoutingState:
    """Per-pod health bookkeeping (only maintained under a RoutingPolicy)."""

    __slots__ = (
        "in_flight",
        "consecutive_failures",
        "ejected_until",
        "probing",
        "last_seen_ready",
    )

    def __init__(self):
        self.in_flight = 0
        self.consecutive_failures = 0
        #: None = in rotation; a time = ejected until then (then half-open).
        self.ejected_until: Optional[float] = None
        #: True while the single half-open probe request is outstanding.
        self.probing = False
        #: Last virtual time the pod was observed ready (endpoint lag).
        self.last_seen_ready = float("-inf")


class ClusterIPService:
    """Load balancing over the ready pods of a deployment."""

    #: One-way network latency between load generator and serving pod.
    NETWORK_LATENCY_S = 2.5e-4
    NETWORK_JITTER_SIGMA = 0.3
    #: Deterministic per-direction surcharge on a leg that crosses a
    #: failure domain (the service VIP lives in the home zone, ``z0``).
    #: Only charged on deployments placed with ``zones > 1``.
    CROSS_ZONE_EXTRA_S = NetworkHop.cross_zone_extra_s

    def __init__(
        self,
        simulator: Simulator,
        deployment: ModelDeployment,
        rng: np.random.Generator,
        telemetry: Optional["Telemetry"] = None,
        routing: Optional[RoutingPolicy] = None,
        top_k: int = 20,
        catalog_size: Optional[int] = None,
        merge_cost: Optional[ShardMergeCost] = None,
        dispatcher: Optional["QueryDispatcher"] = None,
    ):
        self.simulator = simulator
        self.deployment = deployment
        self.rng = rng
        self._round_robin = 0
        #: Heterogeneous scheduler front (None = the paper's single-class
        #: routing, bit-identical to the pre-scheduler service). When set,
        #: the dispatcher picks the pod *class* per request and the
        #: configured discipline balances within that class.
        self.dispatcher = dispatcher
        self._class_cursors: Dict[str, int] = {"cpu": 0, "gpu": 0}
        self.routed = 0
        self.rejected_no_backend = 0
        #: Health-aware routing (None = the paper's plain round-robin,
        #: bit-identical to the pre-routing service).
        self.routing = routing
        self.ejections = 0
        self.probe_recoveries = 0
        self._pod_states: Dict[str, _PodRoutingState] = {}
        self._next_span_id = _SERVICE_SPAN_ID_START
        #: Additional one-way latency injected by chaos schedules
        #: (transient degradation of the client→server leg). 0.0 = nominal
        #: and bit-exact: adding 0.0 never changes a latency.
        self.extra_latency_s = 0.0
        #: Zone topology of the backing deployment. The service VIP (and
        #: the load generator behind it) lives in the first zone; legs to
        #: pods elsewhere pay the cross-zone surcharge. 1 = no topology,
        #: and every zone branch below is skipped entirely (bit-identity).
        self._zones = getattr(deployment, "zones", 1)
        self.home_zone = zone_name(0) if self._zones > 1 else ""
        #: One-way pod legs that crossed a zone boundary (request and
        #: response directions count separately).
        self.cross_zone_legs = 0
        self._cross_zone_counter = None
        #: Optional telemetry handle; None = zero overhead.
        self.telemetry = telemetry
        self._ejected_counter = None
        if telemetry is not None:
            metrics = telemetry.metrics
            self._routed_counter = metrics.counter(
                "service_routed_total", unit="requests",
                help="requests forwarded to a ready pod",
            )
            self._rejected_counter = metrics.counter(
                "service_rejected_no_backend_total", unit="requests",
                help="503s answered because no pod was in rotation",
            )
            metrics.gauge(
                "service_ready_pods",
                fn=lambda: len(self.deployment.ready_pods),
                unit="pods",
                help="pods currently in the ClusterIP rotation",
            )
            if routing is not None and routing.eject_after is not None:
                self._ejected_counter = metrics.counter(
                    "pod_ejected_total", unit="ejections",
                    help="pods ejected from rotation by the outlier breaker",
                )
            if self._zones > 1:
                self._cross_zone_counter = metrics.counter(
                    "availability_cross_zone_legs_total", unit="legs",
                    help="one-way pod legs that crossed a zone boundary",
                )
        # Scatter-gather front for sharded deployments. None on S=1: the
        # request path below is then byte-for-byte the pre-sharding one.
        self.aggregator: Optional[ScatterGatherAggregator] = None
        self._shard_cursors: Dict[int, int] = {}
        if getattr(deployment, "shards", 1) > 1:
            shards = deployment.shards
            if catalog_size is not None and catalog_size > 0:
                fractions = [
                    (hi - lo) / catalog_size
                    for lo, hi in shard_bounds(catalog_size, shards)
                ]
            else:
                fractions = None
            self.aggregator = ScatterGatherAggregator(
                simulator=simulator,
                config=deployment.sharding,
                shard_submits=[
                    self._shard_submit(shard) for shard in range(shards)
                ],
                network_delay=self._network_delay,
                top_k=top_k,
                coverage_fractions=fractions,
                merge_cost=merge_cost,
                telemetry=telemetry,
            )

    def _network_delay(self) -> float:
        return (
            self.NETWORK_LATENCY_S
            * float(self.rng.lognormal(0.0, self.NETWORK_JITTER_SIGMA))
            + self.extra_latency_s
        )

    def _cross_zone_extra(self, pod: Pod) -> float:
        """Per-direction surcharge for a leg leaving the home zone.

        0.0 on single-zone deployments and for home-zone pods — and the
        zero case is never *added* anywhere: callers branch on it, so the
        single-zone event sequence is byte-identical to the pre-zone one.
        """
        if self._zones <= 1 or pod.zone == self.home_zone:
            return 0.0
        return self.CROSS_ZONE_EXTRA_S

    def _note_cross_zone(self, legs: int = 1) -> None:
        self.cross_zone_legs += legs
        if self._cross_zone_counter is not None:
            self._cross_zone_counter.inc(legs)

    def _pod_network_delay(self, pod: Pod) -> float:
        """One network leg to/from a specific pod, zone charged honestly."""
        extra = self._cross_zone_extra(pod)
        if extra > 0.0:
            self._note_cross_zone()
            return self._network_delay() + extra
        return self._network_delay()

    # -- routing ------------------------------------------------------------

    def _state(self, pod: Pod) -> _PodRoutingState:
        state = self._pod_states.get(pod.name)
        if state is None:
            state = _PodRoutingState()
            self._pod_states[pod.name] = state
        return state

    def _routing_view(self) -> List[Pod]:
        """The pods the router believes are ready.

        With ``endpoint_lag_s`` set, a pod that dropped out of readiness
        (crash, scale-down) lingers in the view for that long — the
        endpoint-propagation window in which real load balancers keep
        sending traffic into a dead backend. Newly ready pods join
        immediately (joining late only hurts availability).
        """
        now = self.simulator.now
        lag = self.routing.endpoint_lag_s
        view: List[Pod] = []
        for pod in self.deployment.pods:
            state = self._state(pod)
            if pod.ready:
                state.last_seen_ready = now
                view.append(pod)
            elif (
                lag > 0.0
                and pod.server is not None
                and now - state.last_seen_ready < lag
            ):
                view.append(pod)
        return view

    def _select_pod(self, view: List[Pod]) -> Pod:
        """Pick a pod from the routing view per the configured policy.

        Ejection filter first (expired-cooldown pods come back as
        half-open candidates, one probe at a time), then fail-open when
        everything is ejected, then the discipline (round-robin cursor or
        least-outstanding-requests with a stable tie-break).
        """
        policy = self.routing
        now = self.simulator.now
        candidates: List[Pod] = []
        if policy.eject_after is not None:
            for pod in view:
                state = self._state(pod)
                if state.ejected_until is not None:
                    if now < state.ejected_until or state.probing:
                        continue
                candidates.append(pod)
        else:
            candidates = view
        if not candidates:
            # Fail-open (Envoy's max_ejection_percent guardrail): a fully
            # ejected rotation routes as if the breaker did not exist.
            candidates = view
        if policy.discipline == "lor":
            pod = min(candidates, key=lambda p: self._state(p).in_flight)
        else:
            pod = candidates[self._round_robin % len(candidates)]
        self._round_robin += 1
        state = self._state(pod)
        if state.ejected_until is not None and now >= state.ejected_until:
            state.probing = True  # the half-open probe is this request
        state.in_flight += 1
        return pod

    def _observe(self, pod: Pod, response: RecommendationResponse) -> None:
        """Passive health tracking: digest one response from ``pod``."""
        policy = self.routing
        state = self._state(pod)
        state.in_flight = max(state.in_flight - 1, 0)
        if policy.eject_after is None:
            return
        probe = state.probing
        state.probing = False
        if response.status == HTTP_OK:
            state.consecutive_failures = 0
            if state.ejected_until is not None:
                # Half-open probe succeeded: back into the rotation.
                state.ejected_until = None
                self.probe_recoveries += 1
                if self.telemetry is not None:
                    self._service_span("pod_recovered", pod=pod.name)
            return
        if response.status != HTTP_SERVICE_UNAVAILABLE:
            return
        state.consecutive_failures += 1
        if probe or state.consecutive_failures >= policy.eject_after:
            # A failed half-open probe re-ejects immediately; otherwise
            # ejection triggers on the consecutive-failure threshold.
            already_out = (
                state.ejected_until is not None
                and self.simulator.now < state.ejected_until
            )
            state.ejected_until = self.simulator.now + policy.cooldown_s
            if not already_out:
                self.ejections += 1
                if self.telemetry is not None:
                    if self._ejected_counter is not None:
                        self._ejected_counter.inc()
                    self._service_span(
                        "pod_ejected",
                        pod=pod.name,
                        failures=state.consecutive_failures,
                        probe=probe,
                        duration_s=policy.cooldown_s,
                    )

    def _service_span(self, name: str, **attrs) -> None:
        duration = attrs.get("duration_s") or 0.0
        span = self.telemetry.trace.begin(name, self._next_span_id, **attrs)
        self._next_span_id -= 1
        span.finish(at=self.simulator.now + duration)

    def pod_ejected(self, pod: Pod) -> bool:
        """Is ``pod`` currently sitting out an ejection cooldown?"""
        state = self._pod_states.get(pod.name)
        return (
            state is not None
            and state.ejected_until is not None
            and self.simulator.now < state.ejected_until
        )

    # -- sharded request path ------------------------------------------------

    def _shard_submit(self, shard_index: int):
        """Submit target for one shard leg: route within the shard's pods.

        Every routing discipline (round-robin cursor, LOR, ejection,
        endpoint lag) applies *within* the shard group — a request must
        reach each shard exactly once, so there is nothing to balance
        across shards. A shard with no pod in view answers an immediate
        503 for its leg (connection refused; the aggregator has already
        charged the network legs).
        """

        def submit(
            sub_request: RecommendationRequest, respond: ResponseCallback
        ) -> None:
            if self.routing is None:
                view = self.deployment.ready_pods
            else:
                view = self._routing_view()
            pods = partition_by_shard(view).get(shard_index, [])
            if not pods:
                respond(
                    RecommendationResponse(
                        request_id=sub_request.request_id,
                        status=HTTP_SERVICE_UNAVAILABLE,
                        completed_at=self.simulator.now,
                        latency_s=self.simulator.now - sub_request.sent_at,
                        coverage=0.0,
                    )
                )
                return
            if self.routing is None:
                cursor = self._shard_cursors.get(shard_index, 0)
                pod = pods[cursor % len(pods)]
                self._shard_cursors[shard_index] = cursor + 1
            else:
                pod = self._select_pod(pods)

            # The aggregator charges the zone-neutral fan-out legs; a
            # replica outside the home zone costs the surcharge extra in
            # each direction (surviving replicas absorbing a dead zone's
            # traffic pay for the distance, honestly).
            extra = self._cross_zone_extra(pod)

            def observe_and_respond(response: RecommendationResponse) -> None:
                if self.routing is not None:
                    self._observe(pod, response)
                if extra > 0.0:
                    self.simulator.call_in(extra, lambda: respond(response))
                else:
                    respond(response)

            if extra > 0.0:
                self._note_cross_zone(2)
                self.simulator.call_in(
                    extra,
                    lambda: pod.server.submit(
                        sub_request, observe_and_respond
                    ),
                )
            else:
                pod.server.submit(sub_request, observe_and_respond)

        return submit

    def _submit_sharded(
        self, request: RecommendationRequest, respond: ResponseCallback
    ) -> None:
        """Fan one request out to every shard via the aggregation tier.

        Legs: client -> aggregator (charged here), aggregator <-> each
        shard pod in parallel plus the merge cost (charged by the
        aggregator — the response waits for the slowest shard), and
        aggregator -> client (charged on delivery below).
        """
        if not self.deployment.ready_signal.fired:
            raise RuntimeError(
                "no ready pods; wait for the deployment's readiness signal"
            )
        self.routed += 1
        if self.telemetry is not None:
            self._routed_counter.inc()

        def deliver(response: RecommendationResponse) -> None:
            def arrive() -> None:
                now = self.simulator.now
                response.completed_at = now
                response.latency_s = now - request.sent_at
                respond(response)

            self.simulator.call_in(self._network_delay(), arrive)

        self.simulator.call_in(
            self._network_delay(),
            lambda: self.aggregator.scatter(request, deliver),
        )

    # -- request path -------------------------------------------------------

    def submit(
        self, request: RecommendationRequest, respond: ResponseCallback
    ) -> None:
        if self.aggregator is not None:
            self._submit_sharded(request, respond)
            return
        if self.routing is None:
            pods = self.deployment.ready_pods
        else:
            pods = self._routing_view()
        if not pods:
            if not self.deployment.ready_signal.fired:
                raise RuntimeError(
                    "no ready pods; wait for the deployment's readiness signal"
                )
            # All pods down after a failure: the service answers 503. The
            # request still crosses the network both ways ("both
            # directions are charged"), and the rejection is traced like a
            # routed request so it shows up in span exports.
            self.rejected_no_backend += 1
            if self.telemetry is not None:
                self._rejected_counter.inc()

            def arrive() -> None:
                if self.telemetry is not None:
                    self.telemetry.trace.begin(
                        "sent", request.request_id, at=request.sent_at,
                        no_backend=True,
                    ).finish(at=self.simulator.now)
                self.simulator.call_in(
                    self._network_delay(),
                    lambda: respond(
                        RecommendationResponse(
                            request_id=request.request_id,
                            status=HTTP_SERVICE_UNAVAILABLE,
                            completed_at=self.simulator.now,
                            latency_s=self.simulator.now - request.sent_at,
                        )
                    ),
                )

            self.simulator.call_in(self._network_delay(), arrive)
            return
        route: Optional[str] = None
        if self.dispatcher is not None:
            gpu_pods = [
                p for p in pods if p.instance_type.device.is_accelerator
            ]
            cpu_pods = [
                p for p in pods if not p.instance_type.device.is_accelerator
            ]
            route = self.dispatcher.route(
                request, self.simulator.now, bool(cpu_pods), bool(gpu_pods)
            )
            group = cpu_pods if route == "cpu" else gpu_pods
            if self.routing is None:
                cursor = self._class_cursors[route]
                pod = group[cursor % len(group)]
                self._class_cursors[route] = cursor + 1
            else:
                pod = self._select_pod(group)
        elif self.routing is None:
            pod = pods[self._round_robin % len(pods)]
            self._round_robin += 1
        else:
            pod = self._select_pod(pods)
        self.routed += 1
        if self.telemetry is not None:
            self._routed_counter.inc()

        def respond_via_network(response: RecommendationResponse) -> None:
            if self.routing is not None:
                self._observe(pod, response)

            def deliver() -> None:
                now = self.simulator.now
                response.completed_at = now
                response.latency_s = now - request.sent_at
                if self.dispatcher is not None and route is not None:
                    self.dispatcher.observe(route, response)
                respond(response)

            self.simulator.call_in(self._pod_network_delay(pod), deliver)

        self.simulator.call_in(
            self._pod_network_delay(pod),
            lambda: pod.server.submit(request, respond_via_network),
        )
