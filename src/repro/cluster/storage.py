"""An in-memory stand-in for the Google storage bucket.

Stores model artifacts (serialized state dicts) and experiment results.
Reads report a transfer duration so pod startup times include the artifact
download, as on the real platform.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class StorageBucket:
    """Blob storage with simulated transfer timing."""

    #: Sustained artifact download bandwidth (GCS to GCE, bytes/second).
    DOWNLOAD_BANDWIDTH = 200e6

    def __init__(self, name: str = "etude-artifacts"):
        self.name = name
        self._blobs: Dict[str, bytes] = {}

    def upload(self, path: str, payload: bytes) -> None:
        if not path:
            raise ValueError("blob path must be non-empty")
        self._blobs[path] = bytes(payload)

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def download(self, path: str) -> Tuple[bytes, float]:
        """Return ``(payload, transfer_seconds)``."""
        try:
            payload = self._blobs[path]
        except KeyError:
            raise KeyError(f"no blob at gs://{self.name}/{path}") from None
        return payload, len(payload) / self.DOWNLOAD_BANDWIDTH

    def blob_size(self, path: str) -> int:
        return len(self._blobs[path])

    def list_blobs(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._blobs if path.startswith(prefix))

    def delete(self, path: str) -> None:
        self._blobs.pop(path, None)
