"""Task kinds the execution backends know how to run.

A task is a ``(key, kind, payload)`` triple; this module maps each
``kind`` to a handler. Handlers run in two modes:

- **in-parent** (serial backend): ``context`` is the live orchestrator —
  the :class:`~repro.core.planner.DeploymentPlanner` for
  ``plan_candidate`` tasks, the :class:`~repro.core.experiment.ExperimentRunner`
  for ``experiment_run`` tasks — and the handler uses it directly, so the
  parent's registry memoization works exactly as before.
- **in-worker** (multiprocessing backend): ``context`` is ``None``. The
  handler rebuilds its orchestrator from the picklable payload, cached
  per worker process, with a **fresh registry** shared across that
  worker's tasks. New memo entries (recalls, traces, profiles) are
  shipped back with each result so the parent can fold them into its own
  cache and never re-measure a repeated candidate.

Handlers import their subject modules lazily — ``repro.core`` imports
``repro.exec`` for the backend interface, so eager imports here would be
circular.

Everything a handler returns must be picklable and a pure function of
the payload (see ``docs/parallelism.md`` for the determinism contract).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

_HANDLERS: Dict[str, Callable] = {}


def task_kind(name: str):
    """Register a handler: ``fn(payload, context) -> (value, memos)``."""

    def register(fn):
        _HANDLERS[name] = fn
        return fn

    return register


def run_task(kind: str, payload: dict, context: Any = None) -> Tuple[Any, Optional[dict]]:
    """Execute one task; returns ``(value, shipped_memos_or_None)``."""
    try:
        handler = _HANDLERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown task kind {kind!r}; known: {sorted(_HANDLERS)}"
        )
    return handler(payload, context)


# -- worker-process state -----------------------------------------------------
#
# A pool worker serves many tasks; rebuilding an ExperimentRunner (and
# re-tracing every model) per task would erase the parallel speedup. Each
# worker keeps one registry plus per-seed runners and per-parameter
# planners, all module-level so they survive across tasks. The
# MultiprocessingBackend's pool initializer calls reset_worker_state() so
# a fork()ed child never inherits the parent's half-warm caches — every
# worker starts from the same cold, deterministic state.

_worker_registry = None
_worker_runners: Dict[tuple, Any] = {}
_worker_planners: Dict[str, Any] = {}
#: Memo keys already shipped to the parent from this worker, per section.
_shipped: Dict[str, set] = {}


def reset_worker_state() -> None:
    """Drop all cached worker state (pool initializer; also for tests)."""
    global _worker_registry
    _worker_registry = None
    _worker_runners.clear()
    _worker_planners.clear()
    _shipped.clear()


def _registry():
    global _worker_registry
    if _worker_registry is None:
        from repro.core.registry import AssetRegistry

        _worker_registry = AssetRegistry()
    return _worker_registry


def _collect_memos() -> Optional[dict]:
    """Memo entries computed since this worker's last shipment."""
    if _worker_registry is None:
        return None
    memos = _worker_registry.export_memos(skip=_shipped)
    for section, delta in memos.items():
        _shipped.setdefault(section, set()).update(delta)
    return memos or None


def _worker_runner(seed: int):
    key = ("runner", seed)
    if key not in _worker_runners:
        from repro.core.experiment import ExperimentRunner

        _worker_runners[key] = ExperimentRunner(registry=_registry(), seed=seed)
    return _worker_runners[key]


def _worker_planner(params: dict):
    key = repr(sorted(params.items(), key=lambda item: item[0]))
    if key not in _worker_planners:
        from repro.core.planner import DeploymentPlanner
        from repro.exec.backend import SerialBackend

        _worker_planners[key] = DeploymentPlanner(
            runner=_worker_runner(params["runner_seed"]),
            slo=params["slo"],
            duration_s=params["duration_s"],
            max_replicas=params["max_replicas"],
            repetitions=params["repetitions"],
            cache=params["cache"],
            min_recall=params["min_recall"],
            survive_zones=params["survive_zones"],
            # Workers never fan out again — no nested process pools.
            backend=SerialBackend(),
        )
    return _worker_planners[key]


# -- task kinds ---------------------------------------------------------------


@task_kind("plan_candidate")
def _plan_candidate(payload: dict, context: Any):
    """One planner candidate: (model, instance, shards, retrieval, scheduler).

    ``context`` (serial) is the parent DeploymentPlanner; workers rebuild
    an equivalent planner from ``payload["params"]``. Both paths call the
    same ``evaluate_candidate``, so the CandidateOutcome — key string,
    option, infeasibility message — is bit-identical by construction.
    """
    from repro.hardware.instances import instance_by_name

    planner = context if context is not None else _worker_planner(payload["params"])
    outcome = planner.evaluate_candidate(
        payload["model"],
        payload["scenario"],
        instance_by_name(payload["instance"]),
        shards=payload["shards"],
        retrieval=payload["retrieval"],
        scheduler=payload["scheduler"],
    )
    memos = None if context is not None else _collect_memos()
    return outcome, memos


@task_kind("experiment_run")
def _experiment_run(payload: dict, context: Any):
    """One benchmark-grid cell: run an ExperimentSpec, return the RunResult.

    An undeployable cell (DeploymentError) returns an error marker dict
    instead of raising — grid sweeps record infeasibility per cell, they
    don't abort the sweep.
    """
    from repro.cluster.kubernetes import DeploymentError

    spec = payload["spec"]
    repetitions = payload.get("repetitions", 1)
    runner = context if context is not None else _worker_runner(payload["seed"])
    try:
        if repetitions > 1:
            value = runner.run_repeated(spec, repetitions=repetitions)
        else:
            value = runner.run(spec)
    except DeploymentError as error:
        value = {"deployment_error": str(error)}
    memos = None if context is not None else _collect_memos()
    return value, memos
