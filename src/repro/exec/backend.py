"""Execution backends: run keyed tasks serially or on a process pool.

Both backends satisfy one contract — ``run_tasks(tasks)`` returns one
:class:`TaskOutcome` per task **in submission order**, with values that
are bit-identical across backends and worker counts:

- tasks are independent and keyed; duplicate keys are rejected up front;
- each worker process rebuilds its orchestrator from the picklable
  payload with its own seeded ``random_streams`` derivation and a fresh
  registry (see ``repro.exec.tasks``), so a result never depends on which
  worker ran the task or what ran before it;
- the multiprocessing pool consumes completions out of order but the
  parent slots them back by submission index, so merge order — and
  therefore everything downstream: ``cheapest()``, report tables, JSON
  dumps — is independent of completion order.

``docs/parallelism.md`` documents the contract and its costs (pickling
constraints, when mp loses to serial outright).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.config import BackendConfig, resolve_backend
from repro.exec.tasks import reset_worker_state, run_task


@dataclass(frozen=True)
class ExecTask:
    """One isolated unit of work: a unique key, a kind, a picklable payload."""

    key: Tuple
    kind: str
    payload: dict = field(default_factory=dict)


@dataclass
class TaskOutcome:
    """Result of one task, returned in submission order."""

    key: Tuple
    value: Any = None
    #: Registry memo delta computed by the worker (None in-parent).
    memos: Optional[dict] = None
    #: Formatted traceback when the task raised; ``value`` is None then.
    error: Optional[str] = None
    wall_s: float = 0.0
    #: Executor identity ("parent" or "pid:<n>") — observability only;
    #: values never depend on it.
    worker: str = "parent"

    @property
    def ok(self) -> bool:
        return self.error is None


class ExecError(RuntimeError):
    """A task failed; carries the task key and the child traceback."""

    def __init__(self, key: Tuple, detail: str):
        super().__init__(f"task {key!r} failed:\n{detail}")
        self.key = key
        self.detail = detail


def _check_unique_keys(tasks: Sequence[ExecTask]) -> None:
    seen = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate task key: {task.key!r}")
        seen.add(task.key)


def _observe(
    telemetry,
    backend_name: str,
    workers: int,
    outcomes: Sequence[TaskOutcome],
) -> None:
    """Emit the exec_task spans and per-backend counters for one batch.

    Always called from the parent, in submission order, so telemetry is
    as deterministic as the results themselves (wall-clock span
    attributes aside).
    """
    if telemetry is None:
        return
    labels = {"backend": backend_name}
    completed = telemetry.metrics.counter(
        "exec_tasks_total", help="tasks executed, by backend", labels=labels
    )
    failed = telemetry.metrics.counter(
        "exec_task_failures_total",
        help="tasks that raised, by backend",
        labels=labels,
    )
    gauge = telemetry.metrics.gauge(
        "exec_workers", help="workers used by the last task batch", labels=labels
    )
    gauge.set(workers)
    for index, outcome in enumerate(outcomes):
        span = telemetry.trace.begin(
            "exec_task",
            trace_id=index,
            key=str(outcome.key),
            backend=backend_name,
            worker=outcome.worker,
        )
        telemetry.trace.finish(span, wall_s=outcome.wall_s, ok=outcome.ok)
        completed.inc()
        if not outcome.ok:
            failed.inc()


def _raise_first_error(outcomes: Sequence[TaskOutcome]) -> None:
    for outcome in outcomes:
        if outcome.error is not None:
            raise ExecError(outcome.key, outcome.error)


class SerialBackend:
    """In-process execution in submission order — the reference backend."""

    name = "serial"

    def __init__(self):
        self.config = BackendConfig(kind="serial")

    def run_tasks(
        self,
        tasks: Sequence[ExecTask],
        context: Any = None,
        telemetry=None,
        raise_on_error: bool = True,
    ) -> List[TaskOutcome]:
        _check_unique_keys(tasks)
        outcomes: List[TaskOutcome] = []
        for task in tasks:
            started = time.perf_counter()
            try:
                value, memos = run_task(task.kind, task.payload, context)
                outcome = TaskOutcome(key=task.key, value=value, memos=memos)
            except Exception:
                outcome = TaskOutcome(key=task.key, error=traceback.format_exc())
            outcome.wall_s = time.perf_counter() - started
            outcomes.append(outcome)
        _observe(telemetry, self.name, 1, outcomes)
        if raise_on_error:
            _raise_first_error(outcomes)
        return outcomes


def _invoke_task(packed: Tuple[int, str, dict, Tuple]) -> Tuple[int, Any, Optional[dict], Optional[str], float, str]:
    """Pool target: run one task in the worker, fully self-describing.

    Module-level so it pickles under both fork and spawn start methods.
    ``context`` is always None here — workers rebuild orchestrators from
    the payload (repro.exec.tasks caches them per process).
    """
    import os

    index, kind, payload, _key = packed
    started = time.perf_counter()
    try:
        value, memos = run_task(kind, payload, None)
        error = None
    except Exception:
        value, memos = None, None
        error = traceback.format_exc()
    wall_s = time.perf_counter() - started
    return index, value, memos, error, wall_s, f"pid:{os.getpid()}"


class MultiprocessingBackend:
    """Fan tasks out to a process pool; merge deterministically.

    Uses the ``fork`` start method where available (Linux — cheap, no
    re-import) and falls back to ``spawn``. Results arrive unordered
    (``imap_unordered``) and are slotted back by submission index.
    """

    name = "mp"

    def __init__(self, workers: int = 0, start_method: Optional[str] = None):
        self.config = BackendConfig(kind="mp", workers=workers)
        self._start_method = start_method

    def _pool_context(self):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def run_tasks(
        self,
        tasks: Sequence[ExecTask],
        context: Any = None,
        telemetry=None,
        raise_on_error: bool = True,
    ) -> List[TaskOutcome]:
        _check_unique_keys(tasks)
        if not tasks:
            return []
        workers = min(self.config.effective_workers(), len(tasks))
        packed = [
            (index, task.kind, task.payload, task.key)
            for index, task in enumerate(tasks)
        ]
        slots: List[Optional[TaskOutcome]] = [None] * len(tasks)
        ctx = self._pool_context()
        # initializer resets worker caches: a fork()ed child must not
        # inherit the parent's half-warm registries (determinism does not
        # require the reset — memo values are pure functions of their
        # keys — but cold workers keep speedup measurements honest).
        with ctx.Pool(processes=workers, initializer=reset_worker_state) as pool:
            for index, value, memos, error, wall_s, worker in pool.imap_unordered(
                _invoke_task, packed, chunksize=1
            ):
                slots[index] = TaskOutcome(
                    key=tasks[index].key,
                    value=value,
                    memos=memos,
                    error=error,
                    wall_s=wall_s,
                    worker=worker,
                )
        outcomes = [outcome for outcome in slots if outcome is not None]
        if len(outcomes) != len(tasks):  # pragma: no cover - pool invariant
            raise RuntimeError("process pool dropped task results")
        _observe(telemetry, self.name, workers, outcomes)
        if raise_on_error:
            _raise_first_error(outcomes)
        return outcomes


Backend = Union[SerialBackend, MultiprocessingBackend]


def make_backend(
    spec: Optional[Union[str, BackendConfig, SerialBackend, MultiprocessingBackend]] = None,
) -> Backend:
    """Build a backend from a spec string / config / existing backend.

    ``None`` defers to ``ETUDE_BACKEND``, then the serial default
    (:func:`repro.exec.config.resolve_backend`).
    """
    if isinstance(spec, (SerialBackend, MultiprocessingBackend)):
        return spec
    config = resolve_backend(spec)
    if config.kind == "serial":
        return SerialBackend()
    return MultiprocessingBackend(workers=config.workers)
