"""Execution-backend selection: the ``--backend`` grammar and env override.

Grammar (shared by the CLI flag, spec files and ``ETUDE_BACKEND``)::

    serial              evaluate tasks in-process, in submission order
    mp                  multiprocessing pool, one worker per host core
    mp:workers=N        multiprocessing pool with exactly N workers

Resolution order for :func:`resolve_backend`: an explicit spec (CLI flag,
constructor argument) wins, then the ``ETUDE_BACKEND`` environment
variable, then the serial default. Whatever the backend, results are
bit-identical — see ``docs/parallelism.md`` for the determinism contract.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "ETUDE_BACKEND"

_KINDS = ("serial", "mp")


@dataclass(frozen=True)
class BackendConfig:
    """Parsed backend selection: kind plus worker count (mp only)."""

    kind: str = "serial"
    #: Worker processes for ``mp`` (0 = one per host core).
    workers: int = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per host core)")
        if self.kind == "serial" and self.workers not in (0, 1):
            raise ValueError("the serial backend runs exactly one worker")

    @property
    def parallel(self) -> bool:
        return self.kind != "serial"

    def effective_workers(self) -> int:
        """The worker-process count this config resolves to on this host."""
        if self.kind == "serial":
            return 1
        return self.workers or (os.cpu_count() or 1)

    @classmethod
    def parse(cls, text: str) -> "BackendConfig":
        """Parse the ``serial`` / ``mp[:workers=N]`` grammar."""
        spec = (text or "serial").strip().lower()
        kind, _, options = spec.partition(":")
        kind = kind.strip() or "serial"
        if kind not in _KINDS:
            raise ValueError(
                f"unknown backend {kind!r}; expected 'serial' or 'mp[:workers=N]'"
            )
        workers = 0
        if options:
            for part in options.split(","):
                part = part.strip()
                if not part:
                    continue
                name, eq, value = part.partition("=")
                if name.strip() != "workers" or not eq:
                    raise ValueError(
                        f"unknown backend option {part!r}; expected 'workers=N'"
                    )
                try:
                    workers = int(value.strip())
                except ValueError:
                    raise ValueError(f"workers must be an integer: {value!r}")
                if workers < 1:
                    raise ValueError("workers must be >= 1")
            if kind == "serial":
                raise ValueError("the serial backend takes no options")
        return cls(kind=kind, workers=workers)

    def spec_string(self) -> str:
        """The canonical spec string (``parse`` round-trips it)."""
        if self.kind == "serial":
            return "serial"
        return f"mp:workers={self.workers}" if self.workers else "mp"


def resolve_backend(
    spec: Optional[Union[str, BackendConfig]] = None,
) -> BackendConfig:
    """Explicit spec > ``ETUDE_BACKEND`` env var > serial default."""
    if isinstance(spec, BackendConfig):
        return spec
    if spec is not None:
        return BackendConfig.parse(spec)
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        return BackendConfig.parse(env)
    return BackendConfig()
