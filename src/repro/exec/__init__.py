"""Pluggable parallel execution for plan sweeps and benchmark grids.

Independent candidate evaluations and grid cells run as keyed, isolated
tasks on a selectable backend — ``serial`` (in-process, the reference)
or ``mp[:workers=N]`` (process pool) — with a deterministic merge: the
same inputs produce bit-identical plans and results on every backend,
at every worker count. Select with ``--backend`` on ``run``/``plan`` or
the ``ETUDE_BACKEND`` env var; see ``docs/parallelism.md``.
"""

from repro.exec.backend import (
    Backend,
    ExecError,
    ExecTask,
    MultiprocessingBackend,
    SerialBackend,
    TaskOutcome,
    make_backend,
)
from repro.exec.config import BACKEND_ENV_VAR, BackendConfig, resolve_backend
from repro.exec.tasks import reset_worker_state, run_task, task_kind

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendConfig",
    "ExecError",
    "ExecTask",
    "MultiprocessingBackend",
    "SerialBackend",
    "TaskOutcome",
    "make_backend",
    "resolve_backend",
    "reset_worker_state",
    "run_task",
    "task_kind",
]
