"""ETUDE reproduction — evaluating the inference latency of session-based
recommendation models at scale (Kersbergen et al., ICDE 2024).

Public API façade. Typical use::

    from repro import (
        ExperimentRunner, ExperimentSpec, HardwareSpec, SCENARIOS,
        DeploymentPlanner, serial_microbenchmark, run_infra_test,
    )

    runner = ExperimentRunner()
    result = runner.run(
        ExperimentSpec(
            model="gru4rec",
            catalog_size=1_000_000,
            target_rps=500,
            hardware=HardwareSpec("GPU-T4", replicas=1),
            duration_s=600.0,
        )
    )
    print(result.p90_at_target_ms, result.meets_slo(p90_limit_ms=50))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    SCENARIOS,
    SLO,
    DeploymentPlanner,
    ExperimentRunner,
    ExperimentSpec,
    HardwareSpec,
    InfraTestResult,
    MicrobenchResult,
    Scenario,
    run_infra_test,
    scenario_by_name,
    serial_microbenchmark,
)
from repro.hardware import CPU_E2, GPU_A100, GPU_T4, INSTANCE_TYPES, instance_by_name
from repro.metrics import RunResult
from repro.models import (
    BENCHMARK_MODELS,
    HEALTHY_MODELS,
    MODEL_REGISTRY,
    ModelConfig,
    SessionRecModel,
    create_model,
)
from repro.workload import (
    ClickLog,
    SyntheticWorkloadGenerator,
    WorkloadStatistics,
    generate_synthetic_sessions,
    synthesize_real_clicklog,
)
from repro.ann import AnnSessionRecModel, IVFFlatIndex, recall_at_k
from repro.hardware.clouds import cloud_catalog
from repro.tensor.quantization import quantize_model

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ExperimentRunner",
    "ExperimentSpec",
    "HardwareSpec",
    "SLO",
    "Scenario",
    "SCENARIOS",
    "scenario_by_name",
    "DeploymentPlanner",
    "serial_microbenchmark",
    "MicrobenchResult",
    "run_infra_test",
    "InfraTestResult",
    "RunResult",
    # models
    "create_model",
    "ModelConfig",
    "SessionRecModel",
    "MODEL_REGISTRY",
    "BENCHMARK_MODELS",
    "HEALTHY_MODELS",
    # hardware
    "CPU_E2",
    "GPU_T4",
    "GPU_A100",
    "INSTANCE_TYPES",
    "instance_by_name",
    # workload
    "WorkloadStatistics",
    "SyntheticWorkloadGenerator",
    "generate_synthetic_sessions",
    "ClickLog",
    "synthesize_real_clicklog",
    # future-work extensions
    "quantize_model",
    "AnnSessionRecModel",
    "IVFFlatIndex",
    "recall_at_k",
    "cloud_catalog",
]
