"""Per-shard cost derivation: full-catalog assets -> one shard's assets.

The registry profiles every model against the *full* catalog. A shard
replica only scans its slice, so its service time, memory footprint and
score traffic shrink — that is the whole point of capacity-driven
scale-out. These helpers derive the per-shard view from the full-catalog
cost trace instead of re-tracing, by rescaling exactly the records the
tensor layer tagged as catalog-proportional (``catalog_scale != 1``).

Honesty caveats, both conservative (never flatter sharding):

- Every derived profile uses the *largest* shard's slice
  (``ceil(C/S)/C``), because the scatter-gather tail is set by the
  slowest shard.
- For catalogs at or below the virtualization limit the scoring scan is
  materialized 1:1 (``catalog_scale == 1``) and cannot be told apart
  from encoder work, so each shard is charged the **full** scan cost.
  Sharding only pays off in the latency model for catalogs above the
  limit — which is exactly the regime the planner targets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.hardware.device import DeviceModel
from repro.hardware.latency_model import LatencyModel, ServiceTimeProfile
from repro.sharding.config import largest_shard_fraction
from repro.tensor.ops import CostTrace


def shard_cost_trace(trace: CostTrace, fraction: float) -> CostTrace:
    """Rescale the catalog-proportional records of a trace to one shard.

    Records with ``catalog_scale == 1`` (encoder work, and the scan
    itself for small catalogs) pass through untouched.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    records = [
        record
        if record.catalog_scale == 1.0
        else replace(record, catalog_scale=record.catalog_scale * fraction)
        for record in trace
    ]
    return CostTrace(records=records)


def shard_service_profile(
    trace: CostTrace,
    device: DeviceModel,
    catalog_size: int,
    shards: int,
    resident_bytes: float,
) -> ServiceTimeProfile:
    """Fold a full-catalog trace into the largest shard's profile."""
    fraction = largest_shard_fraction(catalog_size, shards)
    sharded = shard_cost_trace(trace, fraction)
    return LatencyModel(device).profile(sharded, resident_bytes=resident_bytes)


def shard_resident_bytes(
    resident_bytes: float,
    catalog_size: int,
    embedding_dim: int,
    shards: int,
) -> float:
    """Largest shard's deployed footprint.

    The logical item table splits across shards; every other parameter
    (encoder weights) is replicated on each shard replica.
    """
    fraction = largest_shard_fraction(catalog_size, shards)
    table_virtual = catalog_size * embedding_dim * 4.0
    other = max(resident_bytes - table_virtual, 0.0)
    return table_virtual * fraction + other


def shard_score_bytes_per_item(
    score_bytes_per_item: float, catalog_size: int, shards: int
) -> float:
    """Largest shard's per-request score-buffer traffic."""
    return score_bytes_per_item * largest_shard_fraction(catalog_size, shards)
