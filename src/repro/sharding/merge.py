"""Exact scatter-gather top-k: shard-local scoring and global merge.

Exactness argument: each item belongs to exactly one shard, so the true
global top-k is a subset of the union of the per-shard top-k lists
(every global winner is a local winner of its own shard, since fewer
competitors can only improve its local rank). Merging the union under
the same total order as the per-shard selection therefore recovers the
exact global top-k.

Ties are the only subtlety. ``F.topk`` (argpartition + argsort) is not
id-stable under equal scores, so this module defines its own total
order — descending score, ascending item id — and uses it on *both*
sides (shard-local selection and global merge). The property test in
``tests/sharding/test_merge_property.py`` exercises exactly this
contract, adversarially including ties that straddle shard boundaries.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.sharding.config import shard_bounds
from repro.tensor.tensor import Tensor


def topk_by_score(
    ids: np.ndarray, scores: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` of ``(ids, scores)`` under the (-score, id) total order.

    Returns ``(top_ids, top_scores)`` sorted by descending score, ties
    broken by ascending id — a deterministic refinement of the ordering
    ``F.topk`` produces (identical whenever scores are distinct).
    """
    ids = np.asarray(ids)
    scores = np.asarray(scores)
    if ids.shape != scores.shape:
        raise ValueError("ids and scores must have matching shapes")
    k = min(int(k), ids.shape[0])
    if k <= 0:
        return ids[:0], scores[:0]
    # lexsort sorts by the last key first: primary descending score,
    # secondary ascending id.
    order = np.lexsort((ids, -scores))[:k]
    return ids[order], scores[order]


def merge_topk(
    shard_results: Sequence[Tuple[np.ndarray, np.ndarray]], k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(ids, scores)`` candidates into the global top-k.

    Exact as long as every shard contributed its own top-``k`` under the
    (-score, id) order (partial fan-outs merge whatever coverage they
    have — exact over the covered slice of the catalog).
    """
    pairs = [pair for pair in shard_results if pair[0].shape[0] > 0]
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.float64)
    all_ids = np.concatenate([ids for ids, _ in pairs])
    all_scores = np.concatenate([scores for _, scores in pairs])
    return topk_by_score(all_ids, all_scores, k)


class ShardScorer:
    """A shard replica's view of a model: score only this shard's slice.

    Wraps a :class:`~repro.models.base.SessionRecModel`, runs the full
    session encoder, but restricts the maximum-inner-product search to
    the shard's contiguous slice of the score vector and returns
    *global* item ids. Only models with a separable scoring head can be
    sharded this way; models that fuse scoring into ``forward``
    (``supports_quantized_head == False``) are rejected up front.
    """

    def __init__(self, model, shard_index: int, shards: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= shard_index < shards:
            raise ValueError("shard_index must be in [0, shards)")
        if not getattr(model, "supports_quantized_head", False):
            raise ValueError(
                f"model {model.name!r} fuses its scoring head into forward(); "
                "catalog sharding needs a separable encode/score split"
            )
        self.model = model
        self.shard_index = shard_index
        self.shards = shards
        self.top_k = model.top_k

    def recommend_with_scores(
        self, session_items: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Shard-local top-k as ``(global_ids, scores)``.

        The slice is taken over the *materialized* score vector (the
        scoring table caps at the virtualization limit), so ids line up
        with what the unsharded model would return.
        """
        model = self.model
        padded, length = model.prepare_inputs(session_items)
        session_repr = model.encode_session(Tensor(padded), Tensor(length))
        scores = model.score_catalog(session_repr).numpy()
        lo, hi = shard_bounds(scores.shape[-1], self.shards)[self.shard_index]
        local_ids = np.arange(lo, hi, dtype=np.int64)
        return topk_by_score(local_ids, scores[lo:hi], self.top_k)

    def recommend(self, session_items: Sequence[int]) -> np.ndarray:
        return self.recommend_with_scores(session_items)[0]


def build_shard_scorers(model, shards: int) -> List[ShardScorer]:
    """One :class:`ShardScorer` per shard over a shared model instance."""
    return [ShardScorer(model, index, shards) for index in range(shards)]
