"""Catalog sharding: scatter-gather top-k serving over catalog slices.

The catalog splits into S contiguous shards, each served by its own
replica set that scores only its slice; a scatter-gather aggregator
fans every request out to all shards and merges the per-shard top-k
into the exact global top-k. See ``docs/sharding.md``.
"""

from repro.sharding.config import (
    ShardingConfig,
    largest_shard_fraction,
    shard_bounds,
)
from repro.sharding.gather import SUB_REQUEST_ID_START, ScatterGatherAggregator
from repro.sharding.merge import (
    ShardScorer,
    build_shard_scorers,
    merge_topk,
    topk_by_score,
)
from repro.sharding.plan import (
    shard_cost_trace,
    shard_resident_bytes,
    shard_score_bytes_per_item,
    shard_service_profile,
)

__all__ = [
    "ShardingConfig",
    "shard_bounds",
    "largest_shard_fraction",
    "ScatterGatherAggregator",
    "SUB_REQUEST_ID_START",
    "ShardScorer",
    "build_shard_scorers",
    "topk_by_score",
    "merge_topk",
    "shard_cost_trace",
    "shard_service_profile",
    "shard_resident_bytes",
    "shard_score_bytes_per_item",
]
