"""Scatter-gather fan-out: one request -> S shard legs -> merged top-k.

The aggregator models DeepRecSys-style query fan-out: a request arriving
at the aggregation tier is copied to every shard replica set in
parallel, each leg paying its own network traversal both ways, and the
merged response cannot leave before the *slowest* leg has landed plus
the :class:`~repro.hardware.latency_model.ShardMergeCost` — fan-out
trades per-shard scan time for tail-of-S network legs.

Partial-result semantics (shard crash, overloaded shard shedding to the
fallback tier): legs that fail or answer degraded contribute no catalog
coverage; as long as one full leg lands the merged response is still a
200 with ``coverage < 1`` and ``degraded=True`` (an operator-visible
quality downgrade, not an availability hit). ``allow_partial=False``
turns any coverage loss into a 503 instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.latency_model import ShardMergeCost
from repro.serving.request import (
    HTTP_OK,
    HTTP_SERVICE_UNAVAILABLE,
    RecommendationRequest,
    RecommendationResponse,
    ResponseCallback,
)
from repro.sharding.config import ShardingConfig
from repro.sharding.merge import merge_topk

#: Sub-request ids live in their own negative range so they can never
#: collide with client request ids (positive), service housekeeping
#: spans (-100_000 down) or chaos spans (-1 down).
SUB_REQUEST_ID_START = -1_000_000

#: Coverage below this is indistinguishable from full (float dust).
_FULL_COVERAGE_EPS = 1e-9


class _Fanout:
    """In-flight state of one scattered request."""

    __slots__ = (
        "request",
        "respond",
        "legs",
        "pending",
        "fanout_span",
    )

    def __init__(self, request, respond, shards):
        self.request = request
        self.respond = respond
        self.legs: Dict[int, RecommendationResponse] = {}
        self.pending = shards
        self.fanout_span = None


class ScatterGatherAggregator:
    """Fans requests out to all shards and merges per-shard top-k."""

    def __init__(
        self,
        simulator,
        config: ShardingConfig,
        shard_submits: Sequence[Callable[[RecommendationRequest, ResponseCallback], None]],
        network_delay: Callable[[], float],
        top_k: int,
        coverage_fractions: Optional[Sequence[float]] = None,
        merge_cost: Optional[ShardMergeCost] = None,
        telemetry=None,
    ):
        if len(shard_submits) != config.shards:
            raise ValueError("need exactly one submit target per shard")
        self.simulator = simulator
        self.config = config
        self.shard_submits = list(shard_submits)
        self.network_delay = network_delay
        self.top_k = top_k
        if coverage_fractions is None:
            coverage_fractions = [1.0 / config.shards] * config.shards
        if len(coverage_fractions) != config.shards:
            raise ValueError("need exactly one coverage fraction per shard")
        self.coverage_fractions = list(coverage_fractions)
        self.merge_cost = merge_cost if merge_cost is not None else ShardMergeCost()
        self.telemetry = telemetry
        self._next_sub_id = SUB_REQUEST_ID_START

        # Tallies for the RunResult/InfraTestResult sharding sections.
        self.fanouts = 0
        self.merged_ok = 0
        self.partial_responses = 0
        self.failed_fanouts = 0
        self.coverage_sum = 0.0
        self.min_coverage = 1.0

        self._fanout_counter = None
        self._partial_counter = None
        self._failed_counter = None
        if telemetry is not None:
            metrics = telemetry.metrics
            self._fanout_counter = metrics.counter(
                "shard_fanout_total",
                help="Requests scattered to all shards",
            )
            self._partial_counter = metrics.counter(
                "shard_partial_responses_total",
                help="Merged 200s with partial catalog coverage",
            )
            self._failed_counter = metrics.counter(
                "shard_failed_fanouts_total",
                help="Fan-outs answered 503 (no usable shard leg)",
            )

    # -- fan-out -----------------------------------------------------------

    def scatter(
        self, request: RecommendationRequest, respond: ResponseCallback
    ) -> None:
        """Copy ``request`` to every shard; ``respond`` once with the merge.

        The caller has already delivered the request to the aggregation
        tier (charging any client leg); this charges the
        aggregator-to-shard legs both ways plus the merge cost. The
        merged response is stamped at merge completion — callers with a
        return leg re-stamp on delivery, as with any backend response.
        """
        now = self.simulator.now
        self.fanouts += 1
        if self._fanout_counter is not None:
            self._fanout_counter.inc()
        state = _Fanout(request, respond, self.config.shards)
        if self.telemetry is not None:
            self.telemetry.trace.begin(
                "sent", request.request_id, at=request.sent_at
            ).finish(at=now)
            state.fanout_span = self.telemetry.trace.begin(
                "shard_fanout",
                request.request_id,
                at=now,
                shards=self.config.shards,
            )
        for shard_index, submit in enumerate(self.shard_submits):
            sub = RecommendationRequest(
                request_id=self._next_sub_id,
                session_id=request.session_id,
                session_items=request.session_items,
                sent_at=now,
                deadline_s=request.deadline_s,
            )
            self._next_sub_id -= 1
            self.simulator.call_in(
                self.network_delay(),
                lambda submit=submit, sub=sub, shard=shard_index: submit(
                    sub, self._leg_responder(state, shard)
                ),
            )

    def _leg_responder(self, state: _Fanout, shard_index: int) -> ResponseCallback:
        def respond(response: RecommendationResponse) -> None:
            self.simulator.call_in(
                self.network_delay(),
                lambda: self._land(state, shard_index, response),
            )

        return respond

    def _land(
        self, state: _Fanout, shard_index: int, response: RecommendationResponse
    ) -> None:
        state.legs[shard_index] = response
        state.pending -= 1
        if state.pending > 0:
            return
        now = self.simulator.now
        merge_s = self.merge_cost.cost_s(self.config.shards, self.top_k)
        if state.fanout_span is not None:
            state.fanout_span.finish(
                at=now,
                responded=sum(1 for leg in state.legs.values() if leg.ok),
            )
            self.telemetry.trace.begin(
                "shard_merge",
                state.request.request_id,
                at=now,
                candidates=self.config.shards * self.top_k,
            ).finish(at=now + merge_s)
        self.simulator.call_in(merge_s, lambda: self._settle(state))

    # -- merge -------------------------------------------------------------

    def _settle(self, state: _Fanout) -> None:
        now = self.simulator.now
        request = state.request
        full_legs = [
            (shard, leg)
            for shard, leg in sorted(state.legs.items())
            if leg.ok and not leg.degraded
        ]
        degraded_legs = [leg for leg in state.legs.values() if leg.ok and leg.degraded]
        coverage = sum(self.coverage_fractions[shard] for shard, _ in full_legs)
        partial = coverage < 1.0 - _FULL_COVERAGE_EPS

        if not full_legs and not degraded_legs:
            state.respond(self._failure(request, now))
            return
        if partial and not self.config.allow_partial:
            state.respond(self._failure(request, now))
            return

        items: Optional[np.ndarray] = None
        scores: Optional[np.ndarray] = None
        candidates: List[Tuple[np.ndarray, np.ndarray]] = [
            (leg.items, leg.scores)
            for _, leg in full_legs
            if leg.items is not None and leg.scores is not None
        ]
        if candidates:
            items, scores = merge_topk(candidates, self.top_k)
        elif not full_legs:
            # Every surviving leg is a fallback-tier answer: pass the
            # first one's popularity top-k through.
            items = degraded_legs[0].items

        ok_legs = [leg for _, leg in full_legs] or degraded_legs
        self.merged_ok += 1
        self.coverage_sum += coverage
        self.min_coverage = min(self.min_coverage, coverage)
        if partial:
            self.partial_responses += 1
            if self._partial_counter is not None:
                self._partial_counter.inc()
        state.respond(
            RecommendationResponse(
                request_id=request.request_id,
                status=HTTP_OK,
                completed_at=now,
                latency_s=now - request.sent_at,
                inference_s=max(leg.inference_s for leg in ok_legs),
                queue_s=max(leg.queue_s for leg in ok_legs),
                batch_size=max(leg.batch_size for leg in ok_legs),
                items=items,
                scores=scores,
                degraded=partial or not full_legs,
                cache_hit=bool(full_legs)
                and all(leg.cache_hit for _, leg in full_legs),
                coverage=coverage,
            )
        )

    def _failure(
        self, request: RecommendationRequest, now: float
    ) -> RecommendationResponse:
        self.failed_fanouts += 1
        if self._failed_counter is not None:
            self._failed_counter.inc()
        return RecommendationResponse(
            request_id=request.request_id,
            status=HTTP_SERVICE_UNAVAILABLE,
            completed_at=now,
            latency_s=now - request.sent_at,
            coverage=0.0,
        )

    # -- reporting ---------------------------------------------------------

    def mean_coverage(self) -> float:
        if self.merged_ok == 0:
            return 0.0
        return self.coverage_sum / self.merged_ok

    def stats(self) -> Dict[str, float]:
        """Plain-scalar tallies for result sections (JSON-safe)."""
        return {
            "shards": self.config.shards,
            "fanouts": self.fanouts,
            "merged_ok": self.merged_ok,
            "partial_responses": self.partial_responses,
            "failed_fanouts": self.failed_fanouts,
            "mean_coverage": round(self.mean_coverage(), 6),
            "min_coverage": round(
                self.min_coverage if self.merged_ok else 0.0, 6
            ),
            "merge_cost_s": self.merge_cost.cost_s(
                self.config.shards, self.top_k
            ),
        }
