"""Declarative catalog-sharding configuration.

Partitioning follows the capacity-driven scale-out literature (Lui et
al.; DeepRecSys): the C-item catalog splits into S contiguous slices,
each served by its own replica set, and a scatter-gather tier fans every
request out to all shards and merges the per-shard top-k.

Determinism contract (same as retry/chaos/admission/cache): a config
with ``shards == 1`` reports ``enabled == False`` and the serving stack
builds no aggregator at all — no extra RNG draws, no extra simulator
events, bit-identical to a run with no sharding configured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ShardingConfig:
    """Declarative knobs for catalog sharding."""

    #: Number of catalog shards (1 = sharding off, the paper's serving).
    shards: int = 1
    #: Whether a fan-out with failed shard legs may still answer 200 with
    #: partial catalog coverage (degraded semantics). ``False``: any
    #: failed leg turns the whole fan-out into a 503.
    allow_partial: bool = True

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @property
    def enabled(self) -> bool:
        """Whether this config shards at all.

        One shard is the contractual off-switch: the serving layer then
        takes the exact pre-sharding code paths.
        """
        return self.shards > 1

    @classmethod
    def parse(cls, text: str) -> "ShardingConfig":
        """Build a config from a compact CLI spec.

        ``"4"`` or ``"4,partial=off"`` — a bare integer is the shard
        count; ``partial=on/off`` controls partial-result semantics.
        ``"shards=4"`` is accepted too.
        """
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                try:
                    kwargs["shards"] = int(part)
                except ValueError:
                    raise ValueError(
                        f"bad shard count {part!r}; expected an integer"
                    )
                continue
            key, _, value = part.partition("=")
            if key == "shards":
                kwargs["shards"] = int(value)
            elif key == "partial":
                if value not in ("on", "off"):
                    raise ValueError("partial must be 'on' or 'off'")
                kwargs["allow_partial"] = value == "on"
            else:
                raise ValueError(
                    f"unknown sharding spec key {key!r}; "
                    "known: shards, partial"
                )
        return cls(**kwargs)

    def spec_string(self) -> str:
        """The compact form :meth:`parse` accepts (for spec files)."""
        parts = [str(self.shards)]
        if not self.allow_partial:
            parts.append("partial=off")
        return ",".join(parts)

    def describe(self) -> str:
        if not self.enabled:
            return "sharding off"
        partial = "partial results" if self.allow_partial else "all-or-503"
        return f"{self.shards} shards, {partial}"


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slices partitioning ``total`` items.

    Slices differ in size by at most one item; every item belongs to
    exactly one slice. ``shards`` may exceed ``total`` — trailing shards
    then own empty slices (they never win a merge).
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    base, extra = divmod(total, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def largest_shard_fraction(total: int, shards: int) -> float:
    """Fraction of the catalog owned by the biggest shard.

    The scatter-gather tail is set by the slowest shard, so uniform
    per-shard service profiles use the largest slice (``ceil(C/S)/C``),
    never the average — the latency model must not be optimistic.
    """
    if total < 1:
        return 1.0
    lo, hi = shard_bounds(total, shards)[0]
    return (hi - lo) / total
