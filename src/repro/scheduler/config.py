"""Opt-in heterogeneous-scheduler configuration (``--scheduler``).

Mirrors the compact-grammar contract of the other opt-in serving features
(:class:`~repro.ann.config.RetrievalConfig` is the template): a frozen
dataclass that parses from / renders to a short spec string, with
``"off"`` meaning *disabled* so default runs stay bit-identical.

The scheduler reproduces the DeepRecSys serving idea on top of the paper's
fleet model: one deployment mixes a GPU primary fleet with a pool of CPU
pods, short-session and tight-slack requests are dispatched to the CPU
pool (they cannot afford a GPU batching linger), and everything else is
accumulated into GPU batches whose size/linger knobs start from the
paper's hardcoded 1,024-request / 2 ms constants and are then hill-climbed
online against the observed latency tail.

Grammar::

    off                               # disabled (default runs use None)
    cpu=1                             # 1 CPU pod beside the GPU fleet
    cpu=2,short=6,target=25,q=90      # mix ratio + routing + tuning knobs

Keys (all optional, ``key=value`` separated by commas):

``cpu``      CPU pods added beside the primary fleet (default 1; 0 keeps
             the fleet homogeneous but still enables the batching tuner)
``instance`` CPU instance type for the pool (default ``CPU``)
``short``    sessions with at most this many clicks route to CPU
             (default 4; 0 disables size-based routing)
``slack``    extra seconds of deadline slack required before a request may
             wait for a GPU batch (default 0: a request routes to CPU as
             soon as its remaining slack cannot cover the current linger)
``batch``    initial GPU max batch size (default 1024, the paper constant)
``linger``   initial GPU batching linger in seconds (default 0.002)
``tune``     ``on``/``off`` — online hill-climbing tuner (default on)
``epoch``    tuning epoch length in seconds (default 5)
``target``   latency-tail target in milliseconds the tuner climbs against
             (default 50, the study's p90 SLO)
``q``        which percentile the tuner watches (default 90)
``tol``      relative tolerance band around ``target`` within which the
             knobs are left alone (default 0.15)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: key -> (attribute, converter) for the ``key=value`` grammar.
_KEYS = {
    "cpu": ("cpu_replicas", int),
    "instance": ("cpu_instance", str),
    "short": ("short_session", int),
    "slack": ("slack_s", float),
    "batch": ("max_batch", int),
    "linger": ("linger_s", float),
    "tune": ("tune", None),  # on/off, handled specially
    "epoch": ("epoch_s", float),
    "target": ("target_p_ms", float),
    "q": ("quantile", float),
    "tol": ("tolerance", float),
}


@dataclass(frozen=True)
class SchedulerConfig:
    """Heterogeneous CPU/GPU dispatch + self-tuning batching for one fleet.

    ``enabled`` is False only for the parsed ``"off"`` form
    (``cpu_replicas=0, tune=False``), which leaves every run bit-identical
    to a config-less run — the opt-in contract shared with admission,
    routing, the cache, sharding and retrieval.
    """

    cpu_replicas: int = 1
    cpu_instance: str = "CPU"
    short_session: int = 4
    slack_s: float = 0.0
    max_batch: int = 1024
    linger_s: float = 0.002
    tune: bool = True
    epoch_s: float = 5.0
    target_p_ms: float = 50.0
    quantile: float = 90.0
    tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.cpu_replicas < 0:
            raise ValueError("cpu must be >= 0")
        if not self.cpu_instance:
            raise ValueError("instance must be a non-empty instance name")
        if self.short_session < 0:
            raise ValueError("short must be >= 0")
        if self.slack_s < 0:
            raise ValueError("slack must be >= 0")
        if self.max_batch < 1:
            raise ValueError("batch must be >= 1")
        if self.linger_s < 0:
            raise ValueError("linger must be >= 0")
        if self.epoch_s <= 0:
            raise ValueError("epoch must be > 0")
        if self.target_p_ms <= 0:
            raise ValueError("target must be > 0 (milliseconds)")
        if not 0 < self.quantile <= 100:
            raise ValueError("q must be within (0, 100]")
        if self.tolerance <= 0:
            raise ValueError("tol must be > 0")

    @property
    def enabled(self) -> bool:
        """True when the scheduler changes anything at all."""
        return self.cpu_replicas > 0 or self.tune

    @classmethod
    def parse(cls, text: str) -> "SchedulerConfig":
        """Parse the compact ``--scheduler`` grammar.

        ``""`` means defaults (one CPU pod, tuner on); ``"off"`` / ``"none"``
        disables; otherwise comma-separated ``key=value`` pairs. Unknown
        keys raise ``ValueError`` naming the accepted ones.
        """
        text = text.strip()
        if text in ("off", "none"):
            return cls(cpu_replicas=0, tune=False)
        if text == "":
            return cls()
        values = {}
        for item in text.split(","):
            key, separator, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not separator or key not in _KEYS:
                raise ValueError(
                    f"unknown scheduler option {item.strip()!r}; expected "
                    f"key=value with keys {', '.join(_KEYS)}"
                )
            attribute, converter = _KEYS[key]
            if key == "tune":
                if value not in ("on", "off"):
                    raise ValueError(
                        f"scheduler option tune needs on/off, got {value!r}"
                    )
                values[attribute] = value == "on"
                continue
            try:
                values[attribute] = converter(value)
            except ValueError:
                raise ValueError(
                    f"scheduler option {key} needs a "
                    f"{converter.__name__}, got {value!r}"
                )
        return cls(**values)

    def spec_string(self) -> str:
        """The canonical compact form; ``parse`` round-trips it."""
        if not self.enabled:
            return "off"
        default = SchedulerConfig()
        parts = []
        for key, (attribute, _) in _KEYS.items():
            value = getattr(self, attribute)
            if value == getattr(default, attribute):
                continue
            if key == "tune":
                parts.append(f"tune={'on' if value else 'off'}")
            elif isinstance(value, float):
                parts.append(f"{key}={value:g}")
            else:
                parts.append(f"{key}={value}")
        return ",".join(parts) if parts else "cpu=1"

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        if not self.enabled:
            return "disabled"
        routing = []
        if self.cpu_replicas:
            routing.append(
                f"{self.cpu_replicas}x {self.cpu_instance} pool "
                f"(sessions <= {self.short_session} clicks or tight slack)"
            )
        else:
            routing.append("no CPU pool")
        tuner = (
            f"tuner p{self.quantile:g} -> {self.target_p_ms:g} ms "
            f"+/-{self.tolerance * 100:g}% every {self.epoch_s:g} s"
            if self.tune
            else "tuner off"
        )
        return (
            f"{', '.join(routing)}; GPU batch {self.max_batch}/"
            f"{self.linger_s * 1e3:g} ms; {tuner}"
        )

    def initial_batching(self) -> Tuple[int, float]:
        """The (max_batch, linger_s) pair GPU pods start from."""
        return self.max_batch, self.linger_s
