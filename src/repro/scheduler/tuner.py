"""Online hill-climbing tuner for the heterogeneous scheduler's knobs.

DeepRecSys tunes its per-model batching parameters by hill-climbing
against the measured latency distribution; this module does the same over
the simulated fleet. Every ``epoch_s`` seconds of virtual time the tuner
reads the dispatcher's per-route latency digests plus the GPU fleet's
observed mean batch size, compares the watched percentile against the
configured target band, and moves **at most one knob** per epoch:

- tail **above** the band (too slow):

  1. if GPU flushes are saturating the current batch cap, double
     ``max_batch`` (bigger flushes amortize the per-batch fixed cost);
  2. otherwise halve the linger window — requests are paying wait time
     that is not buying them batch mates;
  3. once the linger is at its floor, widen the CPU offload threshold
     (``short_session``) — but only while the CPU side's own tail looks
     no worse than the GPU side's, so a drowning CPU pool is never fed
     more work.

- tail **below** the band (headroom): grow the linger back toward its
  configured value, trading spare latency budget for bigger batches —
  DeepRecSys's throughput-maximization-under-a-latency-bound objective.

- tail **inside** the band: do nothing. Knobs stop moving the moment the
  target is met — the convergence property the tests pin down.

One knob per epoch keeps the walk observable (each ``sched_tune`` span
names the knob and both values) and avoids oscillation from coupled
moves. The tuner draws no random numbers; given the same observations it
makes the same moves, so an epoch-for-epoch replay reproduces the run.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scheduler.config import SchedulerConfig
from repro.serving.batching import BatchingConfig

#: Linger is never tuned below this (the GPU still needs a nonzero window
#: to accumulate anything at all); 0.1 ms is ~the host-sync cost floor.
LINGER_FLOOR_S = 1e-4

#: ``short_session`` is never widened past this many clicks.
SHORT_SESSION_CAP = 32

#: A flush counts as "saturated" when its mean size reaches this fraction
#: of the current cap — growing the cap is then worth trying.
SATURATION_FRACTION = 0.9


class EpochObservation:
    """What the tuner sees about one elapsed epoch."""

    __slots__ = ("count", "p_tail_ms", "cpu_p_ms", "gpu_p_ms", "mean_batch")

    def __init__(
        self,
        count: int,
        p_tail_ms: Optional[float],
        cpu_p_ms: Optional[float] = None,
        gpu_p_ms: Optional[float] = None,
        mean_batch: Optional[float] = None,
    ):
        self.count = count
        self.p_tail_ms = p_tail_ms
        self.cpu_p_ms = cpu_p_ms
        self.gpu_p_ms = gpu_p_ms
        self.mean_batch = mean_batch


class HillClimbTuner:
    """Deterministic one-knob-per-epoch hill climber.

    ``batch_cap`` bounds ``max_batch`` growth to what the GPU's memory
    actually fits (the cluster's ``fit_batching`` result); ``None`` means
    uncapped.
    """

    def __init__(self, config: SchedulerConfig, batch_cap: Optional[int] = None):
        self.config = config
        self.batch_cap = batch_cap
        self.max_batch = config.max_batch
        if batch_cap is not None:
            self.max_batch = min(self.max_batch, batch_cap)
        self.linger_s = config.linger_s
        self.short_session = config.short_session
        self.epochs = 0
        self.moves = 0
        self._stable_epochs = 0
        self.history: List[dict] = []

    @property
    def converged(self) -> bool:
        """True once an epoch with traffic ended inside the target band."""
        return self._stable_epochs > 0

    def batching(self) -> BatchingConfig:
        """The GPU batching config for the current knob values."""
        return BatchingConfig(
            max_batch_size=self.max_batch, max_delay_s=self.linger_s
        )

    def step(self, observation: EpochObservation) -> Optional[str]:
        """Consume one epoch's observation; returns the knob moved (or None).

        A ``None`` return with ``converged`` True means the tail sat
        inside the band; ``None`` with ``converged`` False means there was
        nothing to observe or no knob left to move.
        """
        self.epochs += 1
        moved: Optional[str] = None
        p = observation.p_tail_ms
        if p is None or observation.count == 0:
            self._note(observation, moved)
            return None
        low = self.config.target_p_ms * (1.0 - self.config.tolerance)
        high = self.config.target_p_ms * (1.0 + self.config.tolerance)
        if low <= p <= high:
            self._stable_epochs += 1
            self._note(observation, moved)
            return None
        if p > high:
            moved = self._tighten(observation)
        else:
            moved = self._relax()
            if moved is None:
                # Below the band with the linger already at its configured
                # value: the fleet meets the target at maximum batching —
                # the optimum under the throughput-max-under-latency-bound
                # objective, so the tuner is at rest.
                self._stable_epochs += 1
        if moved is not None:
            self.moves += 1
            self._stable_epochs = 0
        self._note(observation, moved)
        return moved

    # -- individual moves -----------------------------------------------------

    def _tighten(self, observation: EpochObservation) -> Optional[str]:
        """Tail too slow: buy latency back, one knob at a time."""
        saturated = (
            observation.mean_batch is not None
            and observation.mean_batch >= SATURATION_FRACTION * self.max_batch
        )
        if saturated and (self.batch_cap is None or self.max_batch < self.batch_cap):
            grown = self.max_batch * 2
            if self.batch_cap is not None:
                grown = min(grown, self.batch_cap)
            self.max_batch = grown
            return "max_batch"
        if self.linger_s > LINGER_FLOOR_S:
            self.linger_s = max(LINGER_FLOOR_S, self.linger_s / 2.0)
            return "linger_s"
        cpu_healthier = observation.cpu_p_ms is not None and (
            observation.gpu_p_ms is None
            or observation.cpu_p_ms <= observation.gpu_p_ms
        )
        if cpu_healthier and self.short_session < SHORT_SESSION_CAP:
            self.short_session += 2
            return "short_session"
        return None

    def _relax(self) -> Optional[str]:
        """Tail comfortably under target: spend the headroom on batching."""
        if self.linger_s < self.config.linger_s:
            self.linger_s = min(self.config.linger_s, self.linger_s * 2.0)
            return "linger_s"
        return None

    # -- bookkeeping ----------------------------------------------------------

    def _note(self, observation: EpochObservation, moved: Optional[str]) -> None:
        self.history.append(
            {
                "epoch": self.epochs,
                "count": observation.count,
                "p_tail_ms": observation.p_tail_ms,
                "cpu_p_ms": observation.cpu_p_ms,
                "gpu_p_ms": observation.gpu_p_ms,
                "mean_batch": observation.mean_batch,
                "moved": moved,
                "max_batch": self.max_batch,
                "linger_s": self.linger_s,
                "short_session": self.short_session,
            }
        )

    def summary(self) -> dict:
        """Tuner state for ``RunResult.scheduler``."""
        return {
            "epochs": self.epochs,
            "moves": self.moves,
            "converged": self.converged,
            "max_batch": self.max_batch,
            "linger_s": self.linger_s,
            "short_session": self.short_session,
        }
