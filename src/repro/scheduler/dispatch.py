"""Size/deadline-aware query dispatch over a heterogeneous fleet.

The DeepRecSys observation: a GPU earns its keep by batching, but batching
costs every batched request the linger window — dead time a short session
(cheap anywhere) or a tight-deadline request (no slack left to spend)
cannot afford. The :class:`QueryDispatcher` therefore splits the incoming
stream in O(1) per request:

- **tight slack** — the request's remaining deadline budget cannot cover
  the *current* GPU linger (plus the configured safety slack), so waiting
  out a full batching window could blow the deadline. Routed to CPU,
  which starts executing immediately. This is the routing invariant the
  tests pin down: a tight-deadline request never waits out a full GPU
  linger.
- **short session** — at most ``short_session`` clicks. Session-based
  models do O(session length) recurrent/attention work, so short sessions
  are the cheap head of the distribution where a CPU answer costs little
  and removing them from GPU batches frees slots for the expensive tail.
- everything else accumulates into GPU batches.

Both thresholds are live knobs the :class:`~repro.scheduler.tuner`
hill-climbs between epochs; the dispatcher also keeps per-route latency
digests for the current tuning epoch so the tuner sees which side of the
fleet is hurting.

Determinism: routing draws no random numbers — the decision is a pure
function of the request and the current knobs.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.metrics.percentile import LatencyDigest
from repro.serving.request import RecommendationRequest, RecommendationResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Telemetry

from repro.scheduler.config import SchedulerConfig

#: Route labels (also the ``route=`` label on ``scheduler_routed_total``).
ROUTE_CPU = "cpu"
ROUTE_GPU = "gpu"

#: Why a request left the GPU path (``reason=`` on offload counters).
REASON_TIGHT = "tight_slack"
REASON_SHORT = "short_session"
REASON_ONLY = "single_class"


class QueryDispatcher:
    """Routes requests between the CPU pool and the GPU batch path."""

    def __init__(
        self,
        config: SchedulerConfig,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.config = config
        self.telemetry = telemetry
        # Live knobs (the tuner mutates these between epochs).
        self.short_session = config.short_session
        self.slack_s = config.slack_s
        #: Mirror of the GPU fleet's current linger window; the tuner
        #: keeps it in sync when it retunes the batching config.
        self.linger_s = config.linger_s
        # Run-lifetime tallies.
        self.routed = {ROUTE_CPU: 0, ROUTE_GPU: 0}
        self.offloaded = {REASON_TIGHT: 0, REASON_SHORT: 0}
        # Per-epoch feedback for the tuner (reset by epoch_snapshot()).
        self._epoch_digests = {
            ROUTE_CPU: LatencyDigest(),
            ROUTE_GPU: LatencyDigest(),
        }
        self._epoch_overall = LatencyDigest()

    # -- routing --------------------------------------------------------------

    def route(
        self,
        request: RecommendationRequest,
        now: float,
        has_cpu: bool,
        has_gpu: bool,
    ) -> str:
        """Pick ``"cpu"`` or ``"gpu"`` for one request.

        ``has_cpu``/``has_gpu`` reflect which pod classes currently have
        ready backends — a degraded fleet falls back to whatever is left.
        """
        if not (has_cpu and has_gpu):
            route = ROUTE_CPU if has_cpu else ROUTE_GPU
            reason = REASON_ONLY
        elif (
            request.deadline_s is not None
            and request.deadline_s - now <= self.linger_s + self.slack_s
        ):
            route, reason = ROUTE_CPU, REASON_TIGHT
        elif request.session_length <= self.short_session:
            route, reason = ROUTE_CPU, REASON_SHORT
        else:
            route, reason = ROUTE_GPU, None
        self.routed[route] += 1
        if route is ROUTE_CPU and reason in self.offloaded:
            self.offloaded[reason] += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "scheduler_routed_total",
                labels={"route": route},
                help="Requests dispatched per pod class.",
            ).inc()
            if reason in self.offloaded:
                self.telemetry.metrics.counter(
                    "scheduler_offload_total",
                    labels={"reason": reason},
                    help="Requests steered off the GPU batch path.",
                ).inc()
            span = self.telemetry.trace.begin(
                "sched_route", request.request_id, at=now, route=route
            )
            span.finish(at=now, reason=reason or "batchable")
        return route

    # -- tuner feedback -------------------------------------------------------

    def observe(self, route: str, response: RecommendationResponse) -> None:
        """Feed one delivered response's latency into the epoch digests."""
        if not response.ok:
            return
        self._epoch_digests[route].record(response.latency_s)
        self._epoch_overall.record(response.latency_s)

    def epoch_snapshot(self, quantile: float) -> dict:
        """Per-route p-tail for the epoch just ended; resets the window."""
        snapshot = {"count": len(self._epoch_overall)}
        for name, digest in (
            ("p_tail_ms", self._epoch_overall),
            ("cpu_p_ms", self._epoch_digests[ROUTE_CPU]),
            ("gpu_p_ms", self._epoch_digests[ROUTE_GPU]),
        ):
            snapshot[name] = (
                digest.percentile(quantile) * 1e3 if len(digest) else None
            )
        self._epoch_digests = {
            ROUTE_CPU: LatencyDigest(),
            ROUTE_GPU: LatencyDigest(),
        }
        self._epoch_overall = LatencyDigest()
        return snapshot

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """Run-lifetime routing tallies for ``RunResult.scheduler``."""
        return {
            "routed_cpu": self.routed[ROUTE_CPU],
            "routed_gpu": self.routed[ROUTE_GPU],
            "offload_tight_slack": self.offloaded[REASON_TIGHT],
            "offload_short_session": self.offloaded[REASON_SHORT],
        }
