"""Heterogeneous CPU/GPU query scheduling (DeepRecSys-style).

Public surface:

- :class:`SchedulerConfig` — the ``--scheduler`` grammar / spec-file key;
- :class:`QueryDispatcher` — size/deadline-aware CPU-vs-GPU routing;
- :class:`HillClimbTuner` / :class:`EpochObservation` — online batching
  tuner climbing against the observed latency tail;
- :class:`SchedulerRuntime` — the epoch loop wiring both into a live
  deployment.

See ``docs/scheduling.md`` for the serving model and knob semantics.
"""

from repro.scheduler.config import SchedulerConfig
from repro.scheduler.dispatch import QueryDispatcher
from repro.scheduler.runtime import SchedulerRuntime
from repro.scheduler.tuner import EpochObservation, HillClimbTuner

__all__ = [
    "SchedulerConfig",
    "QueryDispatcher",
    "SchedulerRuntime",
    "HillClimbTuner",
    "EpochObservation",
]
