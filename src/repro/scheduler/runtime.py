"""Wires the dispatcher and tuner into a live deployment.

:class:`SchedulerRuntime` owns the epoch loop: a finite simulator process
that wakes every ``epoch_s`` virtual seconds, snapshots the dispatcher's
per-route latency digests and the GPU fleet's mean flush size, lets the
:class:`~repro.scheduler.tuner.HillClimbTuner` move (at most) one knob,
and pushes the resulting :class:`~repro.serving.batching.BatchingConfig`
onto every GPU pod — including the deployment's restart context, so a
chaos-restarted pod comes back with the *tuned* knobs rather than the
initial ones.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.scheduler.config import SchedulerConfig
from repro.scheduler.dispatch import QueryDispatcher
from repro.scheduler.tuner import EpochObservation, HillClimbTuner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.kubernetes import ModelDeployment
    from repro.obs import Telemetry

#: Trace-id range for ``sched_tune`` spans (service/chaos spans use other
#: negative ranges; see ``cluster/service.py``).
_TUNE_TRACE_ID_START = -300_000


class SchedulerRuntime:
    """Epoch-driven tuning loop over one heterogeneous deployment."""

    def __init__(
        self,
        simulator,
        config: SchedulerConfig,
        deployment: "ModelDeployment",
        dispatcher: QueryDispatcher,
        tuner: Optional[HillClimbTuner],
        telemetry: Optional["Telemetry"] = None,
    ):
        self.simulator = simulator
        self.config = config
        self.deployment = deployment
        self.dispatcher = dispatcher
        self.tuner = tuner
        self.telemetry = telemetry
        self._next_trace_id = _TUNE_TRACE_ID_START
        self._last_flushes = 0
        self._last_batched = 0

    # -- fleet views ----------------------------------------------------------

    def _gpu_servers(self):
        return [
            pod.server
            for pod in self.deployment.pods
            if pod.server is not None
            and pod.instance_type.device.supports_batching()
        ]

    def _mean_batch(self) -> Optional[float]:
        """Mean GPU flush size since the previous epoch."""
        flushes = sum(server.batch_flushes for server in self._gpu_servers())
        batched = sum(server.batched_requests for server in self._gpu_servers())
        delta_flushes = flushes - self._last_flushes
        delta_batched = batched - self._last_batched
        self._last_flushes = flushes
        self._last_batched = batched
        if delta_flushes <= 0:
            return None
        return delta_batched / delta_flushes

    # -- the epoch loop -------------------------------------------------------

    def epoch_process(self, until: float):
        """Finite tuning loop; spawn on the simulator alongside the load."""
        if self.tuner is None:
            return
        while self.simulator.now + self.config.epoch_s <= until:
            yield self.config.epoch_s
            observation_dict = self.dispatcher.epoch_snapshot(
                self.config.quantile
            )
            observation = EpochObservation(
                count=observation_dict["count"],
                p_tail_ms=observation_dict["p_tail_ms"],
                cpu_p_ms=observation_dict["cpu_p_ms"],
                gpu_p_ms=observation_dict["gpu_p_ms"],
                mean_batch=self._mean_batch(),
            )
            moved = self.tuner.step(observation)
            if moved is not None:
                self._apply()
            if self.telemetry is not None:
                self._emit(observation, moved)

    def _apply(self) -> None:
        """Push the tuner's knobs onto the live fleet."""
        batching = self.tuner.batching()
        for server in self._gpu_servers():
            server.batching = batching
        # Chaos-restarted pods must come back with the tuned knobs.
        self.deployment.restart_context["batching"] = batching
        self.dispatcher.short_session = self.tuner.short_session
        self.dispatcher.linger_s = self.tuner.linger_s

    def _emit(self, observation: EpochObservation, moved: Optional[str]) -> None:
        metrics = self.telemetry.metrics
        metrics.counter(
            "scheduler_tune_epochs_total",
            help="tuning epochs evaluated by the scheduler",
        ).inc()
        if moved is not None:
            metrics.counter(
                "scheduler_tune_moves_total",
                labels={"knob": moved},
                help="knob adjustments made by the hill-climbing tuner",
            ).inc()
        metrics.gauge(
            "scheduler_max_batch", unit="requests",
            help="current tuned GPU max batch size",
        ).set(self.tuner.max_batch)
        metrics.gauge(
            "scheduler_linger_s", unit="s",
            help="current tuned GPU batching linger",
        ).set(self.tuner.linger_s)
        span = self.telemetry.trace.begin(
            "sched_tune",
            self._next_trace_id,
            at=self.simulator.now,
            moved=moved or "hold",
            p_tail_ms=observation.p_tail_ms,
            max_batch=self.tuner.max_batch,
            linger_s=self.tuner.linger_s,
            short_session=self.tuner.short_session,
        )
        self._next_trace_id -= 1
        span.finish(at=self.simulator.now)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """The ``RunResult.scheduler`` payload."""
        payload = {
            "config": self.config.spec_string(),
            "cpu_replicas": self.config.cpu_replicas,
            "cpu_instance": self.config.cpu_instance,
            **self.dispatcher.summary(),
        }
        if self.tuner is not None:
            payload["tuner"] = self.tuner.summary()
        return payload
