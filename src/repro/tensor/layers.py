"""Standard layers: Linear, Embedding, LayerNorm, activations, Dropout.

The one non-standard citizen is :class:`CatalogEmbedding`, which virtualizes
huge item catalogs. The paper benchmarks catalogs of up to 20 million items;
materializing ``C x d`` float32 tables for those would need gigabytes that a
laptop-scale reproduction cannot spend per model. Instead we materialize
``min(C, materialized_cap)`` deterministic rows and tag the scoring view of
the table with ``catalog_scale = C / materialized``, which the latency model
multiplies back in. Ops that only *look up* session items are charged their
true (small) cost; ops that scan the whole catalog — the maximum inner
product search that dominates inference, per the paper's complexity analysis
— are charged the full virtual cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor import ops
from repro.tensor.module import Module, Parameter, _xavier
from repro.tensor.tensor import Tensor


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b`` (single fused kernel)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _xavier(rng, in_features, out_features, (out_features, in_features)),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        inputs = (x, self.weight) if self.bias is None else (x, self.weight, self.bias)
        return ops.run_op("linear", inputs)


class Embedding(Module):
    """A dense lookup table for small vocabularies (e.g. positions)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)).astype(
                np.float32
            ),
            name="weight",
        )

    def forward(self, ids) -> Tensor:
        if isinstance(ids, Tensor):
            return ops.run_op("embedding_lookup", (self.weight, ids))
        # Raw id arrays are trace-time constants (e.g. position indices):
        # the lookup is shared by every request in a batch.
        ids = Tensor(np.asarray(ids, np.int64), batch_invariant=True)
        return ops.run_op("embedding_lookup", (self.weight, ids))


class CatalogEmbedding(Module):
    """Item-embedding table over the full product catalog, virtualized.

    Parameters
    ----------
    num_items:
        Logical catalog size ``C`` (may be tens of millions).
    embedding_dim:
        ``d``, typically ``ceil(C ** 0.25)`` per the paper's heuristic.
    materialized_cap:
        Maximum number of rows to actually allocate. Rows are generated
        deterministically from ``seed``, so two instances with the same
        configuration hold identical tables.
    """

    DEFAULT_CAP = 32768

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        materialized_cap: int = DEFAULT_CAP,
        seed: int = 17,
    ):
        super().__init__()
        if num_items < 1:
            raise ValueError("catalog must contain at least one item")
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.materialized = min(num_items, materialized_cap)
        rng = np.random.default_rng(seed)
        table = rng.normal(0.0, 0.1, size=(self.materialized, embedding_dim))
        self.weight = Parameter(table.astype(np.float32), name="weight")
        # Scoring view: same storage, tagged with the virtual catalog scale so
        # full-catalog scans are charged their true cost. Registered via
        # object.__setattr__ so it does not appear in the state dict twice.
        scoring = Parameter(self.weight.data, name="weight.scoring")
        scoring.catalog_scale = num_items / self.materialized
        object.__setattr__(self, "_scoring_weight", scoring)

    @property
    def catalog_scale(self) -> float:
        return self._scoring_weight.catalog_scale

    def map_item_ids(self, ids) -> np.ndarray:
        """Fold logical item ids onto materialized rows (deterministic)."""
        ids = np.asarray(ids if not isinstance(ids, Tensor) else ids.data, np.int64)
        if np.any(ids < 0) or np.any(ids >= self.num_items):
            raise ValueError("item id outside catalog")
        return ids % self.materialized

    def forward(self, ids) -> Tensor:
        """Look up session-item embeddings (charged at true, small cost).

        Accepts a Tensor of logical item ids (the traced path — id folding
        happens through the ``mod_index`` kernel so jit replay stays
        input-dependent) or a raw array/list (validated eagerly).
        """
        if not isinstance(ids, Tensor):
            ids = Tensor(self.map_item_ids(ids))
            return ops.run_op("embedding_lookup", (self.weight, ids))
        rows = ops.run_op("mod_index", (ids,), {"modulus": self.materialized})
        return ops.run_op("embedding_lookup", (self.weight, rows))

    def scoring_weight(self) -> Parameter:
        """The full-catalog view used by the top-k inner-product search.

        Stays in sync with ``weight`` even after ``load_state_dict``
        replaces the underlying storage.
        """
        if self._scoring_weight.data is not self.weight.data:
            scoring = Parameter(self.weight.data, name="weight.scoring")
            scoring.catalog_scale = self.num_items / self.materialized
            object.__setattr__(self, "_scoring_weight", scoring)
        return self._scoring_weight


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op(
            "layer_norm", (x, self.gamma, self.beta), {"eps": self.eps}
        )


class Dropout(Module):
    """Inference-mode dropout: an identity that still costs a kernel launch.

    Eager PyTorch dispatches a no-op dropout kernel in eval mode; the JIT
    optimizer removes it. We model exactly that: in eager execution the op is
    recorded (one launch, one elementwise pass), and the jit dead-op pass
    eliminates it.
    """

    def __init__(self, p: float = 0.1):
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("dropout", (x,))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("relu", (x,))


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("gelu", (x,))


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("tanh", (x,))


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("sigmoid", (x,))


class Softmax(Module):
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return ops.run_op("softmax", (x,), {"axis": self.axis})


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *children: Module):
        super().__init__()
        self._order = []
        for index, child in enumerate(children):
            name = f"layer{index}"
            setattr(self, name, child)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)
