"""Recurrent building blocks: GRU cell and (multi-layer) GRU stack.

GRU4Rec, NARM, and RepeatNet's encoder/decoders all run on these. The cell
is expressed with the same six-matmul decomposition eager PyTorch uses
(two fused input/hidden projections of 3x hidden size), so the kernel-launch
profile — the quantity that dominates small-catalog latency in the paper's
microbenchmark — is faithful.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.tensor import functional as F
from repro.tensor import ops
from repro.tensor.module import Module, Parameter, _xavier
from repro.tensor.tensor import Tensor


class GRUCell(Module):
    """A single gated recurrent unit step."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            _xavier(rng, input_size, hidden_size, (3 * hidden_size, input_size))
        )
        self.weight_hh = Parameter(
            _xavier(rng, hidden_size, hidden_size, (3 * hidden_size, hidden_size))
        )
        self.bias_ih = Parameter(np.zeros(3 * hidden_size, dtype=np.float32))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size, dtype=np.float32))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        d = self.hidden_size
        gi = F.linear(x, self.weight_ih, self.bias_ih)
        gh = F.linear(h, self.weight_hh, self.bias_hh)
        i_r, i_z, i_n = gi[..., 0:d], gi[..., d : 2 * d], gi[..., 2 * d : 3 * d]
        h_r, h_z, h_n = gh[..., 0:d], gh[..., d : 2 * d], gh[..., 2 * d : 3 * d]
        reset = (i_r + h_r).sigmoid()
        update = (i_z + h_z).sigmoid()
        candidate = (i_n + reset * h_n).tanh()
        return (1.0 - update) * h + update * candidate

    def initial_state(self) -> Tensor:
        return Tensor(np.zeros(self.hidden_size, dtype=np.float32))


class GRU(Module):
    """A (possibly multi-layer) GRU over a session sequence.

    By default each layer executes as one fused ``gru_sequence`` kernel —
    the cuDNN-style path ``torch.nn.GRU`` takes, one launch per layer. Pass
    ``fused=False`` to unroll through :class:`GRUCell` (the expensive
    eager-cell pattern; useful for tests and ablations).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        fused: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.fused = fused
        self._layer_names: List[str] = []
        for layer in range(num_layers):
            cell = GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            name = f"cell{layer}"
            setattr(self, name, cell)
            self._layer_names.append(name)

    def forward(
        self, inputs: Tensor, initial_state: Optional[Tensor] = None
    ) -> Tuple[Tensor, Tensor]:
        """Run over a ``(seq_len, input_size)`` sequence.

        Returns ``(outputs, final_hidden)`` where ``outputs`` is
        ``(seq_len, hidden_size)`` from the top layer and ``final_hidden``
        the hidden state after the last step of the top layer.
        """
        if self.fused:
            return self._forward_fused(inputs, initial_state)
        return self._forward_unrolled(inputs, initial_state)

    def _forward_fused(
        self, inputs: Tensor, initial_state: Optional[Tensor]
    ) -> Tuple[Tensor, Tensor]:
        value = inputs
        for index, name in enumerate(self._layer_names):
            cell: GRUCell = self._modules[name]
            if initial_state is not None and index == 0:
                h0 = initial_state
            else:
                h0 = cell.initial_state()
            value = ops.run_op(
                "gru_sequence",
                (value, cell.weight_ih, cell.weight_hh, cell.bias_ih, cell.bias_hh, h0),
            )
        final = value[-1]
        return value, final

    def _forward_unrolled(
        self, inputs: Tensor, initial_state: Optional[Tensor]
    ) -> Tuple[Tensor, Tensor]:
        seq_len = inputs.shape[0]
        states = []
        for index, name in enumerate(self._layer_names):
            cell: GRUCell = self._modules[name]
            if initial_state is not None and index == 0:
                states.append(initial_state)
            else:
                states.append(cell.initial_state())
        outputs = []
        for t in range(seq_len):
            value = inputs[t]
            for index, name in enumerate(self._layer_names):
                cell = self._modules[name]
                states[index] = cell(value, states[index])
                value = states[index]
            outputs.append(value)
        stacked = F.stack(outputs, axis=0)
        return stacked, states[-1]
