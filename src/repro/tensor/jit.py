"""Trace-based JIT capture and inference optimization.

This mirrors the ``torch.jit.trace`` + ``torch.jit.optimize_for_inference``
pipeline the paper benchmarks:

1. :func:`trace` runs the module once on example inputs with a
   :class:`~repro.tensor.graph.GraphBuilder` installed, capturing the exact
   dataflow graph of the forward pass. Using tensor *values* to steer Python
   control flow during tracing raises :class:`JitCompilationError` — which is
   precisely how LightSANs fails to compile (Section III-B of the paper).
2. :func:`optimize_for_inference` applies the pass pipeline:
   - **dropout elimination** (inference-mode dropout kernels are identity),
   - **dead-op elimination** (liveness from the output),
   - **constant folding** (param/const-only subgraphs are precomputed; byte
     accounting of folded weights is preserved),
   - **elementwise fusion** (single-consumer chains collapse into one launch
     with intermediates kept in registers),
   - **linear+activation fusion**.
3. :class:`ScriptedModule` re-executes the optimized graph on new inputs.
   Numerics equal eager execution; the recorded cost stream reflects the
   optimized launch/byte counts, which is where the paper's JIT speedups
   come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor import ops
from repro.tensor.graph import Graph, GraphBuilder, Node
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class JitCompilationError(RuntimeError):
    """The module cannot be traced (dynamic, data-dependent code paths)."""


# ---------------------------------------------------------------------------
# Trace capture
# ---------------------------------------------------------------------------


def trace(module: Module, example_inputs: Sequence[np.ndarray]) -> Graph:
    """Capture the dataflow graph of one forward pass.

    ``example_inputs`` are bound positionally to ``module.forward``. Raises
    :class:`JitCompilationError` if the forward uses tensor values in Python
    control flow.
    """
    if ops.is_capturing():
        raise RuntimeError("nested jit tracing is not supported")
    builder = GraphBuilder()
    tensors = []
    for index, example in enumerate(example_inputs):
        tensor = Tensor(np.asarray(example))
        builder.register_input(tensor, name=f"arg{index}")
        tensors.append(tensor)
    ops.set_graph_builder(builder)
    try:
        output = module(*tensors)
    finally:
        ops.set_graph_builder(None)
    if not isinstance(output, Tensor):
        raise JitCompilationError(
            f"traced forward returned {type(output).__name__}, not a Tensor"
        )
    builder.set_output(output)
    return builder.graph


# ---------------------------------------------------------------------------
# Optimization passes
# ---------------------------------------------------------------------------

_ELEMENTWISE_FUSABLE = {
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "abs",
    "sigmoid",
    "relu",
    "gelu",
    "scale",
    "maximum",
    "minimum",
    "pow",
    "masked_fill",
    "where",
}

_ACTIVATIONS = {"relu": "relu", "tanh": "tanh", "sigmoid": "sigmoid"}

_FOLDABLE = _ELEMENTWISE_FUSABLE | {
    "matmul",
    "linear",
    "transpose",
    "reshape",
    "concat",
    "stack",
    "slice",
    "embedding_lookup",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "softmax",
    "fill_constant",
}


def eliminate_dropout(graph: Graph) -> int:
    """Rewire consumers of dropout nodes to the dropout input."""
    redirect: Dict[int, int] = {}
    kept: List[Node] = []
    for node in graph.nodes:
        if node.kind == "op" and node.op == "dropout":
            source = node.inputs[0]
            redirect[node.id] = redirect.get(source, source)
            continue
        node.inputs = tuple(redirect.get(i, i) for i in node.inputs)
        kept.append(node)
    removed = len(graph.nodes) - len(kept)
    graph.nodes = kept
    if graph.output_id in redirect:
        graph.output_id = redirect[graph.output_id]
    return removed


def eliminate_dead_ops(graph: Graph) -> int:
    """Drop nodes that do not reach the output."""
    by_id = {node.id: node for node in graph.nodes}
    live = set()
    stack = [graph.output_id]
    while stack:
        node_id = stack.pop()
        if node_id in live or node_id is None:
            continue
        live.add(node_id)
        node = by_id.get(node_id)
        if node is not None:
            stack.extend(node.inputs)
    # Host ops may carry side effects in principle; keep only live ones all
    # the same — our host ops are pure functions of their inputs.
    before = len(graph.nodes)
    graph.nodes = [n for n in graph.nodes if n.id in live]
    return before - len(graph.nodes)


def fold_constants(graph: Graph) -> int:
    """Precompute nodes whose inputs are all params/consts.

    The folded result becomes a ``const`` leaf; if any source was a
    parameter the leaf keeps ``is_param=True`` so the latency model still
    amortizes its bytes like weight data.
    """
    by_id = {node.id: node for node in graph.nodes}
    folded = 0
    for node in graph.nodes:
        if node.kind != "op" or node.op not in _FOLDABLE:
            continue
        sources = [by_id[i] for i in node.inputs]
        if not sources or not all(s.is_leaf() and s.kind != "input" for s in sources):
            continue
        arrays = [s.array for s in sources]
        out, _record = ops.KERNELS[node.op](arrays, node.attrs)
        node.kind = "const"
        node.array = out
        node.is_param = any(s.is_param for s in sources)
        node.catalog_scale = max([s.catalog_scale for s in sources] + [1.0])
        node.inputs = ()
        node.op = ""
        node.attrs = {}
        folded += 1
    return folded


def fuse_elementwise(graph: Graph) -> int:
    """Collapse single-consumer chains of elementwise ops into fused nodes.

    A chain ``a -> b -> c`` where each intermediate has exactly one consumer
    becomes one ``fused`` node: one kernel launch, external reads only, a
    single final write. This is the classic pointwise-fusion win that
    ``optimize_for_inference`` delivers.
    """
    consumers = graph.consumers()

    def fusable(node: Node) -> bool:
        return node.kind == "op" and node.op in _ELEMENTWISE_FUSABLE

    # Build maximal chains. A chain extends tail -> consumer while the tail
    # has exactly one consumer, that consumer is fusable, and the tail is not
    # the graph output.
    in_chain: Dict[int, List[Node]] = {}
    chains: Dict[int, List[Node]] = {}  # keyed by tail id
    for node in graph.nodes:
        if not fusable(node) or node.id in in_chain:
            continue
        chain = [node]
        tail = node
        while True:
            outs = consumers.get(tail.id, [])
            if tail.id == graph.output_id or len(outs) != 1:
                break
            candidate = outs[0]
            if not fusable(candidate) or candidate.id in in_chain:
                break
            chain.append(candidate)
            tail = candidate
        if len(chain) < 2:
            continue
        for member in chain:
            in_chain[member.id] = chain
        chains[tail.id] = chain

    if not chains:
        return 0

    # Replace the tail of each chain (the latest position, so every external
    # input is already computed) with one fused node; drop the other members.
    new_nodes: List[Node] = []
    for node in graph.nodes:
        chain = in_chain.get(node.id)
        if chain is None:
            new_nodes.append(node)
            continue
        if node.id != chain[-1].id:
            continue
        new_nodes.append(
            Node(
                id=node.id,
                kind="fused",
                op="fused[" + "+".join(n.op for n in chain) + "]",
                inputs=_external_inputs(chain),
                catalog_scale=max(n.catalog_scale for n in chain),
                batch_invariant=all(n.batch_invariant for n in chain),
                fused=chain,
            )
        )
    removed = len(graph.nodes) - len(new_nodes)
    graph.nodes = new_nodes
    return removed


def _external_inputs(chain: List[Node]) -> Tuple[int, ...]:
    member_ids = {n.id for n in chain}
    externals: List[int] = []
    for node in chain:
        for input_id in node.inputs:
            if input_id not in member_ids and input_id not in externals:
                externals.append(input_id)
    return tuple(externals)


def fuse_linear_activation(graph: Graph) -> int:
    """Fuse ``linear`` directly followed by its only consumer activation."""
    consumers = graph.consumers()
    by_id = {node.id: node for node in graph.nodes}
    fused = 0
    removed_ids = set()
    for node in list(graph.nodes):
        if node.kind != "op" or node.op != "linear" or node.id == graph.output_id:
            continue
        outs = consumers.get(node.id, [])
        if len(outs) != 1:
            continue
        activation = outs[0]
        if activation.kind != "op" or activation.op not in _ACTIVATIONS:
            continue
        if activation.inputs != (node.id,):
            continue
        # The activation node becomes the fused linear_act; the linear dies.
        activation_name = _ACTIVATIONS[activation.op]
        activation.op = "linear_act"
        activation.inputs = node.inputs
        activation.attrs = {"activation": activation_name}
        fused += 1
        removed_ids.add(node.id)
    graph.nodes = [n for n in graph.nodes if n.id not in removed_ids]
    return fused


@dataclass
class OptimizationReport:
    """What each pass removed/created; surfaced in ablation benchmarks."""

    dropout_removed: int = 0
    dead_removed: int = 0
    constants_folded: int = 0
    elementwise_fused: int = 0
    linear_act_fused: int = 0

    def total_eliminated(self) -> int:
        return (
            self.dropout_removed
            + self.dead_removed
            + self.constants_folded
            + self.elementwise_fused
            + self.linear_act_fused
        )


def run_passes(graph: Graph, enable_fusion: bool = True) -> OptimizationReport:
    report = OptimizationReport()
    report.dropout_removed = eliminate_dropout(graph)
    report.dead_removed = eliminate_dead_ops(graph)
    report.constants_folded = fold_constants(graph)
    # Folding can orphan leaves that fed folded nodes.
    report.dead_removed += eliminate_dead_ops(graph)
    if enable_fusion:
        report.linear_act_fused = fuse_linear_activation(graph)
        report.elementwise_fused = fuse_elementwise(graph)
    return report


# ---------------------------------------------------------------------------
# Scripted execution
# ---------------------------------------------------------------------------


class ScriptedModule:
    """Executes an optimized graph on fresh inputs with optimized costs."""

    def __init__(self, module: Module, graph: Graph, report: OptimizationReport):
        self.module = module
        self.graph = graph
        self.report = report
        self._by_id = {node.id: node for node in graph.nodes}

    def parameter_bytes(self) -> int:
        return self.module.parameter_bytes()

    def forward(self, *inputs) -> Tensor:
        if len(inputs) != len(self.graph.input_ids):
            raise ValueError(
                f"expected {len(self.graph.input_ids)} inputs, got {len(inputs)}"
            )
        env: Dict[int, np.ndarray] = {}
        for node_id, value in zip(self.graph.input_ids, inputs):
            array = value.data if isinstance(value, Tensor) else np.asarray(value)
            env[node_id] = array
        output = None
        for node in self.graph.nodes:
            if node.kind == "input":
                continue
            if node.kind in ("param", "const"):
                env[node.id] = node.array
                continue
            if node.kind == "host":
                env[node.id] = self._run_host(node, env)
            elif node.kind == "fused":
                env[node.id] = self._run_fused(node, env)
            else:
                env[node.id] = self._run_kernel(node, env)
            if node.id == self.graph.output_id:
                output = env[node.id]
        if output is None:
            output = env[self.graph.output_id]
        return Tensor(output)

    __call__ = forward

    # -- node execution -----------------------------------------------------

    def _node_bytes(self, node_ids, env) -> Tuple[float, float]:
        param_bytes = 0.0
        read_bytes = 0.0
        for node_id in node_ids:
            source = self._by_id.get(node_id)
            nbytes = float(env[node_id].nbytes)
            if source is not None and (source.is_param or source.batch_invariant):
                param_bytes += nbytes
            else:
                read_bytes += nbytes
        return param_bytes, read_bytes

    def _run_kernel(self, node: Node, env) -> np.ndarray:
        arrays = [env[i] for i in node.inputs]
        out, record = ops.KERNELS[node.op](arrays, node.attrs)
        record.catalog_scale = self._scale(node, env)
        record.batch_invariant = node.batch_invariant
        if record.param_bytes == 0.0 and record.read_bytes == 0.0:
            record.param_bytes, record.read_bytes = self._node_bytes(node.inputs, env)
        ops.record_cost(record)
        return out

    def _run_fused(self, node: Node, env) -> np.ndarray:
        local: Dict[int, np.ndarray] = {}
        flops = 0.0
        out = None
        for member in node.fused:
            arrays = [
                local[i] if i in local else env[i] for i in member.inputs
            ]
            out, record = ops.KERNELS[member.op](arrays, member.attrs)
            local[member.id] = out
            flops += record.flops
        param_bytes, read_bytes = self._node_bytes(node.inputs, env)
        fused_record = ops.CostRecord(
            op=node.op,
            launches=1,
            flops=flops,
            param_bytes=param_bytes,
            read_bytes=read_bytes,
            write_bytes=float(out.nbytes),
            catalog_scale=self._scale(node, env),
            elementwise=True,
            batch_invariant=node.batch_invariant,
        )
        ops.record_cost(fused_record)
        return out

    def _run_host(self, node: Node, env) -> np.ndarray:
        arrays = [env[i] for i in node.inputs]
        out = np.asarray(node.host_fn(*arrays))
        in_bytes = sum(float(a.nbytes) for a in arrays)
        record = ops.CostRecord(
            op=node.op,
            launches=1,
            read_bytes=in_bytes,
            write_bytes=float(out.nbytes),
            host_op=True,
            transfer_bytes=in_bytes + float(out.nbytes),
            catalog_scale=self._scale(node, env),
        )
        ops.record_cost(record)
        return out

    def _scale(self, node: Node, env) -> float:
        scale = node.catalog_scale
        for input_id in node.inputs:
            source = self._by_id.get(input_id)
            if source is not None:
                scale = max(scale, source.catalog_scale)
        return scale


def optimize_for_inference(
    module: Module,
    example_inputs: Sequence[np.ndarray],
    enable_fusion: bool = True,
) -> ScriptedModule:
    """Trace + optimize a module, mirroring ``torch.jit.optimize_for_inference``.

    Raises :class:`JitCompilationError` for modules with dynamic code paths
    (LightSANs, per the paper).
    """
    graph = trace(module, example_inputs)
    report = run_passes(graph, enable_fusion=enable_fusion)
    return ScriptedModule(module, graph, report)
