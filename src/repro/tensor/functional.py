"""Functional tensor operations shared by the SBR models."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor, as_tensor


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return ops.run_op("matmul", (a, b))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    inputs = (x, weight) if bias is None else (x, weight, bias)
    return ops.run_op("linear", inputs)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return ops.run_op("softmax", (x,), {"axis": axis})


def relu(x: Tensor) -> Tensor:
    return ops.run_op("relu", (x,))


def tanh(x: Tensor) -> Tensor:
    return ops.run_op("tanh", (x,))


def sigmoid(x: Tensor) -> Tensor:
    return ops.run_op("sigmoid", (x,))


def gelu(x: Tensor) -> Tensor:
    return ops.run_op("gelu", (x,))


def exp(x: Tensor) -> Tensor:
    return ops.run_op("exp", (x,))


def scale(x: Tensor, factor: float) -> Tensor:
    return ops.run_op("scale", (x,), {"factor": float(factor)})


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    return ops.run_op("concat", tuple(tensors), {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return ops.run_op("stack", tuple(tensors), {"axis": axis})


def reshape(x: Tensor, shape) -> Tensor:
    return ops.run_op("reshape", (x,), {"shape": tuple(shape)})


def transpose(x: Tensor, axes=None) -> Tensor:
    return ops.run_op("transpose", (x,), {"axes": axes})


def masked_fill(x: Tensor, mask: Union[Tensor, np.ndarray], value: float) -> Tensor:
    return ops.run_op("masked_fill", (x, as_tensor(mask)), {"value": float(value)})


def where(cond, a, b) -> Tensor:
    return ops.run_op("where", (as_tensor(cond), as_tensor(a), as_tensor(b)))


def reduce_sum(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return ops.run_op("reduce_sum", (x,), {"axis": axis, "keepdims": keepdims})


def reduce_mean(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return ops.run_op("reduce_mean", (x,), {"axis": axis, "keepdims": keepdims})


def reduce_max(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return ops.run_op("reduce_max", (x,), {"axis": axis, "keepdims": keepdims})


def index_select(x: Tensor, ids, axis: int = 0) -> Tensor:
    return ops.run_op("index_select", (x, as_tensor(ids)), {"axis": axis})


def scatter_add_rows(x: Tensor, ids, num_rows: int) -> Tensor:
    """out[ids[i]] += x[i], producing ``num_rows`` rows."""
    return ops.run_op(
        "scatter_add_rows", (x, as_tensor(ids)), {"num_rows": int(num_rows)}
    )


def pad_rows(x: Tensor, target: int) -> Tensor:
    """Zero-pad the leading axis of ``x`` up to ``target`` rows."""
    return ops.run_op("pad_rows", (x,), {"target": int(target)})


def fill_constant(shape, value: float) -> Tensor:
    return ops.run_op(
        "fill_constant", (), {"shape": tuple(shape), "value": float(value)}
    )


def outer(a: Tensor, b: Tensor) -> Tensor:
    return ops.run_op("outer", (a, b))


def sequence_mask(length: Tensor, max_len: int) -> Tensor:
    """Boolean validity mask (max_len,) from a scalar length tensor."""
    return ops.run_op("sequence_mask", (length,), {"max_len": int(max_len)})


def logical_not(mask: Tensor) -> Tensor:
    return ops.run_op("logical_not", (mask,))


def gather_row(x: Tensor, index: Tensor, offset: int = 0) -> Tensor:
    """Row ``x[index + offset]`` with the index coming from the dataflow."""
    return ops.run_op("gather_row", (x, index), {"offset": int(offset)})


def mod_index(ids: Tensor, modulus: int) -> Tensor:
    return ops.run_op("mod_index", (ids,), {"modulus": int(modulus)})


def dropout(x: Tensor) -> Tensor:
    return ops.run_op("dropout", (x,))


def topk(scores: Tensor, k: int) -> Tensor:
    """Indices of the k largest entries along the last axis, sorted desc."""
    if k < 1:
        raise ValueError("k must be positive")
    return ops.run_op("topk", (scores,), {"k": int(k)})
