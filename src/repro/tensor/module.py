"""Module and Parameter container abstractions.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
mirroring ``torch.nn.Module`` at inference granularity: there is no autograd,
but there is state-dict export/import (used by the storage-bucket model
artifacts) and recursive parameter iteration (used by the memory-footprint
estimate of the deployment planner).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A learnable tensor; its bytes amortize across a batch during serving."""

    __slots__ = ()

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, is_param=True, name=name)


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int, shape) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # -- registration ---------------------------------------------------------

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- iteration --------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _name, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def parameter_bytes(self) -> int:
        """Total parameter footprint in bytes (fp32)."""
        return sum(p.nbytes for p in self.parameters())

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict ---------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            loaded = np.asarray(state[name], dtype=param.data.dtype)
            if loaded.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{loaded.shape} vs {param.data.shape}"
                )
            param.data = loaded

    # -- invocation -----------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
