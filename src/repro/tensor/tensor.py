"""The :class:`Tensor` wrapper around :class:`numpy.ndarray`.

Tensors are immutable-by-convention activation values flowing through a
model. All arithmetic dispatches through :func:`repro.tensor.ops.run_op`, so
every operation both computes a real result and emits cost accounting.

Two extra pieces of state ride along:

- ``is_param`` marks parameter tensors (their bytes are amortized across a
  batch by the latency model),
- ``catalog_scale`` marks tensors that stand in for a larger virtualized
  catalog (their op costs are multiplied up by the latency model).

During jit graph capture, using a tensor's *values* to steer Python control
flow (``bool(t)``, ``t.item()``, iteration) raises
:class:`~repro.tensor.jit.JitCompilationError` — this is how the
reproduction surfaces the paper's finding that LightSANs cannot be
JIT-optimized due to dynamic code paths.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import ops

Scalar = Union[int, float]


class Tensor:
    """A numpy-backed activation tensor with cost accounting."""

    __slots__ = ("data", "is_param", "catalog_scale", "name", "batch_invariant")

    def __init__(
        self,
        data,
        is_param: bool = False,
        catalog_scale: float = 1.0,
        name: Optional[str] = None,
        batch_invariant: Optional[bool] = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype not in (np.float32, np.int64, np.int8, np.bool_):
            if np.issubdtype(array.dtype, np.floating):
                array = array.astype(np.float32)
            elif np.issubdtype(array.dtype, np.integer):
                # int8 stays int8 (quantized tables); other ints are indices.
                array = array.astype(np.int64)
            elif array.dtype == bool:
                array = array.astype(np.bool_)
            else:
                array = array.astype(np.float32)
        self.data = array
        self.is_param = is_param
        self.catalog_scale = float(catalog_scale)
        self.name = name
        # Batch-invariant tensors (parameters and anything derived solely
        # from parameters/constants) are shared by every request in a batch;
        # the latency model amortizes their cost per batch, not per item.
        if batch_invariant is None:
            batch_invariant = is_param
        self.batch_invariant = batch_invariant

    # -- introspection ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def numpy(self) -> np.ndarray:
        """The raw ndarray (no cost is charged for peeking)."""
        return self.data

    def __repr__(self) -> str:
        kind = "Parameter" if self.is_param else "Tensor"
        return f"{kind}(shape={self.shape}, dtype={self.data.dtype})"

    # -- control-flow guards (jit dynamic-code-path detection) ---------------

    def _guard_dynamic_control_flow(self, reason: str) -> None:
        if ops.is_capturing():
            from repro.tensor.jit import JitCompilationError

            raise JitCompilationError(
                f"dynamic control flow: tensor values used for {reason} "
                "during jit tracing"
            )

    def __array__(self, dtype=None):
        # Silent numpy conversion escapes the traced dataflow (the value
        # would be baked as a constant), so it counts as a dynamic path.
        self._guard_dynamic_control_flow("numpy conversion")
        return self.data if dtype is None else self.data.astype(dtype)

    def __bool__(self) -> bool:
        self._guard_dynamic_control_flow("a Python branch")
        if self.size != 1:
            raise ValueError("truth value of a multi-element tensor is ambiguous")
        return bool(self.data.reshape(-1)[0])

    def item(self) -> float:
        self._guard_dynamic_control_flow("item() extraction")
        if self.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(-1)[0])

    def tolist(self) -> list:
        self._guard_dynamic_control_flow("tolist() extraction")
        return self.data.tolist()

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        return ops.run_op("add", (self, other))

    def __radd__(self, other) -> "Tensor":
        return ops.run_op("add", (other, self))

    def __sub__(self, other) -> "Tensor":
        return ops.run_op("sub", (self, other))

    def __rsub__(self, other) -> "Tensor":
        return ops.run_op("sub", (other, self))

    def __mul__(self, other) -> "Tensor":
        return ops.run_op("mul", (self, other))

    def __rmul__(self, other) -> "Tensor":
        return ops.run_op("mul", (other, self))

    def __truediv__(self, other) -> "Tensor":
        return ops.run_op("div", (self, other))

    def __rtruediv__(self, other) -> "Tensor":
        return ops.run_op("div", (other, self))

    def __neg__(self) -> "Tensor":
        return ops.run_op("neg", (self,))

    def __pow__(self, exponent) -> "Tensor":
        return ops.run_op("pow", (self, exponent))

    def __matmul__(self, other) -> "Tensor":
        return ops.run_op("matmul", (self, other))

    # -- shape manipulation ---------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.run_op("reshape", (self,), {"shape": shape})

    def transpose(self, *axes) -> "Tensor":
        attrs = {"axes": axes if axes else None}
        return ops.run_op("transpose", (self,), attrs)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def slice(self, key) -> "Tensor":
        return ops.run_op("slice", (self,), {"key": key})

    def __getitem__(self, key) -> "Tensor":
        return self.slice(key)

    # -- reductions / activations --------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return ops.run_op("reduce_sum", (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return ops.run_op("reduce_mean", (self,), {"axis": axis, "keepdims": keepdims})

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return ops.run_op("reduce_max", (self,), {"axis": axis, "keepdims": keepdims})

    def exp(self) -> "Tensor":
        return ops.run_op("exp", (self,))

    def log(self) -> "Tensor":
        return ops.run_op("log", (self,))

    def sqrt(self) -> "Tensor":
        return ops.run_op("sqrt", (self,))

    def tanh(self) -> "Tensor":
        return ops.run_op("tanh", (self,))

    def sigmoid(self) -> "Tensor":
        return ops.run_op("sigmoid", (self,))

    def relu(self) -> "Tensor":
        return ops.run_op("relu", (self,))

    def softmax(self, axis: int = -1) -> "Tensor":
        return ops.run_op("softmax", (self,), {"axis": axis})


def as_tensor(value, name: Optional[str] = None) -> Tensor:
    """Coerce an ndarray / list / scalar / Tensor to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, name=name)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    return ops.run_op("concat", tuple(tensors), {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return ops.run_op("stack", tuple(tensors), {"axis": axis})
