"""Primitive kernels with cost accounting.

Every tensor operation in :mod:`repro.tensor` funnels through :func:`_run`,
which executes a real numpy kernel and emits a :class:`CostRecord` into the
ambient :class:`CostTrace` (if one is active). The records carry everything
the roofline latency model in :mod:`repro.hardware.latency_model` needs:

- ``flops``          floating point operations performed,
- ``param_bytes``    bytes of *parameters* read (amortizable over a batch),
- ``read_bytes``     bytes of per-request activations read,
- ``write_bytes``    bytes of per-request activations written,
- ``launches``       kernel launches (the per-op dispatch overhead unit),
- ``host_op``        whether the op runs on the host interpreter even when
                     the model is deployed on an accelerator (the SR-GNN /
                     GC-SAN numpy-in-forward bug from the paper),
- ``transfer_bytes`` bytes crossing the host/device boundary for host ops,
- ``catalog_scale``  multiplier for ops whose tensors stand in for a larger
                     virtualized catalog (see
                     :class:`repro.tensor.layers.CatalogEmbedding`).

Kernels are registered by name in :data:`KERNELS` so that
:class:`repro.tensor.jit.ScriptedModule` can re-execute captured graphs.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Cost records and traces
# ---------------------------------------------------------------------------


@dataclass
class CostRecord:
    """Cost metadata for one executed kernel."""

    op: str
    launches: int = 1
    flops: float = 0.0
    param_bytes: float = 0.0
    read_bytes: float = 0.0
    write_bytes: float = 0.0
    host_op: bool = False
    transfer_bytes: float = 0.0
    catalog_scale: float = 1.0
    elementwise: bool = False
    batch_invariant: bool = False

    def scaled(self) -> "CostRecord":
        """Return a copy with the catalog scale folded into the raw costs."""
        s = self.catalog_scale
        return CostRecord(
            op=self.op,
            launches=self.launches,
            flops=self.flops * s,
            param_bytes=self.param_bytes * s,
            read_bytes=self.read_bytes * s,
            write_bytes=self.write_bytes * s,
            host_op=self.host_op,
            transfer_bytes=self.transfer_bytes * s,
            catalog_scale=1.0,
            elementwise=self.elementwise,
            batch_invariant=self.batch_invariant,
        )


@dataclass
class CostTrace:
    """An ordered stream of cost records for one model invocation."""

    records: List[CostRecord] = field(default_factory=list)

    def append(self, record: CostRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CostRecord]:
        return iter(self.records)

    @property
    def total_flops(self) -> float:
        return sum(r.flops * r.catalog_scale for r in self.records)

    @property
    def total_launches(self) -> int:
        return sum(r.launches for r in self.records)

    @property
    def total_param_bytes(self) -> float:
        return sum(r.param_bytes * r.catalog_scale for r in self.records)

    @property
    def total_activation_bytes(self) -> float:
        return sum(
            (r.read_bytes + r.write_bytes) * r.catalog_scale for r in self.records
        )

    @property
    def total_transfer_bytes(self) -> float:
        return sum(r.transfer_bytes * r.catalog_scale for r in self.records)

    @property
    def host_op_count(self) -> int:
        return sum(1 for r in self.records if r.host_op)

    def summary(self) -> Dict[str, float]:
        """Aggregate totals, useful for debugging and reports."""
        return {
            "ops": float(len(self.records)),
            "launches": float(self.total_launches),
            "flops": self.total_flops,
            "param_bytes": self.total_param_bytes,
            "activation_bytes": self.total_activation_bytes,
            "transfer_bytes": self.total_transfer_bytes,
            "host_ops": float(self.host_op_count),
        }


_TRACE_STACK: List[CostTrace] = []


@contextlib.contextmanager
def cost_trace() -> Iterator[CostTrace]:
    """Collect the cost records of all ops executed inside the block."""
    trace = CostTrace()
    _TRACE_STACK.append(trace)
    try:
        yield trace
    finally:
        _TRACE_STACK.remove(trace)


def current_trace() -> Optional[CostTrace]:
    """The innermost active cost trace, or ``None``."""
    return _TRACE_STACK[-1] if _TRACE_STACK else None


def record_cost(record: CostRecord) -> None:
    """Append a record to every active trace (outermost first)."""
    for trace in _TRACE_STACK:
        trace.append(record)


# ---------------------------------------------------------------------------
# Graph capture hook (used by repro.tensor.jit)
# ---------------------------------------------------------------------------

_GRAPH_BUILDER = None


def set_graph_builder(builder) -> None:
    """Install (or clear, with ``None``) the active jit graph builder."""
    global _GRAPH_BUILDER
    _GRAPH_BUILDER = builder


def graph_builder():
    return _GRAPH_BUILDER


def is_capturing() -> bool:
    return _GRAPH_BUILDER is not None


# ---------------------------------------------------------------------------
# Kernel registry and dispatch
# ---------------------------------------------------------------------------

KERNELS: Dict[str, Callable] = {}


def kernel(name: str):
    """Register a kernel: ``fn(arrays, attrs) -> (out_array, CostRecord)``."""

    def decorate(fn):
        KERNELS[name] = fn
        return fn

    return decorate


def _unwrap(value):
    """ndarray for a Tensor, passthrough for scalars/ndarrays."""
    from repro.tensor.tensor import Tensor

    if isinstance(value, Tensor):
        return value.data
    return value


def _input_scale(values: Sequence) -> float:
    from repro.tensor.tensor import Tensor

    scale = 1.0
    for value in values:
        if isinstance(value, Tensor):
            scale = max(scale, value.catalog_scale)
    return scale


def _split_input_bytes(values: Sequence) -> Tuple[float, float]:
    """(batch-amortized bytes, per-item activation read bytes) over inputs.

    Parameter tensors AND batch-invariant activations (e.g. a normalized
    copy of the catalog table) are shared across a batch, so their reads
    amortize like weight streaming.
    """
    from repro.tensor.tensor import Tensor

    param_bytes = 0.0
    read_bytes = 0.0
    for value in values:
        if isinstance(value, Tensor):
            if value.is_param or value.batch_invariant:
                param_bytes += value.data.nbytes
            else:
                read_bytes += value.data.nbytes
        elif isinstance(value, np.ndarray):
            read_bytes += value.nbytes
    return param_bytes, read_bytes


def _all_inputs_invariant(values: Sequence) -> bool:
    from repro.tensor.tensor import Tensor

    return all(
        value.is_param or value.batch_invariant
        for value in values
        if isinstance(value, Tensor)
    )


def run_op(name: str, inputs: Sequence, attrs: Optional[dict] = None):
    """Execute the registered kernel ``name`` and emit its cost record.

    ``inputs`` may mix :class:`~repro.tensor.tensor.Tensor`, ndarray and
    Python scalars. Returns a Tensor wrapping the kernel output, with the
    catalog scale propagated as the max over the inputs.
    """
    from repro.tensor.tensor import Tensor

    attrs = attrs or {}
    arrays = [_unwrap(v) for v in inputs]
    # IEEE float semantics (inf/nan propagate) without warning noise, as in
    # the frameworks this substrate stands in for.
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        out_array, record = KERNELS[name](arrays, attrs)
    record.catalog_scale = _input_scale(inputs)
    record.batch_invariant = _all_inputs_invariant(inputs)
    if record.param_bytes == 0.0 and record.read_bytes == 0.0:
        record.param_bytes, record.read_bytes = _split_input_bytes(inputs)
    record_cost(record)
    out = Tensor(
        out_array,
        catalog_scale=record.catalog_scale,
        batch_invariant=record.batch_invariant,
    )
    builder = _GRAPH_BUILDER
    if builder is not None:
        builder.add_op(name, inputs, attrs, out, record)
    return out


# ---------------------------------------------------------------------------
# Shape / cost helpers
# ---------------------------------------------------------------------------


def _size(array: np.ndarray) -> int:
    return int(array.size)


def _out_record(
    op: str,
    out: np.ndarray,
    flops: float,
    launches: int = 1,
    elementwise: bool = False,
    host_op: bool = False,
    transfer_bytes: float = 0.0,
) -> CostRecord:
    return CostRecord(
        op=op,
        launches=launches,
        flops=float(flops),
        write_bytes=float(out.nbytes),
        elementwise=elementwise,
        host_op=host_op,
        transfer_bytes=float(transfer_bytes),
    )


# ---------------------------------------------------------------------------
# Elementwise kernels
# ---------------------------------------------------------------------------

_ELEMENTWISE_NUMPY = {
    "add": (np.add, 1.0),
    "sub": (np.subtract, 1.0),
    "mul": (np.multiply, 1.0),
    "div": (np.divide, 1.0),
    "maximum": (np.maximum, 1.0),
    "minimum": (np.minimum, 1.0),
    "pow": (np.power, 4.0),
}


def _make_binary_kernel(name: str, fn, flop_factor: float):
    @kernel(name)
    def _kernel(arrays, attrs, _fn=fn, _name=name, _factor=flop_factor):
        out = _fn(arrays[0], arrays[1])
        out = np.asarray(out, dtype=np.float32)
        return out, _out_record(_name, out, _size(out) * _factor, elementwise=True)

    return _kernel


for _name, (_fn, _factor) in _ELEMENTWISE_NUMPY.items():
    _make_binary_kernel(_name, _fn, _factor)


_UNARY_NUMPY = {
    "neg": (np.negative, 1.0),
    "exp": (np.exp, 6.0),
    "log": (np.log, 6.0),
    "sqrt": (np.sqrt, 2.0),
    "tanh": (np.tanh, 8.0),
    "abs": (np.abs, 1.0),
}


def _make_unary_kernel(name: str, fn, flop_factor: float):
    @kernel(name)
    def _kernel(arrays, attrs, _fn=fn, _name=name, _factor=flop_factor):
        out = np.asarray(_fn(arrays[0]), dtype=np.float32)
        return out, _out_record(_name, out, _size(out) * _factor, elementwise=True)

    return _kernel


for _name, (_fn, _factor) in _UNARY_NUMPY.items():
    _make_unary_kernel(_name, _fn, _factor)


@kernel("sigmoid")
def _sigmoid_kernel(arrays, attrs):
    x = np.asarray(arrays[0], dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    out = out.astype(np.float32)
    return out, _out_record("sigmoid", out, _size(out) * 8.0, elementwise=True)


@kernel("relu")
def _relu_kernel(arrays, attrs):
    out = np.maximum(arrays[0], 0.0).astype(np.float32)
    return out, _out_record("relu", out, _size(out), elementwise=True)


@kernel("gelu")
def _gelu_kernel(arrays, attrs):
    x = arrays[0]
    c = math.sqrt(2.0 / math.pi)
    out = (0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))).astype(np.float32)
    return out, _out_record("gelu", out, _size(out) * 12.0, elementwise=True)


@kernel("scale")
def _scale_kernel(arrays, attrs):
    out = (arrays[0] * attrs["factor"]).astype(np.float32)
    return out, _out_record("scale", out, _size(out), elementwise=True)


@kernel("fill_constant")
def _fill_constant_kernel(arrays, attrs):
    out = np.full(attrs["shape"], attrs["value"], dtype=np.float32)
    return out, _out_record("fill_constant", out, 0.0, elementwise=True)


# ---------------------------------------------------------------------------
# Linear algebra kernels
# ---------------------------------------------------------------------------


@kernel("matmul")
def _matmul_kernel(arrays, attrs):
    a, b = arrays
    out = np.matmul(a, b).astype(np.float32)
    k = a.shape[-1]
    flops = 2.0 * _size(out) * k
    return out, _out_record("matmul", out, flops)


@kernel("linear")
def _linear_kernel(arrays, attrs):
    """Fused ``x @ W.T + b`` — the workhorse of every model here."""
    x, weight = arrays[0], arrays[1]
    out = np.matmul(x, weight.T)
    if len(arrays) > 2 and arrays[2] is not None:
        out = out + arrays[2]
    out = out.astype(np.float32)
    flops = 2.0 * _size(out) * x.shape[-1] + _size(out)
    return out, _out_record("linear", out, flops)


@kernel("linear_act")
def _linear_act_kernel(arrays, attrs):
    """JIT-fused linear + activation, produced by the fusion pass."""
    x, weight = arrays[0], arrays[1]
    out = np.matmul(x, weight.T)
    if len(arrays) > 2 and arrays[2] is not None:
        out = out + arrays[2]
    activation = attrs.get("activation", "relu")
    if activation == "relu":
        out = np.maximum(out, 0.0)
    elif activation == "tanh":
        out = np.tanh(out)
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-out))
    out = out.astype(np.float32)
    flops = 2.0 * _size(out) * x.shape[-1] + 9.0 * _size(out)
    return out, _out_record("linear_act", out, flops)


@kernel("outer")
def _outer_kernel(arrays, attrs):
    out = np.outer(arrays[0], arrays[1]).astype(np.float32)
    return out, _out_record("outer", out, _size(out))


# ---------------------------------------------------------------------------
# Shape kernels (views are free in eager PyTorch; copies are not)
# ---------------------------------------------------------------------------


@kernel("reshape")
def _reshape_kernel(arrays, attrs):
    out = arrays[0].reshape(attrs["shape"])
    return out, CostRecord(op="reshape", launches=0)


@kernel("transpose")
def _transpose_kernel(arrays, attrs):
    out = np.transpose(arrays[0], attrs.get("axes"))
    return out, CostRecord(op="transpose", launches=0)


@kernel("concat")
def _concat_kernel(arrays, attrs):
    out = np.concatenate(arrays, axis=attrs.get("axis", -1)).astype(np.float32)
    return out, _out_record("concat", out, 0.0, elementwise=True)


@kernel("stack")
def _stack_kernel(arrays, attrs):
    out = np.stack(arrays, axis=attrs.get("axis", 0)).astype(np.float32)
    return out, _out_record("stack", out, 0.0, elementwise=True)


@kernel("slice")
def _slice_kernel(arrays, attrs):
    out = arrays[0][attrs["key"]]
    out = np.ascontiguousarray(out)
    return out, _out_record("slice", out, 0.0)


@kernel("pad_rows")
def _pad_rows_kernel(arrays, attrs):
    x = arrays[0]
    target = attrs["target"]
    pad = target - x.shape[0]
    out = np.pad(x, [(0, pad)] + [(0, 0)] * (x.ndim - 1)).astype(np.float32)
    return out, _out_record("pad_rows", out, 0.0)


# ---------------------------------------------------------------------------
# Reductions, normalization, attention pieces
# ---------------------------------------------------------------------------


def _reduce_record(name: str, x: np.ndarray, out: np.ndarray) -> CostRecord:
    record = _out_record(name, out, _size(x))
    record.read_bytes = float(x.nbytes)
    return record


@kernel("reduce_sum")
def _reduce_sum_kernel(arrays, attrs):
    out = np.sum(arrays[0], axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False))
    out = np.asarray(out, dtype=np.float32)
    return out, _reduce_record("reduce_sum", arrays[0], out)


@kernel("reduce_mean")
def _reduce_mean_kernel(arrays, attrs):
    out = np.mean(arrays[0], axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False))
    out = np.asarray(out, dtype=np.float32)
    return out, _reduce_record("reduce_mean", arrays[0], out)


@kernel("reduce_max")
def _reduce_max_kernel(arrays, attrs):
    out = np.max(arrays[0], axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False))
    out = np.asarray(out, dtype=np.float32)
    return out, _reduce_record("reduce_max", arrays[0], out)


@kernel("softmax")
def _softmax_kernel(arrays, attrs):
    x = arrays[0]
    axis = attrs.get("axis", -1)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = (exp / np.sum(exp, axis=axis, keepdims=True)).astype(np.float32)
    record = _out_record("softmax", out, 8.0 * _size(x))
    record.read_bytes = float(x.nbytes) * 3.0  # max, exp, normalize passes
    return out, record


@kernel("layer_norm")
def _layer_norm_kernel(arrays, attrs):
    x, gamma, beta = arrays
    eps = attrs.get("eps", 1e-6)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    out = ((x - mean) / np.sqrt(var + eps) * gamma + beta).astype(np.float32)
    record = _out_record("layer_norm", out, 8.0 * _size(x))
    record.read_bytes = float(x.nbytes) * 2.0
    return out, record


@kernel("masked_fill")
def _masked_fill_kernel(arrays, attrs):
    x, mask = arrays
    out = np.where(mask.astype(bool), np.float32(attrs["value"]), x).astype(np.float32)
    return out, _out_record("masked_fill", out, _size(out), elementwise=True)


@kernel("where")
def _where_kernel(arrays, attrs):
    cond, a, b = arrays
    out = np.where(cond.astype(bool), a, b).astype(np.float32)
    return out, _out_record("where", out, _size(out), elementwise=True)


# ---------------------------------------------------------------------------
# Embedding / gather / top-k kernels
# ---------------------------------------------------------------------------


@kernel("embedding_lookup")
def _embedding_lookup_kernel(arrays, attrs):
    table, ids = arrays
    idx = np.asarray(ids, dtype=np.int64)
    out = table[idx].astype(np.float32)
    record = _out_record("embedding_lookup", out, 0.0)
    record.param_bytes = float(out.nbytes)  # only touched rows are read
    return out, record


@kernel("index_select")
def _index_select_kernel(arrays, attrs):
    x, ids = arrays
    idx = np.asarray(ids, dtype=np.int64)
    out = np.take(x, idx, axis=attrs.get("axis", 0)).astype(np.float32)
    return out, _out_record("index_select", out, 0.0)


@kernel("scatter_add_rows")
def _scatter_add_rows_kernel(arrays, attrs):
    """out[ids[i]] += x[i] over rows — used by graph aggregation."""
    x, ids = arrays
    num_rows = attrs["num_rows"]
    out = np.zeros((num_rows,) + x.shape[1:], dtype=np.float32)
    np.add.at(out, np.asarray(ids, dtype=np.int64), x)
    return out, _out_record("scatter_add_rows", out, _size(x))


@kernel("topk")
def _topk_kernel(arrays, attrs):
    scores = arrays[0]
    k = min(attrs["k"], scores.shape[-1])
    part = np.argpartition(-scores, k - 1, axis=-1)
    top = np.take(part, np.arange(k), axis=-1)
    top_scores = np.take_along_axis(scores, top, axis=-1)
    order = np.argsort(-top_scores, axis=-1)
    idx = np.take_along_axis(top, order, axis=-1)
    record = CostRecord(
        op="topk",
        launches=1,
        flops=2.0 * _size(scores) + _size(scores) * math.log2(max(k, 2)),
        read_bytes=float(scores.nbytes),
        write_bytes=float(idx.nbytes),
    )
    return idx.astype(np.int64), record


# ---------------------------------------------------------------------------
# Session / sequence kernels
# ---------------------------------------------------------------------------


@kernel("dropout")
def _dropout_kernel(arrays, attrs):
    """Inference-mode dropout: numerically the identity, but eager PyTorch
    still dispatches a kernel for it. The jit dead-op pass removes it."""
    out = arrays[0]
    return out, _out_record("dropout", out, 0.0, elementwise=True)


@kernel("mod_index")
def _mod_index_kernel(arrays, attrs):
    out = (np.asarray(arrays[0], dtype=np.int64) % attrs["modulus"]).astype(np.int64)
    record = CostRecord(op="mod_index", launches=1, flops=float(out.size))
    record.write_bytes = float(out.nbytes)
    return out, record


@kernel("sequence_mask")
def _sequence_mask_kernel(arrays, attrs):
    """Boolean validity mask of shape (max_len,) from a scalar length."""
    length = int(np.asarray(arrays[0]).reshape(-1)[0])
    max_len = attrs["max_len"]
    out = np.arange(max_len) < length
    record = CostRecord(op="sequence_mask", launches=1, flops=float(max_len))
    record.write_bytes = float(out.nbytes)
    return out, record


@kernel("logical_not")
def _logical_not_kernel(arrays, attrs):
    out = np.logical_not(arrays[0].astype(bool))
    record = CostRecord(op="logical_not", launches=1, flops=float(out.size))
    record.write_bytes = float(out.nbytes)
    return out, record


@kernel("gather_row")
def _gather_row_kernel(arrays, attrs):
    """Pick one leading-axis row by a (traced) scalar index tensor."""
    x, index = arrays
    row = int(np.asarray(index).reshape(-1)[0]) + attrs.get("offset", 0)
    out = np.ascontiguousarray(x[row])
    return out, _out_record("gather_row", out, 0.0)


@kernel("gru_sequence")
def _gru_sequence_kernel(arrays, attrs):
    """Fused single-layer GRU over a full sequence (the cuDNN-style path).

    Inputs: x (L, in), w_ih (3d, in), w_hh (3d, d), b_ih (3d,), b_hh (3d,),
    h0 (d,). Output: all hidden states (L, d). One kernel launch, like
    ``torch.nn.GRU`` dispatching to cuDNN.
    """
    x, w_ih, w_hh, b_ih, b_hh, h0 = arrays
    seq_len = x.shape[0]
    d = w_hh.shape[1]
    h = h0.astype(np.float32)
    gi_all = x @ w_ih.T + b_ih  # (L, 3d): the input projections batch nicely
    outputs = np.empty((seq_len, d), dtype=np.float32)
    for t in range(seq_len):
        gh = h @ w_hh.T + b_hh
        gi = gi_all[t]
        reset = 1.0 / (1.0 + np.exp(-(gi[0:d] + gh[0:d])))
        update = 1.0 / (1.0 + np.exp(-(gi[d : 2 * d] + gh[d : 2 * d])))
        candidate = np.tanh(gi[2 * d : 3 * d] + reset * gh[2 * d : 3 * d])
        h = (1.0 - update) * h + update * candidate
        outputs[t] = h
    in_dim = x.shape[1]
    flops = seq_len * (6.0 * d * (in_dim + d) + 30.0 * d)
    record = CostRecord(
        op="gru_sequence",
        launches=1,
        flops=flops,
        write_bytes=float(outputs.nbytes),
    )
    return outputs, record


# ---------------------------------------------------------------------------
# Host-side escape hatch (the SR-GNN / GC-SAN numpy-in-forward pattern)
# ---------------------------------------------------------------------------


def host_numpy(
    op_name: str,
    fn: Callable[..., np.ndarray],
    *inputs,
    catalog_scale: Optional[float] = None,
):
    """Run ``fn`` on raw ndarrays *on the host*, outside the device stream.

    On a GPU deployment this forces a device→host→device round trip; the
    cost model charges PCIe transfer for all input and output bytes plus a
    synchronization stall. This deliberately reproduces the RecBole SR-GNN /
    GC-SAN inference bottleneck the paper reports.

    ``catalog_scale`` tags the output (and the op's cost) as standing in for
    a virtualized catalog — RepeatNet's dense one-hot scatter uses this.
    """
    from repro.tensor.tensor import Tensor

    arrays = [_unwrap(v) for v in inputs]
    out = np.asarray(fn(*arrays))
    in_bytes = sum(a.nbytes for a in arrays if isinstance(a, np.ndarray))
    scale = catalog_scale if catalog_scale is not None else _input_scale(inputs)
    record = CostRecord(
        op=f"host[{op_name}]",
        launches=1,
        flops=0.0,
        read_bytes=float(in_bytes),
        write_bytes=float(out.nbytes),
        host_op=True,
        transfer_bytes=float(in_bytes + out.nbytes),
        catalog_scale=scale,
    )
    record_cost(record)
    builder = _GRAPH_BUILDER
    result = Tensor(out, catalog_scale=record.catalog_scale)
    if builder is not None:
        builder.add_host_op(op_name, fn, inputs, result, record)
    return result
