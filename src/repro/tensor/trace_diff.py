"""Comparing cost traces across execution modes.

Answers "what exactly did the optimizer buy?" with numbers: launches,
FLOPs, parameter/activation traffic and modeled device latency, side by
side for two traces of the same model (eager vs JIT, JIT vs ONNX, fp32 vs
int8). Used by the ablation benchmarks and handy interactively::

    from repro.core.registry import GLOBAL_REGISTRY
    from repro.tensor.trace_diff import diff_traces
    eager, _, _ = GLOBAL_REGISTRY.trace("sasrec", 100_000, "eager")
    jit, _, _ = GLOBAL_REGISTRY.trace("sasrec", 100_000, "jit")
    print(diff_traces(eager, jit, labels=("eager", "jit")).render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware.device import DeviceModel
from repro.hardware.latency_model import LatencyModel
from repro.tensor.ops import CostTrace


@dataclass(frozen=True)
class TraceSummary:
    """The aggregate quantities one trace contributes."""

    label: str
    ops: int
    launches: float
    flops: float
    param_bytes: float
    activation_bytes: float
    transfer_bytes: float
    host_ops: int

    @classmethod
    def of(cls, trace: CostTrace, label: str) -> "TraceSummary":
        return cls(
            label=label,
            ops=len(trace),
            launches=float(trace.total_launches),
            flops=trace.total_flops,
            param_bytes=trace.total_param_bytes,
            activation_bytes=trace.total_activation_bytes,
            transfer_bytes=trace.total_transfer_bytes,
            host_ops=trace.host_op_count,
        )


@dataclass(frozen=True)
class TraceDiff:
    """Two summaries plus optional modeled latencies."""

    before: TraceSummary
    after: TraceSummary
    latency_before_s: Optional[float] = None
    latency_after_s: Optional[float] = None

    def ratio(self, field: str) -> float:
        """after / before for one quantity (1.0 = unchanged)."""
        numerator = getattr(self.after, field)
        denominator = getattr(self.before, field)
        if denominator == 0:
            return 1.0 if numerator == 0 else float("inf")
        return numerator / denominator

    @property
    def latency_speedup(self) -> Optional[float]:
        if self.latency_before_s is None or self.latency_after_s is None:
            return None
        if self.latency_after_s == 0:
            return float("inf")
        return self.latency_before_s / self.latency_after_s

    def render(self) -> str:
        rows = [
            ("ops", "ops", "d"),
            ("launches", "launches", ".1f"),
            ("flops", "GFLOP", "e"),
            ("param_bytes", "param MB", "e"),
            ("activation_bytes", "act MB", "e"),
            ("transfer_bytes", "PCIe MB", "e"),
            ("host_ops", "host ops", "d"),
        ]
        scale = {
            "flops": 1e9,
            "param_bytes": 1e6,
            "activation_bytes": 1e6,
            "transfer_bytes": 1e6,
        }
        lines = [
            f"{'quantity':<12} {self.before.label:>12} {self.after.label:>12} "
            f"{'ratio':>8}"
        ]
        for field, label, _fmt in rows:
            before_value = getattr(self.before, field) / scale.get(field, 1)
            after_value = getattr(self.after, field) / scale.get(field, 1)
            lines.append(
                f"{label:<12} {before_value:>12.3f} {after_value:>12.3f} "
                f"{self.ratio(field):>7.2f}x"
            )
        if self.latency_speedup is not None:
            lines.append(
                f"{'latency ms':<12} {self.latency_before_s * 1e3:>12.3f} "
                f"{self.latency_after_s * 1e3:>12.3f} "
                f"{1.0 / self.latency_speedup:>7.2f}x"
            )
        return "\n".join(lines)


def diff_traces(
    before: CostTrace,
    after: CostTrace,
    labels: Tuple[str, str] = ("before", "after"),
    device: Optional[DeviceModel] = None,
) -> TraceDiff:
    """Summarize and compare two traces (optionally with device latency)."""
    latency_before = latency_after = None
    if device is not None:
        model = LatencyModel(device)
        latency_before = model.profile(before).latency(1)
        latency_after = model.profile(after).latency(1)
    return TraceDiff(
        before=TraceSummary.of(before, labels[0]),
        after=TraceSummary.of(after, labels[1]),
        latency_before_s=latency_before,
        latency_after_s=latency_after,
    )
