"""Int8 model quantization — the paper's first future-work direction.

"We will explore the incorporation of techniques to trade-off prediction
quality with inference latency, such as model quantisation [36] ..."
(Section IV). Since SBR inference latency is dominated by streaming the
C x d catalog table (Section II), quantizing *that table* to int8 cuts the
dominant memory traffic by 4x at a small top-k accuracy cost.

Scheme: symmetric per-row int8 quantization. Each embedding row r stores
``int8 = round(r / scale_r)`` with ``scale_r = max(|r|) / 127``. The scoring
inner product runs on int8 data with fp32 accumulation (the standard
VNNI/dp4a path), so FLOPs stay put while parameter bytes drop 4x (plus the
4-byte row scale).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import ops
from repro.tensor.layers import CatalogEmbedding
from repro.tensor.module import Module, Parameter
from repro.tensor.ops import CostRecord, kernel
from repro.tensor.tensor import Tensor


def quantize_rows(table: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 quantization -> (int8 table, fp32 scales)."""
    table = np.asarray(table, dtype=np.float32)
    magnitudes = np.abs(table).max(axis=1)
    scales = np.where(magnitudes > 0, magnitudes / 127.0, 1.0).astype(np.float32)
    quantized = np.clip(
        np.round(table / scales[:, None]), -127, 127
    ).astype(np.int8)
    return quantized, scales


def dequantize_rows(quantized: np.ndarray, scales: np.ndarray) -> np.ndarray:
    return quantized.astype(np.float32) * scales[:, None]


@kernel("quantized_scoring")
def _quantized_scoring_kernel(arrays, attrs):
    """Fused int8 MIPS: scores = (q int8-table @ query) * row_scales.

    Parameter traffic is the int8 table + the fp32 scales — one quarter of
    the fp32 scan that dominates every model's inference.
    """
    query, table_int8, scales = arrays
    # int8 GEMV with fp32 accumulation (numpy: widen then accumulate).
    raw = table_int8.astype(np.float32) @ query.astype(np.float32)
    out = (raw * scales).astype(np.float32)
    record = CostRecord(
        op="quantized_scoring",
        launches=1,
        flops=2.0 * table_int8.shape[0] * table_int8.shape[1] + table_int8.shape[0],
        write_bytes=float(out.nbytes),
    )
    # Bytes are set explicitly: int8 table (1 B/element) + fp32 scales.
    record.param_bytes = float(table_int8.nbytes + scales.nbytes)
    record.read_bytes = float(query.nbytes)
    return out, record


class QuantizedCatalogEmbedding(Module):
    """An int8-quantized scoring view over a :class:`CatalogEmbedding`.

    Lookups of session items dequantize on the fly (tiny); catalog scoring
    runs the fused int8 kernel. The virtual-catalog scale of the source
    embedding is preserved, so the latency model charges the logical C.
    """

    def __init__(self, source: CatalogEmbedding):
        super().__init__()
        self.num_items = source.num_items
        self.embedding_dim = source.embedding_dim
        self.materialized = source.materialized
        self._catalog_scale = source.catalog_scale
        quantized, scales = quantize_rows(source.weight.data)
        self.weight_int8 = Parameter(quantized, name="weight_int8")
        self.row_scales = Parameter(scales, name="row_scales")
        # Scoring views (catalog-scaled), created once so jit capture binds
        # stable parameter leaves.
        scoring_table = Parameter(self.weight_int8.data, name="weight_int8.scoring")
        scoring_table.catalog_scale = self._catalog_scale
        scoring_scales = Parameter(self.row_scales.data, name="row_scales.scoring")
        scoring_scales.catalog_scale = self._catalog_scale
        object.__setattr__(self, "_scoring_table", scoring_table)
        object.__setattr__(self, "_scoring_scales", scoring_scales)
        column_scales = Parameter(
            self.row_scales.data.reshape(-1, 1), name="row_scales.col"
        )
        object.__setattr__(self, "_column_scales", column_scales)

    @property
    def catalog_scale(self) -> float:
        return self._catalog_scale

    def map_item_ids(self, ids) -> np.ndarray:
        ids = np.asarray(ids if not isinstance(ids, Tensor) else ids.data, np.int64)
        if np.any(ids < 0) or np.any(ids >= self.num_items):
            raise ValueError("item id outside catalog")
        return ids % self.materialized

    def forward(self, ids) -> Tensor:
        """Dequantized session-item embeddings (small, per-request)."""
        if isinstance(ids, Tensor):
            rows = ops.run_op("mod_index", (ids,), {"modulus": self.materialized})
        else:
            rows = Tensor(self.map_item_ids(ids))
        int8_rows = ops.run_op("embedding_lookup", (self.weight_int8, rows))
        scale_rows = ops.run_op("embedding_lookup", (self._column_scales, rows))
        return int8_rows * scale_rows

    def score(self, query: Tensor) -> Tensor:
        """Full-catalog int8 inner-product scores for a (d,) query."""
        return ops.run_op(
            "quantized_scoring", (query, self._scoring_table, self._scoring_scales)
        )

    def quantization_error(self, source: CatalogEmbedding) -> float:
        """Mean relative L2 reconstruction error of the materialized rows."""
        restored = dequantize_rows(self.weight_int8.data, self.row_scales.data)
        original = source.weight.data
        norms = np.linalg.norm(original, axis=1)
        errors = np.linalg.norm(restored - original, axis=1)
        return float(np.mean(errors / np.maximum(norms, 1e-12)))


def quantize_model(model) -> "QuantizedSessionRecModel":
    """Wrap a SessionRecModel with an int8 scoring head."""
    from repro.models.base import SessionRecModel

    if not isinstance(model, SessionRecModel):
        raise TypeError("quantize_model expects a SessionRecModel")
    if not getattr(model, "supports_quantized_head", True):
        raise ValueError(
            f"{model.name} fuses scoring into its forward pass and cannot "
            "take a swapped quantized head"
        )
    return QuantizedSessionRecModel(model)


class QuantizedSessionRecModel(Module):
    """A SessionRecModel whose catalog scoring runs the int8 kernel.

    The encoder (GRU/attention/transformer) stays fp32 — it is a vanishing
    share of the cost; the win is the 4x cheaper catalog scan.
    """

    def __init__(self, source):
        super().__init__()
        self.source = source
        self.name = f"{source.name}-int8"
        self.quantized_embedding = QuantizedCatalogEmbedding(source.item_embedding)
        self.top_k = source.top_k
        self.num_items = source.num_items
        self.max_session_length = source.max_session_length

    def forward(self, items: Tensor, length: Tensor) -> Tensor:
        session_repr = self.source.encode_session(items, length)
        scores = self.quantized_embedding.score(session_repr)
        from repro.tensor import functional as F

        return F.topk(scores, self.top_k)

    def recommend(self, session_items) -> np.ndarray:
        padded, length = self.source.prepare_inputs(session_items)
        return self.forward(Tensor(padded), Tensor(length)).numpy()

    def example_inputs(self):
        return self.source.example_inputs()

    def prepare_inputs(self, session_items):
        return self.source.prepare_inputs(session_items)

    def resident_bytes(self) -> float:
        """Quantization shrinks the logical table to 1 byte/element."""
        table_virtual = self.num_items * (self.source.embedding_dim * 1.0 + 4.0)
        other = self.source.parameter_bytes() - self.source.item_embedding.weight.nbytes
        return table_virtual + max(other, 0.0)

    def score_bytes_per_item(self) -> float:
        return self.source.score_bytes_per_item()

    def artifact_metadata(self) -> dict:
        metadata = self.source.artifact_metadata()
        metadata["quantization"] = "int8-per-row"
        return metadata
