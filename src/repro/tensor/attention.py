"""Attention primitives: scaled dot-product and multi-head attention.

Used by NARM (hybrid attention encoder), STAMP (gated self-attention), the
transformer models (SASRec, CORE, LightSANs) and GC-SAN's self-attention
block. Sessions are short (the paper's workloads have power-law lengths with
a small mean), so the quadratic-in-length terms are cheap; the kernel-launch
count is what matters for small catalogs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor import functional as F
from repro.tensor.layers import Dropout, LayerNorm, Linear
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Attention over ``(len_q, d) x (len_k, d) x (len_k, d_v)`` inputs."""
    d = query.shape[-1]
    scores = F.scale(query @ key.T, 1.0 / math.sqrt(d))
    if mask is not None:
        scores = F.masked_fill(scores, mask, -1e9)
    weights = F.softmax(scores, axis=-1)
    return weights @ value


class MultiHeadAttention(Module):
    """Multi-head self/cross attention with output projection."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor, length: int) -> Tensor:
        # (L, dim) -> (heads, L, head_dim)
        return x.reshape(length, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        len_q, len_k = query.shape[0], key.shape[0]

        q = self._split_heads(self.q_proj(query), len_q)
        k = self._split_heads(self.k_proj(key), len_k)
        v = self._split_heads(self.v_proj(value), len_k)

        scores = F.scale(q @ k.transpose(0, 2, 1), 1.0 / math.sqrt(self.head_dim))
        if mask is not None:
            # masked_fill broadcasts (len_q, len_k) masks over the head axis;
            # Tensor masks stay in the traced dataflow, ndarrays get baked.
            scores = F.masked_fill(scores, mask, -1e9)
        weights = F.softmax(scores, axis=-1)
        weights = self.dropout(weights)
        context = weights @ v  # (heads, L, head_dim)
        merged = context.transpose(1, 0, 2).reshape(len_q, self.dim)
        return self.out_proj(merged)


class TransformerFeedForward(Module):
    """Position-wise feed-forward block (linear -> activation -> linear)."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        activation: str = "gelu",
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        self.activation = activation
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        if self.activation == "gelu":
            hidden = F.gelu(hidden)
        elif self.activation == "relu":
            hidden = F.relu(hidden)
        else:
            hidden = F.tanh(hidden)
        return self.fc2(self.dropout(hidden))


class TransformerBlock(Module):
    """Pre-norm transformer encoder block used by the transformer models."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ff_multiplier: int = 4,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadAttention(dim, num_heads, dropout, rng=rng)
        self.feed_forward = TransformerFeedForward(
            dim, dim * ff_multiplier, dropout=dropout, rng=rng
        )
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(self.norm1(x), mask=mask)
        x = x + self.dropout(attended)
        transformed = self.feed_forward(self.norm2(x))
        return x + self.dropout(transformed)


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask hiding future positions (True = masked)."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)
