"""Dataflow graph IR for jit trace capture.

:class:`GraphBuilder` is installed by :func:`repro.tensor.jit.trace` via
:func:`repro.tensor.ops.set_graph_builder`. Every op executed while it is
active adds a :class:`Node`; tensors are tracked by identity so the builder
reconstructs the exact dataflow of one forward pass.

Leaf kinds:

- ``input`` — the traced call's arguments (session item ids and length);
- ``param`` — module parameters (shared storage with the live module);
- ``const`` — values baked in at trace time (position ids, scalars, ...).

Interior kinds:

- ``op``    — a registered kernel invocation;
- ``host``  — a host-side numpy escape hatch (SR-GNN / GC-SAN pattern);
- ``fused`` — produced by the optimizer: a chain of elementwise kernels
  executed as one launch with intermediates kept in registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


@dataclass
class Node:
    id: int
    kind: str
    op: str = ""
    inputs: Tuple[int, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)
    array: Optional[np.ndarray] = None
    is_param: bool = False
    batch_invariant: bool = False
    catalog_scale: float = 1.0
    host_fn: Optional[Callable] = None
    # For fused nodes: the sub-nodes executed inside the single launch, in
    # order. Each sub-node reads from the environment or earlier sub-outputs.
    fused: List["Node"] = field(default_factory=list)

    def is_leaf(self) -> bool:
        return self.kind in ("input", "param", "const")


class Graph:
    """An ordered list of nodes; execution order is node order."""

    def __init__(self):
        self.nodes: List[Node] = []
        self.input_ids: List[int] = []
        self.output_id: Optional[int] = None
        self._next_id = 0

    def new_node(self, **kwargs) -> Node:
        node = Node(id=self._next_id, **kwargs)
        self._next_id += 1
        self.nodes.append(node)
        return node

    def node_by_id(self, node_id: int) -> Node:
        for node in self.nodes:
            if node.id == node_id:
                return node
        raise KeyError(node_id)

    def consumers(self) -> Dict[int, List[Node]]:
        """Map node id -> nodes that read it."""
        result: Dict[int, List[Node]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for input_id in node.inputs:
                result[input_id].append(node)
        return result

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            if node.kind in ("op", "host", "fused"):
                label = node.op or node.kind
                counts[label] = counts.get(label, 0) + 1
        return counts

    def launch_count(self) -> int:
        """Kernel launches the graph performs (views are free)."""
        free = {"reshape", "transpose"}
        count = 0
        for node in self.nodes:
            if node.kind in ("op", "host", "fused") and node.op not in free:
                count += 1
        return count


class GraphBuilder:
    """Records ops into a :class:`Graph` during one traced forward pass."""

    def __init__(self):
        self.graph = Graph()
        self._tensor_nodes: Dict[int, int] = {}
        # Keep every tensor we have assigned a node alive for the duration of
        # the capture so CPython cannot recycle its id().
        self._keepalive: List[Tensor] = []

    # -- registration -----------------------------------------------------

    def register_input(self, tensor: Tensor, name: str) -> None:
        node = self.graph.new_node(kind="input", op=name)
        self.graph.input_ids.append(node.id)
        self._bind(tensor, node)

    def _bind(self, tensor: Tensor, node: Node) -> None:
        self._tensor_nodes[id(tensor)] = node.id
        self._keepalive.append(tensor)

    def _node_for_value(self, value) -> int:
        """Node id for an op input, creating leaves as needed."""
        if isinstance(value, Tensor):
            known = self._tensor_nodes.get(id(value))
            if known is not None:
                return known
            kind = "param" if value.is_param else "const"
            node = self.graph.new_node(
                kind=kind,
                array=value.data,
                is_param=value.is_param,
                batch_invariant=True,
                catalog_scale=value.catalog_scale,
                op=value.name or "",
            )
            self._bind(value, node)
            return node.id
        array = np.asarray(value, dtype=np.float32)
        node = self.graph.new_node(kind="const", array=array, batch_invariant=True)
        return node.id

    # -- hooks called from ops.run_op / ops.host_numpy ------------------------

    def add_op(self, name, inputs, attrs, out: Tensor, record) -> None:
        input_ids = tuple(self._node_for_value(v) for v in inputs)
        node = self.graph.new_node(
            kind="op",
            op=name,
            inputs=input_ids,
            attrs=dict(attrs),
            catalog_scale=record.catalog_scale,
            batch_invariant=record.batch_invariant,
        )
        self._bind(out, node)
        self.graph.output_id = node.id

    def add_host_op(self, name, fn, inputs, out: Tensor, record) -> None:
        input_ids = tuple(self._node_for_value(v) for v in inputs)
        node = self.graph.new_node(
            kind="host",
            op=f"host[{name}]",
            inputs=input_ids,
            host_fn=fn,
            catalog_scale=record.catalog_scale,
        )
        self._bind(out, node)
        self.graph.output_id = node.id

    def set_output(self, tensor: Tensor) -> None:
        node_id = self._tensor_nodes.get(id(tensor))
        if node_id is None:
            raise ValueError("traced output was not produced by a recorded op")
        self.graph.output_id = node_id
