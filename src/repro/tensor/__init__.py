"""A small numpy-backed neural inference engine with cost accounting.

This package is the stand-in for PyTorch in the ETUDE reproduction. It
provides just enough of an inference stack to express the ten session-based
recommendation models from the paper:

- :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper whose operations
  run real numpy kernels *and* record per-op cost metadata (FLOPs, bytes
  moved, kernel launches) into an ambient :class:`~repro.tensor.ops.CostTrace`.
- :class:`~repro.tensor.module.Module` / :class:`~repro.tensor.module.Parameter`
  — the familiar container abstractions.
- Layers (:mod:`~repro.tensor.layers`), recurrent cells
  (:mod:`~repro.tensor.rnn`) and attention (:mod:`~repro.tensor.attention`).
- :mod:`~repro.tensor.jit` — trace-based capture of a module's op graph and
  an optimization pipeline (dead-op elimination, constant folding,
  elementwise fusion) mirroring ``torch.jit.optimize_for_inference``.

The cost metadata feeds :mod:`repro.hardware.latency_model`, which turns an
op stream into device latency. Numerical outputs are real: models produce
actual top-k recommendations.
"""

from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor.ops import CostRecord, CostTrace, cost_trace, current_trace
from repro.tensor.module import Module, Parameter
from repro.tensor.layers import (
    CatalogEmbedding,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.tensor.rnn import GRU, GRUCell
from repro.tensor.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.tensor import functional
from repro.tensor.jit import (
    JitCompilationError,
    ScriptedModule,
    optimize_for_inference,
    trace,
)
from repro.tensor.serialization import load_module_state, save_module_state
from repro.tensor.quantization import QuantizedCatalogEmbedding, quantize_model

# repro.tensor.profiler and repro.tensor.trace_diff depend on
# repro.hardware (which imports this package): import them directly, e.g.
# ``from repro.tensor.profiler import profile_model``.

__all__ = [
    "Tensor",
    "as_tensor",
    "CostRecord",
    "CostTrace",
    "cost_trace",
    "current_trace",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "CatalogEmbedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "GRU",
    "GRUCell",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "functional",
    "trace",
    "optimize_for_inference",
    "ScriptedModule",
    "JitCompilationError",
    "save_module_state",
    "load_module_state",
    "quantize_model",
    "QuantizedCatalogEmbedding",
]
