"""Per-op inference profiling — the "why is my model slow?" tool.

The paper found RecBole's bottlenecks by inspecting implementations by
hand; this profiler automates the workflow ETUDE enables: run one forward
pass, fold every op's cost through a device model, and show where the time
goes. The RepeatNet/SR-GNN findings of Section III-C fall straight out of
the table (a dense one-hot matmul / host-transfer rows at the top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.device import DeviceModel
from repro.hardware.latency_model import LatencyModel
from repro.tensor import cost_trace
from repro.tensor.ops import CostRecord, CostTrace
from repro.tensor.tensor import Tensor


@dataclass
class OpProfile:
    """Aggregated cost of one op kind within a forward pass."""

    op: str
    calls: int
    flops: float
    param_bytes: float
    activation_bytes: float
    transfer_bytes: float
    time_s: float
    share: float
    host_op: bool


@dataclass
class ProfileReport:
    """A full per-op breakdown for one (model, device) pair."""

    device_name: str
    total_time_s: float
    rows: List[OpProfile]

    def top(self, n: int = 5) -> List[OpProfile]:
        return self.rows[:n]

    def row_for(self, op: str) -> Optional[OpProfile]:
        for row in self.rows:
            if row.op == op:
                return row
        return None

    def render(self, max_rows: int = 15) -> str:
        lines = [
            f"profile on {self.device_name}: "
            f"{self.total_time_s * 1e3:.3f} ms per inference",
            f"{'op':<32} {'calls':>6} {'time ms':>9} {'share':>7} "
            f"{'GFLOP':>7} {'param MB':>9} {'act MB':>8}",
        ]
        for row in self.rows[:max_rows]:
            host = " [host]" if row.host_op else ""
            lines.append(
                f"{(row.op + host):<32} {row.calls:>6} "
                f"{row.time_s * 1e3:>9.3f} {row.share * 100:>6.1f}% "
                f"{row.flops / 1e9:>7.3f} {row.param_bytes / 1e6:>9.2f} "
                f"{row.activation_bytes / 1e6:>8.2f}"
            )
        if len(self.rows) > max_rows:
            lines.append(f"... {len(self.rows) - max_rows} more op kinds")
        return "\n".join(lines)


def _record_time(model: LatencyModel, record: CostRecord) -> float:
    """Single-request latency contribution of one record."""
    single = CostTrace()
    single.append(record)
    profile = model.profile(single)
    # Per-request view: fixed + one item, minus the per-request constant
    # that profile() adds so it is not double-counted across records.
    return (
        profile.fixed_s
        + profile.per_item_s
        - model.device.per_request_overhead_s
    )


def profile_trace(trace: CostTrace, device: DeviceModel) -> ProfileReport:
    """Fold a captured trace into a per-op-kind report."""
    model = LatencyModel(device)
    groups: Dict[str, Dict] = {}
    for record in trace:
        scale = record.catalog_scale
        entry = groups.setdefault(
            record.op,
            {
                "calls": 0,
                "flops": 0.0,
                "param": 0.0,
                "act": 0.0,
                "transfer": 0.0,
                "time": 0.0,
                "host": record.host_op,
            },
        )
        entry["calls"] += 1
        entry["flops"] += record.flops * scale
        entry["param"] += record.param_bytes * scale
        entry["act"] += (record.read_bytes + record.write_bytes) * scale
        entry["transfer"] += record.transfer_bytes * scale
        entry["time"] += _record_time(model, record)

    total = sum(entry["time"] for entry in groups.values())
    total += device.per_request_overhead_s
    rows = [
        OpProfile(
            op=op,
            calls=entry["calls"],
            flops=entry["flops"],
            param_bytes=entry["param"],
            activation_bytes=entry["act"],
            transfer_bytes=entry["transfer"],
            time_s=entry["time"],
            share=entry["time"] / total if total > 0 else 0.0,
            host_op=entry["host"],
        )
        for op, entry in groups.items()
    ]
    rows.sort(key=lambda row: row.time_s, reverse=True)
    return ProfileReport(device_name=device.name, total_time_s=total, rows=rows)


def profile_model(
    model,
    device: DeviceModel,
    session: Optional[Sequence[int]] = None,
) -> ProfileReport:
    """Profile one forward pass of a SessionRecModel-style model."""
    if session is None:
        items, length = model.example_inputs()
    else:
        items, length = model.prepare_inputs(list(session))
    with cost_trace() as trace:
        model.forward(Tensor(items), Tensor(length))
    return profile_trace(trace, device)
