"""Model artifact (de)serialization.

In the paper, trained models are serialized (TorchScript) into a Google
storage bucket, from which the inference server deploys them. Here the
artifact format is an ``.npz`` of the state dict plus a small metadata
header; :mod:`repro.cluster.storage` stores these bytes in its in-memory
bucket and the serving layer loads them on pod startup.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Tuple

import numpy as np

from repro.tensor.module import Module

_FORMAT_VERSION = 1


def save_module_state(module: Module, metadata: Dict[str, Any] = None) -> bytes:
    """Serialize a module's parameters (and metadata) to bytes."""
    state = module.state_dict()
    header = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "parameters": sorted(state),
    }
    buffer = io.BytesIO()
    np.savez(buffer, __header__=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ), **state)
    return buffer.getvalue()


def load_module_state(blob: bytes) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Deserialize artifact bytes into ``(state_dict, metadata)``."""
    buffer = io.BytesIO(blob)
    with np.load(buffer) as archive:
        raw_header = archive["__header__"].tobytes().decode("utf-8")
        header = json.loads(raw_header)
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported artifact format: {header.get('format_version')}"
            )
        state = {
            name: archive[name]
            for name in archive.files
            if name != "__header__"
        }
    expected = set(header.get("parameters", []))
    if expected and expected != set(state):
        raise ValueError("artifact parameter list does not match payload")
    return state, header.get("metadata", {})


def load_into_module(module: Module, blob: bytes) -> Dict[str, Any]:
    """Load artifact bytes into an already-constructed module."""
    state, metadata = load_module_state(blob)
    module.load_state_dict(state)
    return metadata
