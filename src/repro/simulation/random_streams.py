"""Named, independently seeded RNG streams for simulation actors.

Each actor (load generator, every server replica, the workload generator)
pulls its own stream, so adding an actor or reordering events never
perturbs another actor's randomness — the property that keeps experiment
results stable across refactorings.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A family of ``np.random.Generator`` streams derived from one seed."""

    def __init__(self, seed: int = 1234):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created on first use, then stable)."""
        if name not in self._streams:
            # crc32 is stable across processes (unlike str.__hash__, which
            # is salted per interpreter run).
            child_seed = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, salt: int) -> "RandomStreams":
        """A derived family (e.g. per experiment repetition)."""
        return RandomStreams(self._seed * 1_000_003 + salt)
