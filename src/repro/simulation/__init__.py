"""Deterministic discrete-event simulation substrate.

The paper measures wall-clock behaviour of a served model under load on a
real cluster; this package provides the virtual-time equivalent: a
:class:`~repro.simulation.simulator.Simulator` with an event heap and
generator-based processes. The load generator (Algorithm 2), the inference
servers, the batching buffer, and the Kubernetes service all run as
processes on one simulator, which makes every experiment exactly
reproducible and independent of the host machine's speed.

Process model:

- ``simulator.spawn(generator)`` starts a process;
- ``yield <float>`` sleeps for that many (virtual) seconds;
- ``yield signal`` suspends until the :class:`~repro.simulation.events.Signal`
  is fired.
"""

from repro.simulation.events import Signal
from repro.simulation.simulator import EventHandle, Simulator
from repro.simulation.random_streams import RandomStreams

__all__ = ["Simulator", "EventHandle", "Signal", "RandomStreams"]
