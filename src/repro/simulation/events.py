"""Event-heap entries and inter-process signalling."""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Signal:
    """A one-shot wakeup processes can wait on (``yield signal``).

    Multiple processes may wait on one signal; all resume when it fires.
    Firing an already-fired signal is a no-op. A payload can be attached at
    fire time and read by the waiters afterwards.
    """

    __slots__ = ("fired", "payload", "_waiters", "name")

    def __init__(self, name: str = ""):
        self.fired = False
        self.payload: Any = None
        self._waiters: List[Callable[[], None]] = []
        self.name = name

    def add_waiter(self, resume: Callable[[], None]) -> None:
        if self.fired:
            resume()
        else:
            self._waiters.append(resume)

    def fire(self, payload: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume()

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return f"Signal({self.name or hex(id(self))}, {state})"
