"""The discrete-event simulator core.

A tiny, fast simpy-like engine: a heap of timestamped callbacks plus
generator-based processes. Determinism: ties on the heap break by insertion
sequence number, and all randomness used by simulation actors flows through
:class:`~repro.simulation.random_streams.RandomStreams`.

Units: ``Simulator.now`` is **virtual time in seconds**, starting at 0.0
when the simulator is created; it advances only when events fire and has no
relation to the wall clock (a ten-minute benchmark simulates in wall-clock
seconds). Every delay yielded by a process, every ``call_in`` offset and
every ``call_at``/``run(until=...)`` deadline is likewise in virtual
seconds. All timestamps elsewhere in the repo (metrics, access logs,
telemetry spans) are readings of this clock — see ``docs/observability.md``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.simulation.events import Signal

Process = Generator[Any, Any, None]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Cancellation is O(1): the heap entry stays in place but is skipped —
    without advancing the clock — when it reaches the top, so a cancelled
    timer can never extend a run past its natural end.
    """

    __slots__ = ("fn", "cancelled", "fired", "_simulator")

    def __init__(self, simulator: "Simulator", fn: Callable[[], None]):
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False
        self.fired = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Cancel the event (idempotent); a cancelled event never fires.

        Cancelling after the event fired is a no-op — crucially it must
        not touch the simulator's cancelled-event count, which only
        tracks dead entries still sitting in the heap.
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self.fn = None  # release closed-over state immediately
            self._simulator._cancelled_events += 1


class Simulator:
    """Virtual clock + event heap + process scheduler."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._live_processes = 0
        self._cancelled_events = 0

    # -- low-level scheduling ---------------------------------------------------

    def call_at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        handle = EventHandle(self, fn)
        heapq.heappush(self._heap, (time, self._sequence, handle))
        self._sequence += 1
        return handle

    def call_in(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        return self.call_at(self.now + max(delay, 0.0), fn)

    # -- processes ----------------------------------------------------------------

    def spawn(self, process: Process) -> None:
        """Start a generator-based process immediately."""
        self._live_processes += 1
        self.call_in(0.0, lambda: self._step(process))

    def _step(self, process: Process, send_value: Any = None) -> None:
        try:
            yielded = process.send(send_value)
        except StopIteration:
            self._live_processes -= 1
            return
        if isinstance(yielded, Signal):
            signal = yielded
            signal.add_waiter(
                lambda: self.call_in(0.0, lambda: self._step(process, signal.payload))
            )
        elif isinstance(yielded, (int, float)):
            self.call_in(float(yielded), lambda: self._step(process))
        else:
            raise TypeError(
                f"process yielded {type(yielded).__name__}; "
                "expected a delay (seconds) or a Signal"
            )

    # -- running -------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the simulation time at which execution stopped.
        """
        while self._heap:
            time, _seq, handle = self._heap[0]
            if handle.cancelled:
                # Dead timer: discard without advancing the clock.
                heapq.heappop(self._heap)
                self._cancelled_events -= 1
                continue
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            handle.fired = True
            handle.fn()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Scheduled events that will still fire (cancelled ones excluded)."""
        return len(self._heap) - self._cancelled_events
