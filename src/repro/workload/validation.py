"""Statistical validation of synthetic workloads against a reference log.

Backs the paper's Section III-A validation ("the achieved latencies
resemble each other closely") with distribution-level evidence: if the
*marginals* that drive serving cost match, the latency distributions will
too. Two divergences matter for SBR serving:

- the **session-length** distribution (drives request counts per session
  and the ordering constraints of Algorithm 2) — compared with the
  two-sample Kolmogorov-Smirnov statistic;
- the **item-popularity** curve (drives cache behaviour and, for non-neural
  models, index hit rates) — compared as the L1 distance between the
  normalized popularity-vs-rank curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.workload.clicklog import ClickLog


def session_length_ks(log_a: ClickLog, log_b: ClickLog) -> float:
    """Two-sample KS statistic between the session-length distributions."""
    lengths_a = log_a.session_lengths()
    lengths_b = log_b.session_lengths()
    statistic, _pvalue = stats.ks_2samp(lengths_a, lengths_b)
    return float(statistic)


def popularity_curve(log: ClickLog, catalog_size: int, points: int = 100) -> np.ndarray:
    """Cumulative click share of the top-x% items, sampled at ``points``
    rank fractions (the Lorenz-style curve of catalog popularity)."""
    counts = np.sort(log.click_counts(catalog_size))[::-1].astype(np.float64)
    total = counts.sum()
    if total <= 0:
        raise ValueError("log contains no clicks")
    cumulative = np.cumsum(counts) / total
    ranks = np.linspace(0, catalog_size - 1, points).astype(np.int64)
    return cumulative[ranks]


def popularity_l1(
    log_a: ClickLog, log_b: ClickLog, catalog_size: int, points: int = 100
) -> float:
    """Mean absolute gap between the two popularity curves (0 = identical)."""
    curve_a = popularity_curve(log_a, catalog_size, points)
    curve_b = popularity_curve(log_b, catalog_size, points)
    return float(np.mean(np.abs(curve_a - curve_b)))


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one synthetic-vs-reference comparison."""

    session_length_ks: float
    popularity_l1: float
    #: Default acceptance thresholds. KS of 0.1 means the CDFs never
    #: diverge by more than 10 points; an L1 of 0.2 bounds the mean
    #: popularity-share gap.
    ks_threshold: float = 0.15
    l1_threshold: float = 0.25

    @property
    def acceptable(self) -> bool:
        return (
            self.session_length_ks <= self.ks_threshold
            and self.popularity_l1 <= self.l1_threshold
        )

    def summary(self) -> str:
        verdict = "ACCEPT" if self.acceptable else "REJECT"
        return (
            f"session-length KS={self.session_length_ks:.3f} "
            f"(<= {self.ks_threshold}), popularity L1="
            f"{self.popularity_l1:.3f} (<= {self.l1_threshold}): {verdict}"
        )


def validate_synthetic(
    reference: ClickLog, synthetic: ClickLog, catalog_size: int
) -> ValidationReport:
    """Compare a synthetic log against the reference it was fitted from."""
    return ValidationReport(
        session_length_ks=session_length_ks(reference, synthetic),
        popularity_l1=popularity_l1(reference, synthetic, catalog_size),
    )
