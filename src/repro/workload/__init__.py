"""Synthetic workload generation (Algorithm 1) and click-log statistics.

The paper's design goal: load-test without replaying sensitive real click
data. Users supply two marginal statistics of their production click log —
the power-law exponent ``alpha_l`` of the session-length distribution and
the exponent ``alpha_c`` of the item click-count distribution — and ETUDE
generates statistically faithful synthetic sessions at >1M clicks/second.

Modules:

- :mod:`~repro.workload.powerlaw` — bounded discrete power-law sampling via
  inverse transform over an explicit CDF.
- :mod:`~repro.workload.synthetic` — Algorithm 1 (vectorized).
- :mod:`~repro.workload.statistics` — exponent fitting from an empirical log.
- :mod:`~repro.workload.clicklog` — the ClickLog container and a richer
  generative "real-world" log standing in for the proprietary bol.com data.
"""

from repro.workload.clicklog import ClickLog, synthesize_real_clicklog
from repro.workload.powerlaw import BoundedPowerLaw
from repro.workload.statistics import WorkloadStatistics, fit_power_law_exponent
from repro.workload.synthetic import SyntheticWorkloadGenerator, generate_synthetic_sessions
from repro.workload.validation import ValidationReport, validate_synthetic
from repro.workload.sessionize import RawEvents, sessionize, synthesize_raw_events

__all__ = [
    "RawEvents",
    "sessionize",
    "synthesize_raw_events",
    "BoundedPowerLaw",
    "ClickLog",
    "synthesize_real_clicklog",
    "WorkloadStatistics",
    "fit_power_law_exponent",
    "SyntheticWorkloadGenerator",
    "generate_synthetic_sessions",
    "ValidationReport",
    "validate_synthetic",
]
