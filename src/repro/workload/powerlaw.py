"""Bounded discrete power-law distributions with inverse-transform sampling.

A bounded discrete power law over ``{x_min, ..., x_max}`` assigns
``P(x) ∝ x ** -alpha``. Sampling uses inverse transform over the explicit
CDF (``np.searchsorted``), which vectorizes to millions of draws per second
— the property Algorithm 1 relies on for online workload generation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class BoundedPowerLaw:
    """Discrete power law ``P(x) ∝ x**-alpha`` on ``[x_min, x_max]``."""

    def __init__(self, alpha: float, x_min: int = 1, x_max: int = 1000):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if x_min < 1 or x_max < x_min:
            raise ValueError("need 1 <= x_min <= x_max")
        self.alpha = float(alpha)
        self.x_min = int(x_min)
        self.x_max = int(x_max)
        support = np.arange(self.x_min, self.x_max + 1, dtype=np.float64)
        weights = support**-self.alpha
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0  # guard against round-off at the tail

    @property
    def support(self) -> np.ndarray:
        return np.arange(self.x_min, self.x_max + 1, dtype=np.int64)

    def pmf(self) -> np.ndarray:
        """Probability mass over the support (ascending x)."""
        return self._pmf.copy()

    def mean(self) -> float:
        return float(np.dot(self.support, self._pmf))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Inverse-transform sample ``size`` values (vectorized)."""
        uniform = rng.random(size)
        index = np.searchsorted(self._cdf, uniform, side="right")
        return index.astype(np.int64) + self.x_min


class EmpiricalCDF:
    """Sampling item ids proportionally to empirical click counts.

    Algorithm 1 line 7 draws C click counts from a power law once, then
    (line 14) samples item ids from the *empirical CDF of those counts*.

    A direct inverse transform over a C-entry CDF costs an O(log C) binary
    search with poor cache behaviour per draw. Instead we sample in two
    exact stages: (1) pick a *count class* (items sharing the same click
    count are interchangeable) from a small CDF over the distinct count
    values, weighted by ``value * class_size``; (2) pick a uniform member of
    that class. Setup is vectorized O(C log C); each draw is O(log K) for K
    distinct counts (a few hundred under a power law) plus one array
    access — comfortably above a million clicks per second for C = 1e7.
    """

    def __init__(self, counts: np.ndarray):
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        if counts.sum() <= 0:
            raise ValueError("counts must not be all zero")
        self._size = counts.shape[0]
        values, inverse, class_sizes = np.unique(
            counts, return_inverse=True, return_counts=True
        )
        # Items grouped by class, so class members are contiguous.
        self._item_pool = np.argsort(inverse, kind="stable").astype(np.int64)
        self._class_offsets = np.concatenate(
            [[0], np.cumsum(class_sizes)]
        ).astype(np.int64)
        self._class_sizes = class_sizes.astype(np.int64)
        class_weights = values * class_sizes
        if values[0] == 0.0:
            class_weights[0] = 0.0  # items with zero clicks are never drawn
        cdf = np.cumsum(class_weights)
        self._class_cdf = cdf / cdf[-1]
        self._class_cdf[-1] = 1.0

    def __len__(self) -> int:
        return self._size

    @classmethod
    def from_power_law(
        cls,
        distribution: BoundedPowerLaw,
        num_items: int,
        rng: np.random.Generator,
    ) -> "EmpiricalCDF":
        """Equivalent of sampling ``num_items`` iid counts from the power
        law and building the empirical CDF — but constructed directly from
        one multinomial draw of the class histogram, skipping the O(C)
        materialization of individual counts (items with equal counts are
        exchangeable). This keeps setup fast even for C = 2e7.
        """
        class_sizes = rng.multinomial(num_items, distribution.pmf())
        nonzero = class_sizes > 0
        values = distribution.support[nonzero].astype(np.float64)
        sizes = class_sizes[nonzero].astype(np.int64)

        instance = cls.__new__(cls)
        instance._size = num_items
        instance._item_pool = rng.permutation(num_items).astype(np.int64)
        instance._class_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(
            np.int64
        )
        instance._class_sizes = sizes
        weights = values * sizes
        cdf = np.cumsum(weights)
        instance._class_cdf = cdf / cdf[-1]
        instance._class_cdf[-1] = 1.0
        return instance

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` item ids (vectorized two-stage inverse transform)."""
        classes = np.searchsorted(self._class_cdf, rng.random(size), side="right")
        within = (rng.random(size) * self._class_sizes[classes]).astype(np.int64)
        return self._item_pool[self._class_offsets[classes] + within]
