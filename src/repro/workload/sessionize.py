"""Sessionizing raw click streams.

The paper's workflow starts from "a real click log" with session structure
already present. Production event streams, however, arrive as flat
``(visitor, timestamp, item)`` records; sessionization — splitting each
visitor's stream on inactivity gaps (the industry-standard 30-minute rule)
— is the preprocessing step that produces the log Algorithm 1's statistics
are fitted from. This module implements it, vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.clicklog import ClickLog

#: The standard web-analytics inactivity threshold.
DEFAULT_GAP_S = 30.0 * 60.0


@dataclass(frozen=True)
class RawEvents:
    """A flat event stream: parallel visitor / timestamp / item arrays."""

    visitor_ids: np.ndarray
    timestamps: np.ndarray
    item_ids: np.ndarray

    def __post_init__(self):
        if not (
            self.visitor_ids.shape == self.timestamps.shape == self.item_ids.shape
        ):
            raise ValueError("event arrays must be parallel")

    def __len__(self) -> int:
        return int(self.visitor_ids.shape[0])


def sessionize(
    events: RawEvents,
    inactivity_gap_s: float = DEFAULT_GAP_S,
    max_session_length: Optional[int] = None,
) -> ClickLog:
    """Split visitor streams into sessions on inactivity gaps.

    Events are processed in (visitor, timestamp) order; a new session
    starts whenever the visitor changes or the gap to the previous event
    exceeds ``inactivity_gap_s``. ``max_session_length`` additionally
    splits marathon sessions (some pipelines cap them).
    """
    if len(events) == 0:
        return ClickLog(
            session_ids=np.empty(0, dtype=np.int64),
            item_ids=np.empty(0, dtype=np.int64),
            steps=np.empty(0, dtype=np.int64),
        )
    if inactivity_gap_s <= 0:
        raise ValueError("inactivity_gap_s must be positive")

    order = np.lexsort((events.timestamps, events.visitor_ids))
    visitors = events.visitor_ids[order]
    timestamps = events.timestamps[order]
    items = events.item_ids[order]

    new_visitor = np.empty(visitors.shape[0], dtype=bool)
    new_visitor[0] = True
    new_visitor[1:] = visitors[1:] != visitors[:-1]

    gap_break = np.empty(visitors.shape[0], dtype=bool)
    gap_break[0] = True
    gap_break[1:] = (timestamps[1:] - timestamps[:-1]) > inactivity_gap_s

    boundary = new_visitor | gap_break
    session_ids = np.cumsum(boundary) - 1

    if max_session_length is not None:
        if max_session_length < 1:
            raise ValueError("max_session_length must be >= 1")
        # Position within each session, then split every cap-th click.
        position = np.arange(session_ids.shape[0])
        session_start = np.zeros(session_ids.shape[0], dtype=np.int64)
        starts = np.flatnonzero(boundary)
        session_start[starts] = position[starts]
        session_start = np.maximum.accumulate(session_start)
        within = position - session_start
        extra_break = (within % max_session_length == 0) & (within > 0)
        session_ids = np.cumsum(boundary | extra_break) - 1

    return ClickLog(
        session_ids=session_ids.astype(np.int64),
        item_ids=items.astype(np.int64),
        steps=np.arange(items.shape[0], dtype=np.int64),
    )


def synthesize_raw_events(
    catalog_size: int,
    num_events: int,
    num_visitors: int,
    seed: int = 23,
    mean_intra_gap_s: float = 45.0,
    mean_inter_gap_s: float = 3.0 * 3600.0,
    return_visit_probability: float = 0.3,
) -> RawEvents:
    """A surrogate raw event stream with visit structure.

    Visitors generate bursts of activity (exponential intra-visit gaps)
    separated by long pauses (inter-visit gaps), so sessionization has real
    boundaries to find.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
    weights = ranks**-1.2
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    visitor_ids = rng.integers(0, num_visitors, size=num_events)
    items = np.searchsorted(cdf, rng.random(num_events), side="right")

    # Per-visitor timelines: mostly short gaps, occasionally a long pause.
    long_pause = rng.random(num_events) < (1.0 - return_visit_probability) * 0.1
    gaps = np.where(
        long_pause,
        rng.exponential(mean_inter_gap_s, size=num_events),
        rng.exponential(mean_intra_gap_s, size=num_events),
    )
    order = np.argsort(visitor_ids, kind="stable")
    timestamps = np.empty(num_events, dtype=np.float64)
    sorted_visitors = visitor_ids[order]
    sorted_gaps = gaps[order]
    cumulative = np.cumsum(sorted_gaps)
    # Restart each visitor's clock at their first event.
    first_positions = np.flatnonzero(
        np.concatenate([[True], sorted_visitors[1:] != sorted_visitors[:-1]])
    )
    offsets = np.zeros(num_events)
    offsets[first_positions] = cumulative[first_positions] - sorted_gaps[first_positions]
    offsets = np.maximum.accumulate(offsets)
    timestamps[order] = cumulative - offsets

    return RawEvents(
        visitor_ids=visitor_ids.astype(np.int64),
        timestamps=timestamps,
        item_ids=items.astype(np.int64),
    )
