"""Click-log container and a generative stand-in for the real bol.com log.

The paper validates Algorithm 1 by replaying a *real* click log and
comparing against synthetic sessions generated from its fitted marginals.
The real log is proprietary, so :func:`synthesize_real_clicklog` produces a
structurally rich surrogate: heavy-tailed item popularity with temporal
drift, heavy-tailed session lengths, and within-session repeat behaviour
(users re-click items). Only its *marginals* are power-law-like; the
higher-order structure is deliberately NOT reproducible by Algorithm 1,
which is exactly what the VAL-SYN experiment needs to demonstrate — that
marginal statistics suffice for latency benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass
class ClickLog:
    """Flat click arrays: parallel ``session_ids``, ``item_ids``, ``steps``."""

    session_ids: np.ndarray
    item_ids: np.ndarray
    steps: np.ndarray

    def __post_init__(self):
        if not (
            self.session_ids.shape == self.item_ids.shape == self.steps.shape
        ):
            raise ValueError("click arrays must be parallel")

    def __len__(self) -> int:
        return int(self.session_ids.shape[0])

    @property
    def num_sessions(self) -> int:
        return int(np.unique(self.session_ids).shape[0])

    def session_lengths(self) -> np.ndarray:
        """Length of every session (ascending session id)."""
        _ids, counts = np.unique(self.session_ids, return_counts=True)
        return counts.astype(np.int64)

    def click_counts(self, catalog_size: int) -> np.ndarray:
        """Clicks per item over the full catalog (zeros included)."""
        return np.bincount(self.item_ids, minlength=catalog_size).astype(np.int64)

    def iter_sessions(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(session_id, item_ids)`` in first-click order."""
        order = np.argsort(self.session_ids, kind="stable")
        sorted_sessions = self.session_ids[order]
        sorted_items = self.item_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_sessions)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_sessions)]])
        for start, end in zip(starts, ends):
            yield int(sorted_sessions[start]), sorted_items[start:end]

    def sessions(self) -> List[np.ndarray]:
        """All sessions as a list of item-id arrays."""
        return [items for _sid, items in self.iter_sessions()]

    @classmethod
    def from_sessions(cls, sessions: Sequence[Sequence[int]]) -> "ClickLog":
        session_ids, item_ids, steps = [], [], []
        t = 0
        for sid, session in enumerate(sessions):
            for item in session:
                session_ids.append(sid)
                item_ids.append(int(item))
                steps.append(t)
                t += 1
        return cls(
            session_ids=np.asarray(session_ids, dtype=np.int64),
            item_ids=np.asarray(item_ids, dtype=np.int64),
            steps=np.asarray(steps, dtype=np.int64),
        )


def synthesize_real_clicklog(
    catalog_size: int,
    num_clicks: int,
    seed: int = 7,
    repeat_probability: float = 0.25,
    drift_segments: int = 4,
) -> ClickLog:
    """Generate the rich "production" click log used as ground truth.

    Structure beyond marginals:

    - item popularity is Zipf-like but *drifts*: the log is split into
      ``drift_segments`` epochs, each re-ranking a slice of the catalog
      (trending items), as real e-Commerce traffic does;
    - sessions re-click earlier items with probability
      ``repeat_probability`` (users navigating back);
    - session lengths mix a power-law body with a small heavy second mode
      (long research sessions).
    """
    rng = np.random.default_rng(seed)
    session_ids: List[int] = []
    item_ids: List[int] = []

    ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
    base_weights = ranks**-1.15

    segment_cdfs = []
    for segment in range(drift_segments):
        weights = base_weights.copy()
        trending = rng.choice(catalog_size, size=max(1, catalog_size // 100), replace=False)
        weights[trending] *= 50.0
        cdf = np.cumsum(weights)
        segment_cdfs.append(cdf / cdf[-1])

    clicks_done = 0
    sid = 0
    while clicks_done < num_clicks:
        segment = min(
            int(drift_segments * clicks_done / max(num_clicks, 1)),
            drift_segments - 1,
        )
        cdf = segment_cdfs[segment]
        if rng.random() < 0.9:
            length = 1 + int(rng.pareto(1.3))
        else:
            length = int(abs(rng.normal(12.0, 4.0))) + 2
        length = int(min(length, 80))
        session: List[int] = []
        for _click in range(length):
            if session and rng.random() < repeat_probability:
                item = int(session[rng.integers(len(session))])
            else:
                item = int(np.searchsorted(cdf, rng.random(), side="right"))
            session.append(item)
        session_ids.extend([sid] * length)
        item_ids.extend(session)
        clicks_done += length
        sid += 1

    session_ids_arr = np.asarray(session_ids[:num_clicks], dtype=np.int64)
    item_ids_arr = np.asarray(item_ids[:num_clicks], dtype=np.int64)
    return ClickLog(
        session_ids=session_ids_arr,
        item_ids=item_ids_arr,
        steps=np.arange(session_ids_arr.shape[0], dtype=np.int64),
    )
