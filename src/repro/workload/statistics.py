"""Fitting the two marginal statistics Algorithm 1 consumes.

ETUDE users estimate two exponents once from a real click log and reuse
them for all later experiments:

- ``alpha_l`` — power-law exponent of the session-length distribution,
- ``alpha_c`` — power-law exponent of the item click-count distribution.

Fitting uses the exact maximum-likelihood estimator for the *bounded
discrete* power law (the distribution Algorithm 1 actually samples from):
the exponent maximizing ``-alpha * sum(ln x_i) - n * ln Z(alpha)`` with
``Z(alpha) = sum_{x_min..x_max} x ** -alpha``, found by scalar optimization.
The popular continuous approximation (Clauset et al. 2009, Eq. 3.7) is
badly biased for ``x_min = 1``, which is exactly the session-length regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize_scalar

from repro.workload.clicklog import ClickLog


def fit_power_law_exponent(
    samples: np.ndarray, x_min: int = 1, x_max: Optional[int] = None
) -> float:
    """Exact MLE of a bounded discrete power-law exponent.

    ``samples`` are positive integers; the fit uses the tail ``>= x_min``
    with support up to ``x_max`` (default: the sample maximum).
    """
    samples = np.asarray(samples, dtype=np.float64)
    tail = samples[samples >= x_min]
    if tail.size == 0:
        raise ValueError(f"no samples >= x_min={x_min}")
    if np.all(tail == x_min):
        raise ValueError("degenerate samples: all equal to x_min")
    upper = int(x_max if x_max is not None else tail.max())
    support = np.arange(x_min, upper + 1, dtype=np.float64)
    log_support = np.log(support)
    sum_log = float(np.log(tail).sum())
    n = tail.size

    def negative_log_likelihood(alpha: float) -> float:
        z = np.exp(-alpha * log_support).sum()
        return alpha * sum_log + n * np.log(z)

    result = minimize_scalar(
        negative_log_likelihood, bounds=(1.01, 6.0), method="bounded"
    )
    return float(result.x)


@dataclass(frozen=True)
class WorkloadStatistics:
    """The declarative workload description an ETUDE user provides."""

    catalog_size: int
    alpha_length: float
    alpha_clicks: float
    max_session_length: int = 80

    def __post_init__(self):
        if self.catalog_size < 1:
            raise ValueError("catalog_size must be positive")
        if self.alpha_length <= 1.0 or self.alpha_clicks <= 1.0:
            raise ValueError("power-law exponents must exceed 1 for a finite mean")

    @classmethod
    def from_clicklog(
        cls, log: ClickLog, catalog_size: int, max_session_length: int = 80
    ) -> "WorkloadStatistics":
        """Estimate both exponents from an empirical click log.

        This is the one-time estimation step of the paper: run it against
        the production log, then discard the log and keep the statistics.
        """
        lengths = log.session_lengths()
        counts = log.click_counts(catalog_size)
        clicked = counts[counts >= 1]
        return cls(
            catalog_size=catalog_size,
            alpha_length=fit_power_law_exponent(lengths, x_min=1),
            alpha_clicks=fit_power_law_exponent(clicked, x_min=1),
            max_session_length=max_session_length,
        )

    #: Marginals of the bol.com-like surrogate log, precomputed so
    #: benchmarks do not have to regenerate the big "real" log every run.
    @classmethod
    def bol_like(cls, catalog_size: int) -> "WorkloadStatistics":
        return cls(
            catalog_size=catalog_size,
            alpha_length=1.85,
            alpha_clicks=1.35,
            max_session_length=80,
        )
