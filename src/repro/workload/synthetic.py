"""Algorithm 1 — synthetic workload generation from marginal statistics.

For a catalog of C items and a target of N clicks:

1. draw C click counts from a power law with exponent ``alpha_c`` (once),
2. per session, draw a length from a power law with exponent ``alpha_l``,
3. draw each clicked item id by inverse-transform sampling from the
   empirical CDF of the C click counts.

Everything is vectorized; the generator sustains well over one million
clicks per second on a single core for a ten-million-item catalog (the
paper's Section II performance claim — ``benchmarks/bench_workload_gen.py``
measures it).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.workload.clicklog import ClickLog
from repro.workload.powerlaw import BoundedPowerLaw, EmpiricalCDF
from repro.workload.statistics import WorkloadStatistics


class SyntheticWorkloadGenerator:
    """Reusable Algorithm 1 generator bound to one workload description."""

    #: Upper bound for sampled per-item click counts (line 7 of Alg. 1).
    MAX_CLICK_COUNT = 100_000

    def __init__(self, statistics: WorkloadStatistics, seed: int = 13):
        self.statistics = statistics
        self._rng = np.random.default_rng(seed)
        self._length_dist = BoundedPowerLaw(
            statistics.alpha_length, x_min=1, x_max=statistics.max_session_length
        )
        # Line 7: C click counts sampled up front, reused for every session
        # (built directly from the class histogram — see EmpiricalCDF).
        counts_dist = BoundedPowerLaw(
            statistics.alpha_clicks, x_min=1, x_max=self.MAX_CLICK_COUNT
        )
        self._item_cdf = EmpiricalCDF.from_power_law(
            counts_dist, statistics.catalog_size, self._rng
        )

    def sample_session_lengths(self, num_sessions: int) -> np.ndarray:
        return self._length_dist.sample(num_sessions, self._rng)

    def sample_items(self, num_items: int) -> np.ndarray:
        return self._item_cdf.sample(num_items, self._rng)

    def generate_clicks(self, num_clicks: int) -> ClickLog:
        """Generate at least ``num_clicks`` clicks (whole sessions)."""
        mean_length = self._length_dist.mean()
        lengths_chunks: List[np.ndarray] = []
        total = 0
        while total < num_clicks:
            remaining = num_clicks - total
            estimate = max(int(remaining / mean_length * 1.1) + 16, 16)
            chunk = self.sample_session_lengths(estimate)
            lengths_chunks.append(chunk)
            total += int(chunk.sum())
        lengths = np.concatenate(lengths_chunks)
        # Keep whole sessions up to the first prefix reaching num_clicks.
        cumulative = np.cumsum(lengths)
        cutoff = int(np.searchsorted(cumulative, num_clicks, side="left")) + 1
        lengths = lengths[:cutoff]
        total = int(lengths.sum())

        items = self.sample_items(total)
        session_ids = np.repeat(
            np.arange(lengths.shape[0], dtype=np.int64), lengths
        )
        return ClickLog(
            session_ids=session_ids,
            item_ids=items,
            steps=np.arange(total, dtype=np.int64),
        )

    def iter_sessions(self) -> Iterator[np.ndarray]:
        """Endless stream of synthetic sessions (for online load tests)."""
        batch = 4096
        while True:
            lengths = self.sample_session_lengths(batch)
            items = self.sample_items(int(lengths.sum()))
            offset = 0
            for length in lengths:
                yield items[offset : offset + int(length)]
                offset += int(length)


def generate_synthetic_sessions(
    catalog_size: int,
    num_clicks: int,
    alpha_length: float,
    alpha_clicks: float,
    seed: int = 13,
    max_session_length: int = 80,
) -> ClickLog:
    """The paper's ``GENERATE_SYNTHETIC_SESSIONS(C, N, alpha_l, alpha_c)``."""
    statistics = WorkloadStatistics(
        catalog_size=catalog_size,
        alpha_length=alpha_length,
        alpha_clicks=alpha_clicks,
        max_session_length=max_session_length,
    )
    return SyntheticWorkloadGenerator(statistics, seed=seed).generate_clicks(num_clicks)
