"""Multi-tenant model fleets: co-located serving under one budget.

The ``--tenants`` subsystem (``docs/tenancy.md``): a grammar for named
tenants with traffic weights, SLOs and canary/shadow arms
(:mod:`~repro.tenancy.config`), deterministic weighted traffic
splitting (:mod:`~repro.tenancy.split`), per-pod tenant serving state
with tenant-scoped cache keyspaces (:mod:`~repro.tenancy.fleet`),
co-location budgets plus bin-packed fleet placement
(:mod:`~repro.tenancy.placement`), and rolling per-tenant version
updates (:mod:`~repro.tenancy.rollout`).

Opt-in like every subsystem since PR 3: without ``--tenants`` no
tenancy object exists anywhere and the harness is bit-identical to the
paper-faithful single-model benchmark.
"""

from repro.tenancy.config import DEFAULT_FAIR_DEPTH, TenancyConfig, TenantConfig
from repro.tenancy.fleet import (
    ARM_CANARY,
    ARM_STABLE,
    TenantServing,
    build_pod_servings,
)
from repro.tenancy.rollout import TenantRollout, bumped_version
from repro.tenancy.split import SHADOW_ID_BASE, TenantTally, TrafficSplitter

#: Placement names resolve lazily (PEP 562): the planner imports the
#: experiment runner, which imports the spec module, which imports this
#: package — an eager import here would close that cycle.
_PLACEMENT_NAMES = (
    "FleetPlan",
    "FleetPlanner",
    "check_colocation",
    "colocation_budget",
    "colocated_resident_bytes",
    "GPU_RESERVE_BYTES",
    "CPU_RESERVE_BYTES",
)


def __getattr__(name):
    if name in _PLACEMENT_NAMES:
        from repro.tenancy import placement

        return getattr(placement, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TenancyConfig",
    "TenantConfig",
    "DEFAULT_FAIR_DEPTH",
    "TenantServing",
    "build_pod_servings",
    "ARM_STABLE",
    "ARM_CANARY",
    "TrafficSplitter",
    "TenantTally",
    "SHADOW_ID_BASE",
    "TenantRollout",
    "bumped_version",
    *_PLACEMENT_NAMES,
]
