"""Deterministic weighted traffic splitting across a tenant fleet.

The splitter sits between the load generator and the cluster service:
it *is* the generator's submit function, so the client-visible request
stream of the single-tenant harness is attributed to tenants without
touching the generator, the collector, or the service.

Three mechanisms, all deterministic (no RNG draws — a tenancy-enabled
run consumes exactly the same random streams as the run without it):

- **Primary split** — smooth weighted round-robin over the non-shadow
  tenants' offered weights (entitlement × burst): each pick adds every
  tenant's weight to its running credit, routes to the largest credit,
  and charges the winner the total. Produces the classic interleaved
  (not bursty) pattern and exact long-run proportions.
- **Canary arms** — a per-tenant fraction accumulator: every
  ``1/fraction``-th request of the tenant is stamped ``arm="canary"``
  and served by the tenant's canary artifact version.
- **Shadow mirroring** — a per-shadow-tenant accumulator over *total*
  client traffic: mirrored copies carry fresh request ids from a
  dedicated high range and a response sink that tallies but never
  reaches the client (scored, never returned).

The splitter also stamps each tenant's SLO onto its requests as an
absolute deadline (PR 3 admission disciplines then shed against it) and
keeps the per-tenant tallies reported as ``RunResult.tenancy``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.metrics.percentile import LatencyDigest
from repro.serving.request import (
    HTTP_OK,
    RecommendationRequest,
    RecommendationResponse,
    ResponseCallback,
)
from repro.tenancy.config import TenancyConfig, TenantConfig
from repro.tenancy.fleet import ARM_CANARY, ARM_STABLE

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.simulation import Simulator

#: Mirrored (shadow) requests draw ids from their own range so span ids
#: and flight-table entries never collide with client request ids.
SHADOW_ID_BASE = 1 << 40

SubmitFn = Callable[[RecommendationRequest, ResponseCallback], None]


class TenantTally:
    """Client-visible outcome tallies for one tenant."""

    __slots__ = (
        "requests",
        "ok",
        "errors",
        "degraded",
        "cache_hits",
        "canary_requests",
        "digest",
    )

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.degraded = 0
        self.cache_hits = 0
        self.canary_requests = 0
        self.digest = LatencyDigest()

    def record(self, response: RecommendationResponse) -> None:
        if response.status == HTTP_OK:
            self.ok += 1
            if response.degraded:
                self.degraded += 1
            if response.cache_hit:
                self.cache_hits += 1
        else:
            self.errors += 1
        self.digest.record(response.latency_s)


class TrafficSplitter:
    """Routes one client request stream across the fleet's tenants."""

    def __init__(
        self,
        config: TenancyConfig,
        forward: SubmitFn,
        simulator: "Simulator",
        telemetry: Optional["Telemetry"] = None,
    ):
        if not config.enabled:
            raise ValueError("TrafficSplitter requires a non-empty fleet")
        self.config = config
        self.forward = forward
        self.simulator = simulator
        self.telemetry = telemetry
        self._primaries = config.primaries
        #: Smooth weighted round-robin state (offered weights).
        self._credit: Dict[str, float] = {
            t.name: 0.0 for t in self._primaries
        }
        self._offered: Dict[str, float] = {
            t.name: config.traffic_weight(t.name) for t in self._primaries
        }
        self._offered_total = sum(self._offered.values())
        #: Canary fraction accumulators, by tenant.
        self._canary_credit: Dict[str, float] = {
            t.name: 0.0 for t in self._primaries if t.canary_fraction > 0
        }
        #: Shadow mirror accumulators, by shadow tenant.
        self._shadow_credit: Dict[str, float] = {
            t.name: 0.0 for t in config.shadows
        }
        self._next_shadow_id = SHADOW_ID_BASE
        #: Client-visible tallies by primary tenant.
        self.tallies: Dict[str, TenantTally] = {
            t.name: TenantTally() for t in self._primaries
        }
        #: Shadow bookkeeping: copies sent / responses swallowed.
        self.shadow_mirrored: Dict[str, int] = {
            t.name: 0 for t in config.shadows
        }
        self.shadow_completed: Dict[str, int] = {
            t.name: 0 for t in config.shadows
        }
        #: In-flight client requests by tenant (gauge timeline source).
        self._pending: Dict[str, int] = {t.name: 0 for t in self._primaries}
        self._route_counters: Dict[tuple, object] = {}
        self._shed_counters: Dict[str, object] = {}
        self._mirror_counters: Dict[str, object] = {}
        if telemetry is not None:
            for tenant in self._primaries:
                telemetry.metrics.gauge(
                    "tenant_pending",
                    fn=lambda name=tenant.name: self._pending[name],
                    unit="requests",
                    labels={"tenant": tenant.name},
                    help="client requests in flight, by tenant",
                )

    # -- routing -----------------------------------------------------------

    def _pick_tenant(self) -> TenantConfig:
        """Smooth weighted round-robin over the primary tenants."""
        if len(self._primaries) == 1:
            return self._primaries[0]
        best = None
        for tenant in self._primaries:
            self._credit[tenant.name] += self._offered[tenant.name]
            if best is None or self._credit[tenant.name] > self._credit[best.name]:
                best = tenant
        self._credit[best.name] -= self._offered_total
        return best

    def _pick_arm(self, tenant: TenantConfig) -> str:
        if tenant.canary_fraction <= 0:
            return ARM_STABLE
        credit = self._canary_credit[tenant.name] + tenant.canary_fraction
        if credit >= 1.0:
            self._canary_credit[tenant.name] = credit - 1.0
            return ARM_CANARY
        self._canary_credit[tenant.name] = credit
        return ARM_STABLE

    def submit(
        self, request: RecommendationRequest, respond: ResponseCallback
    ) -> None:
        """Route one client request; mirror it to due shadow tenants."""
        tenant = self._pick_tenant()
        arm = self._pick_arm(tenant)
        request.tenant = tenant.name
        request.arm = arm
        if request.deadline_s is None and tenant.slo_ms is not None:
            request.deadline_s = request.sent_at + tenant.slo_ms / 1000.0
        tally = self.tallies[tenant.name]
        tally.requests += 1
        if arm == ARM_CANARY:
            tally.canary_requests += 1
        self._pending[tenant.name] += 1
        self._note_route(request, tenant.name, arm)
        self.forward(request, self._observer(tenant.name, respond))
        for shadow in self.config.shadows:
            credit = self._shadow_credit[shadow.name] + shadow.weight
            if credit >= 1.0:
                self._shadow_credit[shadow.name] = credit - 1.0
                self._mirror(request, shadow)
            else:
                self._shadow_credit[shadow.name] = credit

    def _observer(
        self, name: str, respond: ResponseCallback
    ) -> ResponseCallback:
        """Tally the tenant's outcome, then deliver to the client."""

        def observed(response: RecommendationResponse) -> None:
            self._pending[name] -= 1
            self.tallies[name].record(response)
            if response.status != HTTP_OK and self.telemetry is not None:
                counter = self._shed_counters.get(name)
                if counter is None:
                    counter = self.telemetry.metrics.counter(
                        "tenant_errors_total", unit="requests",
                        labels={"tenant": name},
                        help="client-visible non-200s, by tenant",
                    )
                    self._shed_counters[name] = counter
                counter.inc()
            respond(response)

        return observed

    # -- shadow traffic ----------------------------------------------------

    def _mirror(
        self, request: RecommendationRequest, shadow: TenantConfig
    ) -> None:
        """Send a scored-but-never-returned copy to a shadow tenant."""
        mirror_id = self._next_shadow_id
        self._next_shadow_id += 1
        copy = RecommendationRequest(
            request_id=mirror_id,
            session_id=request.session_id,
            session_items=request.session_items,
            sent_at=request.sent_at,
            tenant=shadow.name,
            arm=ARM_STABLE,
        )
        if shadow.slo_ms is not None:
            copy.deadline_s = copy.sent_at + shadow.slo_ms / 1000.0
        self.shadow_mirrored[shadow.name] += 1
        self._note_route(copy, shadow.name, "shadow")
        if self.telemetry is not None:
            counter = self._mirror_counters.get(shadow.name)
            if counter is None:
                counter = self.telemetry.metrics.counter(
                    "tenant_shadow_mirrored_total", unit="requests",
                    labels={"tenant": shadow.name},
                    help="client requests mirrored to the shadow tenant",
                )
                self._mirror_counters[shadow.name] = counter
            counter.inc()

        def swallow(response: RecommendationResponse) -> None:
            # Scored, never returned: the client callback is never invoked
            # for shadow work, whatever the outcome.
            self.shadow_completed[shadow.name] += 1

        self.forward(copy, swallow)

    # -- observability -----------------------------------------------------

    def _note_route(
        self, request: RecommendationRequest, name: str, arm: str
    ) -> None:
        if self.telemetry is None:
            return
        now = self.simulator.now
        self.telemetry.trace.begin(
            "tenant_route", request.request_id, at=now, tenant=name, arm=arm
        ).finish(at=now)
        counter = self._route_counters.get((name, arm))
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "tenant_requests_total", unit="requests",
                labels={"tenant": name, "arm": arm},
                help="requests routed, by tenant and traffic arm",
            )
            self._route_counters[(name, arm)] = counter
        counter.inc()

    # -- reporting ---------------------------------------------------------

    def summary(
        self,
        duration_s: Optional[float] = None,
        shed_by_tenant: Optional[Dict[str, int]] = None,
        rollouts: Optional[list] = None,
    ) -> Dict:
        """The ``RunResult.tenancy`` section.

        ``shed_by_tenant`` merges the server-side admission tallies
        (summed across pods) into each tenant's row.
        """
        shed_by_tenant = shed_by_tenant or {}
        tenants = {}
        for tenant in self._primaries:
            tally = self.tallies[tenant.name]
            p50 = p90 = None
            if tally.digest.count:
                p50 = tally.digest.percentile(50) * 1e3
                p90 = tally.digest.percentile(90) * 1e3
            slo_met = None
            if tenant.slo_ms is not None and p90 is not None:
                slo_met = bool(p90 <= tenant.slo_ms)
            served = tally.ok + tally.errors
            tenants[tenant.name] = {
                "model": tenant.model,
                "weight": tenant.weight,
                "entitlement": round(
                    self.config.entitlement(tenant.name), 6
                ),
                "slo_ms": tenant.slo_ms,
                "requests": tally.requests,
                "ok": tally.ok,
                "errors": tally.errors,
                "degraded": tally.degraded,
                "shed": shed_by_tenant.get(tenant.name, 0),
                "cache_hits": tally.cache_hits,
                "hit_rate": (
                    round(tally.cache_hits / served, 6) if served else 0.0
                ),
                "canary_requests": tally.canary_requests,
                "rps": (
                    round(tally.requests / duration_s, 3)
                    if duration_s
                    else None
                ),
                "p50_ms": round(p50, 3) if p50 is not None else None,
                "p90_ms": round(p90, 3) if p90 is not None else None,
                "slo_met": slo_met,
            }
        shadows = {
            shadow.name: {
                "model": shadow.model,
                "mirror_fraction": shadow.weight,
                "mirrored": self.shadow_mirrored[shadow.name],
                "completed": self.shadow_completed[shadow.name],
                "shed": shed_by_tenant.get(shadow.name, 0),
            }
            for shadow in self.config.shadows
        }
        section: Dict = {
            "config": self.config.spec_string(),
            "tenants": tenants,
        }
        if shadows:
            section["shadow"] = shadows
        if rollouts:
            section["rollouts"] = rollouts
        return section


__all__ = ["TrafficSplitter", "TenantTally", "SHADOW_ID_BASE"]
