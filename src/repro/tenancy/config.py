"""The tenant-fleet grammar (``--tenants``, opt-in, default-off).

Production recommendation platforms serve a zoo of models at once —
per-surface models, A/B arms, canaries — on shared capacity. A *tenant*
is one named consumer of the fleet: a model artifact plus a traffic
entitlement and (optionally) a latency contract. The whole fleet is
described by one spec string of ``;``-separated tenant segments::

    name=model:weight[,slo=MS][,shadow][,canary=FRAC][,burst=F][,rollout=T]

- ``name=model:weight`` — the tenant's name, the model it serves
  (``gru4rec``/``narm``/...), and its relative traffic weight. Weights
  of non-shadow tenants are normalized into traffic shares: tenants with
  weights 3 and 1 split client traffic 75% / 25%.
- ``slo=MS`` — this tenant's p90 latency contract in milliseconds. It is
  stamped onto the tenant's requests as a deadline (so PR 3 admission
  disciplines shed against it) and checked per tenant by the fleet
  planner (``docs/tenancy.md``).
- ``shadow`` — a shadow tenant mirrors live traffic: its ``weight`` is
  the *mirror fraction* of total client traffic (in [0, 1]) that is
  copied to it. Shadow responses are scored but never returned to the
  client, and shadow work has zero entitlement under overload (it is
  shed first).
- ``canary=FRAC`` — a canary arm: this fraction of the tenant's own
  traffic is served by the *next* artifact version (the canary keeps its
  own cache keyspace, so stable and canary answers never mix).
- ``burst=F`` — load-model knob: the tenant *sends* F× the traffic its
  weight entitles it to (default 1.0). ``burst=4`` models a tenant storm
  for the fairness drills without touching anyone's entitlement.
- ``rollout=T`` — start a rolling artifact-version update for this
  tenant T seconds after load start (pod by pod; ``docs/tenancy.md``).

A fleet-level segment ``fair=N`` (no ``:`` — not a tenant) sets the
queue depth at which weighted-fair shedding engages (default 64).

Example::

    --tenants "home=gru4rec:3,slo=60;search=narm:1,slo=120;mirror=gru4rec:0.1,shadow"

As with every opt-in subsystem (PRs 3-8): ``--tenants`` unset means no
tenancy object exists anywhere and every code path is bit-identical to
the paper-faithful single-model harness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Queue depth below which weighted-fair shedding never engages.
DEFAULT_FAIR_DEPTH = 64

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")


def _fmt(value: float) -> str:
    """Render a float without a trailing ``.0`` (round-trips cleanly)."""
    return f"{value:g}"


@dataclass(frozen=True)
class TenantConfig:
    """One named tenant of the fleet (see the module grammar)."""

    name: str
    model: str
    weight: float
    #: Per-tenant p90 latency contract in milliseconds (None = no SLO).
    slo_ms: Optional[float] = None
    #: Shadow tenants mirror traffic; weight = mirror fraction in [0, 1].
    shadow: bool = False
    #: Fraction of this tenant's traffic served by the canary artifact.
    canary_fraction: float = 0.0
    #: Traffic sent vs. entitled (load-model knob; 4.0 = a 4x storm).
    burst: float = 1.0
    #: Virtual seconds after load start to begin a rolling version bump.
    rollout_at_s: Optional[float] = None

    def __post_init__(self):
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"tenant name {self.name!r} must match {_NAME_RE.pattern}"
            )
        if not self.model:
            raise ValueError(f"tenant {self.name!r} needs a model")
        if self.weight < 0:
            raise ValueError(f"tenant {self.name!r}: weight must be >= 0")
        if self.shadow and not 0.0 <= self.weight <= 1.0:
            raise ValueError(
                f"shadow tenant {self.name!r}: weight is the mirror "
                "fraction and must be within [0, 1]"
            )
        if not self.shadow and self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if not 0.0 <= self.canary_fraction < 1.0:
            raise ValueError(
                f"tenant {self.name!r}: canary fraction must be in [0, 1)"
            )
        if self.shadow and self.canary_fraction > 0:
            raise ValueError(
                f"shadow tenant {self.name!r} cannot carry a canary arm"
            )
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"tenant {self.name!r}: slo must be > 0 ms")
        if self.burst <= 0:
            raise ValueError(f"tenant {self.name!r}: burst must be > 0")
        if self.rollout_at_s is not None and self.rollout_at_s < 0:
            raise ValueError(f"tenant {self.name!r}: rollout must be >= 0 s")

    @classmethod
    def parse(cls, text: str) -> "TenantConfig":
        """Parse one ``name=model:weight[,option...]`` segment."""
        head, _, options = text.partition(",")
        name, eq, spec = head.partition("=")
        model, colon, weight_text = spec.partition(":")
        if not eq or not colon:
            raise ValueError(
                f"tenant segment {text!r} must start with name=model:weight"
            )
        try:
            weight = float(weight_text)
        except ValueError:
            raise ValueError(
                f"tenant {name.strip()!r}: weight {weight_text!r} is not a number"
            ) from None
        fields: Dict[str, object] = {
            "name": name.strip(),
            "model": model.strip(),
            "weight": weight,
        }
        for option in filter(None, (o.strip() for o in options.split(","))):
            key, has_value, value = option.partition("=")
            key = key.strip().lower()
            try:
                if key == "shadow" and not has_value:
                    fields["shadow"] = True
                elif key == "slo":
                    fields["slo_ms"] = float(value)
                elif key == "canary":
                    fields["canary_fraction"] = float(value)
                elif key == "burst":
                    fields["burst"] = float(value)
                elif key == "rollout":
                    fields["rollout_at_s"] = float(value)
                else:
                    raise ValueError(
                        f"unknown tenant option {option!r} "
                        "(expected slo=MS, shadow, canary=FRAC, burst=F, "
                        "rollout=T)"
                    )
            except ValueError as error:
                if "unknown tenant option" in str(error):
                    raise
                raise ValueError(
                    f"tenant option {option!r}: value is not a number"
                ) from None
        return cls(**fields)

    def spec_string(self) -> str:
        """Canonical segment accepted back by :meth:`parse`."""
        parts = [f"{self.name}={self.model}:{_fmt(self.weight)}"]
        if self.slo_ms is not None:
            parts.append(f"slo={_fmt(self.slo_ms)}")
        if self.shadow:
            parts.append("shadow")
        if self.canary_fraction > 0:
            parts.append(f"canary={_fmt(self.canary_fraction)}")
        if self.burst != 1.0:
            parts.append(f"burst={_fmt(self.burst)}")
        if self.rollout_at_s is not None:
            parts.append(f"rollout={_fmt(self.rollout_at_s)}")
        return ",".join(parts)


@dataclass(frozen=True)
class TenancyConfig:
    """A whole tenant fleet: the parsed form of ``--tenants``."""

    tenants: Tuple[TenantConfig, ...] = ()
    #: Queue depth at which weighted-fair shedding engages.
    fair_depth: int = DEFAULT_FAIR_DEPTH

    def __post_init__(self):
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.tenants and not self.primaries:
            raise ValueError("a fleet needs at least one non-shadow tenant")
        if self.fair_depth < 1:
            raise ValueError("fair depth must be >= 1")

    # -- structure ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self.tenants)

    @property
    def primaries(self) -> Tuple[TenantConfig, ...]:
        """Tenants that serve client-visible traffic (non-shadow)."""
        return tuple(t for t in self.tenants if not t.shadow)

    @property
    def shadows(self) -> Tuple[TenantConfig, ...]:
        return tuple(t for t in self.tenants if t.shadow)

    def tenant(self, name: str) -> TenantConfig:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(f"no tenant named {name!r}")

    def models(self) -> Tuple[str, ...]:
        """Distinct models hosted by the fleet, in declaration order."""
        seen = []
        for tenant in self.tenants:
            if tenant.model not in seen:
                seen.append(tenant.model)
        return tuple(seen)

    # -- entitlements ------------------------------------------------------

    def entitlement(self, name: str) -> float:
        """The tenant's fair share of capacity under overload.

        Weights of non-shadow tenants normalize to shares; shadow work is
        best-effort and entitled to nothing.
        """
        tenant = self.tenant(name)
        if tenant.shadow:
            return 0.0
        total = sum(t.weight for t in self.primaries)
        return tenant.weight / total

    def traffic_weight(self, name: str) -> float:
        """The tenant's *offered* traffic weight (entitlement × burst)."""
        tenant = self.tenant(name)
        if tenant.shadow:
            return 0.0
        return tenant.weight * tenant.burst

    # -- round-tripping ----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "TenancyConfig":
        """Parse a full ``--tenants`` string ("" = disabled, no tenants)."""
        tenants = []
        fair_depth = DEFAULT_FAIR_DEPTH
        for segment in filter(None, (s.strip() for s in text.split(";"))):
            if ":" not in segment:
                key, _, value = segment.partition("=")
                if key.strip().lower() == "fair":
                    try:
                        fair_depth = int(value)
                    except ValueError:
                        raise ValueError(
                            f"fleet option {segment!r}: fair depth is not "
                            "an integer"
                        ) from None
                    continue
                raise ValueError(
                    f"fleet segment {segment!r} is neither a tenant "
                    "(name=model:weight) nor a fleet option (fair=N)"
                )
            tenants.append(TenantConfig.parse(segment))
        return cls(tenants=tuple(tenants), fair_depth=fair_depth)

    def spec_string(self) -> str:
        """Canonical string accepted back by :meth:`parse`."""
        parts = [t.spec_string() for t in self.tenants]
        if self.fair_depth != DEFAULT_FAIR_DEPTH:
            parts.append(f"fair={self.fair_depth}")
        return ";".join(parts)

    def describe(self) -> str:
        tenants = ", ".join(
            f"{t.name}({t.model}"
            + (f", shadow {t.weight:g}" if t.shadow else f", {t.weight:g}")
            + (f", slo {t.slo_ms:g}ms" if t.slo_ms is not None else "")
            + ")"
            for t in self.tenants
        )
        return f"fleet of {len(self.tenants)}: {tenants}"


__all__ = ["TenantConfig", "TenancyConfig", "DEFAULT_FAIR_DEPTH"]
