"""Rolling per-tenant artifact-version updates (weight pushes).

A production weight push replaces one tenant's artifact without
touching its co-tenants and without a fleet-wide restart: pod by pod,
the pod leaves the ClusterIP rotation, loads the tenant's new artifact
(charged at the cluster's model-load bandwidth), has that tenant's
version bumped, and rejoins. In-flight and queued work on the pod keeps
completing meanwhile — with two or more replicas the client never sees
a 5xx from the rollout itself.

Cache correctness falls out of key scoping
(:meth:`~repro.tenancy.fleet.TenantServing.cache_version`): the version
bump opens a fresh keyspace for exactly this tenant on exactly this pod
— stale entries can never answer for the new artifact, and every other
tenant's entries (local and remote tier) survive untouched. A tenant
with a canary arm *promotes* the canary version to stable; otherwise
the version gets a ``+r1`` rollout suffix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.kubernetes import Cluster, ModelDeployment
from repro.tenancy.config import TenantConfig

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.simulation import Simulator

#: Rollout trace spans draw ids from their own range (one per pod bump).
ROLLOUT_ID_BASE = 1 << 41


def bumped_version(serving) -> str:
    """The version a rollout moves the tenant's stable arm to."""
    if serving.canary_version is not None:
        return serving.canary_version
    return f"{serving.artifact_version}+r1"


class TenantRollout:
    """One tenant's rolling version update over one deployment."""

    def __init__(
        self,
        simulator: "Simulator",
        deployment: ModelDeployment,
        tenant: TenantConfig,
        start_at_s: float,
        telemetry: Optional["Telemetry"] = None,
    ):
        if tenant.rollout_at_s is None:
            raise ValueError(f"tenant {tenant.name!r} has no rollout= time")
        self.simulator = simulator
        self.deployment = deployment
        self.tenant = tenant
        self.start_at_s = start_at_s
        self.telemetry = telemetry
        #: One entry per pod bumped: {"pod", "at_s", "version"}.
        self.events: List[Dict] = []
        self.done = False
        self._span_id = ROLLOUT_ID_BASE

    def schedule(self) -> None:
        """Arm the rollout at its absolute virtual start time."""
        self.simulator.call_at(
            self.start_at_s,
            lambda: self.simulator.spawn(self._run()),
        )

    def _run(self):
        for pod in list(self.deployment.pods):
            server = pod.server
            if server is None or server.tenants is None:
                continue
            serving = server.tenants.get(self.tenant.name)
            if serving is None:
                continue
            new_version = bumped_version(serving)
            # Out of rotation while the new artifact loads; queued work
            # keeps completing on the pod meanwhile.
            was_ready = pod.ready
            pod.ready = False
            started = self.simulator.now
            yield serving.resident_bytes / Cluster.MODEL_LOAD_BANDWIDTH
            server.set_tenant_version(self.tenant.name, new_version)
            pod.ready = was_ready
            now = self.simulator.now
            self.events.append(
                {
                    "pod": pod.name,
                    "at_s": round(now, 6),
                    "version": new_version,
                }
            )
            if self.telemetry is not None:
                self._span_id += 1
                self.telemetry.trace.begin(
                    "tenant_rollout",
                    self._span_id,
                    at=started,
                    tenant=self.tenant.name,
                    pod=pod.name,
                    version=new_version,
                ).finish(at=now)
        self.done = True

    def summary(self) -> Dict:
        return {
            "tenant": self.tenant.name,
            "started_at_s": round(self.start_at_s, 6),
            "pods_updated": len(self.events),
            "completed": self.done,
            "events": list(self.events),
        }


__all__ = ["TenantRollout", "bumped_version", "ROLLOUT_ID_BASE"]
