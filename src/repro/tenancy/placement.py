"""Co-location budgets and bin-packed fleet placement.

Co-locating N tenants on one replica multiplies the resident footprint:
every pod hosts every tenant's artifact (twice for tenants with an
active canary arm). :func:`check_colocation` enforces the per-instance
memory budget *before* any pod is provisioned, with a per-tenant
breakdown in the :class:`~repro.cluster.kubernetes.DeploymentError` —
the generic single-model fit checks then re-verify the summed footprint
at deploy time.

:class:`FleetPlanner` extends Table I planning with the bin-packing
dimension: for a tenant fleet it searches (instance type × replica
count) for the cheapest *co-located* deployment in which **every**
tenant meets its own SLO under its own traffic share, and prices the
alternative — one standalone Table I plan per tenant at the same SLO —
so the report can show what co-location saves (or costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.kubernetes import Cluster, DeploymentError
from repro.core.planner import DeploymentOption, DeploymentPlanner, option_sort_key
from repro.core.spec import SLO, ExperimentSpec, HardwareSpec, Scenario
from repro.hardware.instances import INSTANCE_TYPES, InstanceType
from repro.tenancy.config import TenancyConfig
from repro.tenancy.fleet import TenantServing

#: Runtime reserves mirrored from the cluster's single-model fit checks.
GPU_RESERVE_BYTES = 2e9
CPU_RESERVE_BYTES = 4e9


def colocated_resident_bytes(servings: Sequence[TenantServing]) -> float:
    """Total bytes the fleet pins on one replica (canaries count twice)."""
    return sum(serving.hosted_bytes() for serving in servings)


def colocation_budget(instance: InstanceType) -> float:
    """Bytes one replica may spend on resident artifacts."""
    device = instance.device
    if device.is_accelerator:
        return device.memory_bytes - GPU_RESERVE_BYTES
    return instance.ram_bytes - CPU_RESERVE_BYTES


def check_colocation(
    instance: InstanceType, servings: Sequence[TenantServing]
) -> float:
    """Enforce the per-instance memory budget for a co-located fleet.

    Returns the summed resident bytes when the fleet fits; raises
    :class:`DeploymentError` with a per-tenant breakdown when it does
    not. GPU deployments additionally need score-buffer headroom on top
    of this — the cluster's ``fit_batching``/``check_fit`` still run on
    the summed footprint and enforce that part.
    """
    total = colocated_resident_bytes(servings)
    budget = colocation_budget(instance)
    if total > budget:
        rows = ", ".join(
            f"{s.name}={s.hosted_bytes() / 1e9:.1f} GB"
            + ("(+canary)" if s.canary_version is not None else "")
            for s in servings
        )
        raise DeploymentError(
            f"tenant fleet needs {total / 1e9:.1f} GB resident but "
            f"{instance.name} offers {budget / 1e9:.1f} GB "
            f"({rows})"
        )
    return total


@dataclass
class FleetPlan:
    """Bin-packing search outcome for one tenant fleet.

    ``options`` are co-located deployments (every tenant's SLO verified
    per tenant); ``standalone`` holds the per-tenant Table I winner each
    tenant would need on its own, at the same SLO and its share of the
    traffic — the cost baseline co-location is judged against.
    """

    tenancy: TenancyConfig
    catalog_size: int
    target_rps: int
    options: List[DeploymentOption] = field(default_factory=list)
    infeasible: Dict[str, str] = field(default_factory=dict)
    standalone: Dict[str, Optional[DeploymentOption]] = field(
        default_factory=dict
    )

    def cheapest(self) -> Optional[DeploymentOption]:
        """Cheapest co-located option (ScenarioPlan's tie-break order)."""
        if not self.options:
            return None
        return min(self.options, key=option_sort_key)

    @property
    def standalone_total_usd(self) -> Optional[float]:
        """Summed cost of the per-tenant standalone winners.

        None when any tenant has no feasible standalone plan — there is
        no isolated baseline to compare against then.
        """
        costs = []
        for option in self.standalone.values():
            if option is None:
                return None
            costs.append(option.monthly_cost_usd)
        return sum(costs) if costs else None

    @property
    def savings_usd(self) -> Optional[float]:
        """Monthly savings of co-location over isolated deployments."""
        winner = self.cheapest()
        baseline = self.standalone_total_usd
        if winner is None or baseline is None:
            return None
        return baseline - winner.monthly_cost_usd


class FleetPlanner:
    """Searches co-located fleet placements meeting every tenant's SLO."""

    def __init__(
        self,
        runner=None,
        slo: SLO = SLO(),
        duration_s: float = 90.0,
        max_replicas: int = 8,
    ):
        from repro.core.experiment import ExperimentRunner

        self.runner = runner or ExperimentRunner()
        #: Default contract for tenants that declare no ``slo=``.
        self.slo = slo
        self.duration_s = duration_s
        self.max_replicas = max_replicas

    # -- per-tenant pieces -------------------------------------------------

    def _tenant_rps(self, tenancy: TenancyConfig, name: str, total: int) -> int:
        """A tenant's entitled share of the client traffic (>= 1 rps)."""
        return max(1, int(round(total * tenancy.entitlement(name))))

    def _tenant_slo(self, tenancy: TenancyConfig, name: str) -> SLO:
        tenant = tenancy.tenant(name)
        if tenant.slo_ms is None:
            return self.slo
        return SLO(
            p90_latency_ms=tenant.slo_ms,
            max_error_rate=self.slo.max_error_rate,
        )

    def _meets_fleet_slo(self, tenancy: TenancyConfig, result) -> bool:
        """Every primary tenant's measured p90 under its own contract."""
        section = result.tenancy or {}
        for tenant in tenancy.primaries:
            row = section.get("tenants", {}).get(tenant.name)
            if row is None or row["p90_ms"] is None:
                return False
            slo = self._tenant_slo(tenancy, tenant.name)
            if row["p90_ms"] > slo.p90_latency_ms:
                return False
            served = row["ok"] + row["errors"]
            if served and row["errors"] / served > slo.max_error_rate:
                return False
        return True

    # -- the co-located search ---------------------------------------------

    def _measure(
        self,
        tenancy: TenancyConfig,
        catalog_size: int,
        target_rps: int,
        instance: InstanceType,
        replicas: int,
    ):
        spec = ExperimentSpec(
            model=tenancy.primaries[0].model,
            catalog_size=catalog_size,
            target_rps=target_rps,
            hardware=HardwareSpec(
                instance_type=instance.name, replicas=replicas
            ),
            duration_s=self.duration_s,
            tenants=tenancy,
        )
        return self.runner.run(spec)

    def _seed_replicas(
        self,
        tenancy: TenancyConfig,
        catalog_size: int,
        target_rps: int,
        instance: InstanceType,
    ) -> int:
        """Analytic floor: summed per-tenant demand on one shared replica."""
        helper = DeploymentPlanner(
            runner=self.runner, slo=self.slo, max_replicas=self.max_replicas
        )
        demand = 0
        for tenant in tenancy.primaries:
            rps = self._tenant_rps(tenancy, tenant.name, target_rps)
            scenario = Scenario("fleet", catalog_size, rps)
            per_tenant = helper.estimate_replicas(
                tenant.model, scenario, instance
            )
            if per_tenant > self.max_replicas:
                return self.max_replicas + 1
            demand += per_tenant
        # Per-tenant estimates are each ceil'd to >= 1, so the sum
        # overshoots for small tenants; the shrink pass corrects that.
        return max(1, min(demand, self.max_replicas + 1))

    def plan(
        self,
        tenancy: TenancyConfig,
        catalog_size: int,
        target_rps: int,
        instances: Optional[Sequence[InstanceType]] = None,
        standalone: bool = True,
    ) -> FleetPlan:
        """Search every instance type for the cheapest co-located fleet."""
        if not tenancy.enabled:
            raise ValueError("FleetPlanner needs a non-empty tenant fleet")
        instances = list(instances or INSTANCE_TYPES)
        plan = FleetPlan(
            tenancy=tenancy,
            catalog_size=catalog_size,
            target_rps=target_rps,
        )
        for instance in instances:
            option = self._search_instance(
                tenancy, catalog_size, target_rps, instance, plan
            )
            if option is not None:
                plan.options.append(option)
        if standalone:
            for tenant in tenancy.primaries:
                plan.standalone[tenant.name] = self._standalone_option(
                    tenancy, catalog_size, target_rps, tenant.name, instances
                )
        return plan

    def _search_instance(
        self,
        tenancy: TenancyConfig,
        catalog_size: int,
        target_rps: int,
        instance: InstanceType,
        plan: FleetPlan,
    ) -> Optional[DeploymentOption]:
        replicas = self._seed_replicas(
            tenancy, catalog_size, target_rps, instance
        )
        if replicas > self.max_replicas:
            plan.infeasible[instance.name] = (
                f"no feasible fleet within {self.max_replicas} replicas"
            )
            return None
        best: Optional[DeploymentOption] = None
        while replicas <= self.max_replicas:
            try:
                result = self._measure(
                    tenancy, catalog_size, target_rps, instance, replicas
                )
            except DeploymentError as error:
                # Budget exceeded: no replica count changes residency.
                plan.infeasible[instance.name] = str(error)
                return None
            if self._meets_fleet_slo(tenancy, result):
                best = DeploymentOption(
                    instance_type=instance.name,
                    replicas=replicas,
                    monthly_cost_usd=instance.cost_for(replicas),
                    result=result,
                    tenants=tenancy.spec_string(),
                )
                break
            replicas += 1
        if best is None:
            plan.infeasible[instance.name] = (
                f"no replica count within {self.max_replicas} meets every "
                "tenant's SLO"
            )
            return None
        # The analytic seed can overshoot; try to shrink.
        while best.replicas > 1:
            try:
                result = self._measure(
                    tenancy, catalog_size, target_rps, instance,
                    best.replicas - 1,
                )
            except DeploymentError:
                break
            if not self._meets_fleet_slo(tenancy, result):
                break
            best = DeploymentOption(
                instance_type=instance.name,
                replicas=best.replicas - 1,
                monthly_cost_usd=instance.cost_for(best.replicas - 1),
                result=result,
                tenants=tenancy.spec_string(),
            )
        return best

    # -- the isolated baseline ---------------------------------------------

    def _standalone_option(
        self,
        tenancy: TenancyConfig,
        catalog_size: int,
        target_rps: int,
        name: str,
        instances: Sequence[InstanceType],
    ) -> Optional[DeploymentOption]:
        """Table I winner for one tenant deployed alone at its share."""
        tenant = tenancy.tenant(name)
        rps = self._tenant_rps(tenancy, name, target_rps)
        planner = DeploymentPlanner(
            runner=self.runner,
            slo=self._tenant_slo(tenancy, name),
            duration_s=self.duration_s,
            max_replicas=self.max_replicas,
        )
        scenario = Scenario(f"standalone-{name}", catalog_size, rps)
        plans = planner.plan(scenario, [tenant.model], instances=instances)
        return plans[tenant.model].cheapest()


__all__ = [
    "FleetPlan",
    "FleetPlanner",
    "check_colocation",
    "colocation_budget",
    "colocated_resident_bytes",
    "GPU_RESERVE_BYTES",
    "CPU_RESERVE_BYTES",
]
