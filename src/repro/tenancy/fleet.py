"""Per-replica tenant serving state for a co-located fleet.

A tenancy-enabled deployment loads *every* tenant's artifact onto every
replica (co-location): one :class:`TenantServing` per tenant per pod
carries that pod's view of the tenant — its scorer, its service-time
profile, and its *current* artifact version. The version is mutable on
purpose: rolling weight updates bump it pod by pod
(:mod:`repro.tenancy.rollout`), and two pods of one deployment may
briefly serve different versions of the same tenant mid-rollout.

Cache scoping: every cache key a tenant's request produces embeds
``version@tenant[#canary]`` (:meth:`TenantServing.cache_version`), so

- two tenants serving the *same* model artifact still have disjoint
  keyspaces (cross-tenant hits are impossible by construction), and
- a version bump or a canary arm opens a fresh keyspace — stale entries
  of the previous artifact can never answer for the new one, while the
  *other* tenants' entries survive untouched.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.hardware.latency_model import ServiceTimeProfile
from repro.tenancy.config import TenantConfig

#: The canary traffic arm (``TenantServing.canary_version`` serves it).
ARM_CANARY = "canary"
#: The default arm served by the tenant's stable artifact version.
ARM_STABLE = "stable"


class TenantServing:
    """One pod's serving state for one tenant (mutable across rollouts)."""

    __slots__ = (
        "config",
        "model",
        "service_profile",
        "artifact_version",
        "canary_version",
        "resident_bytes",
        "score_bytes_per_item",
    )

    def __init__(
        self,
        config: TenantConfig,
        service_profile: ServiceTimeProfile,
        artifact_version: str,
        model=None,
        canary_version: Optional[str] = None,
        resident_bytes: float = 0.0,
        score_bytes_per_item: float = 0.0,
    ):
        self.config = config
        self.model = model
        self.service_profile = service_profile
        self.artifact_version = artifact_version
        self.canary_version = canary_version
        self.resident_bytes = float(resident_bytes)
        self.score_bytes_per_item = float(score_bytes_per_item)
        if config.canary_fraction > 0 and canary_version is None:
            raise ValueError(
                f"tenant {config.name!r} has a canary arm but no canary "
                "artifact version"
            )

    @property
    def name(self) -> str:
        return self.config.name

    def clone(self) -> "TenantServing":
        """A fresh per-pod copy (each pod owns its version state)."""
        return TenantServing(
            config=self.config,
            model=self.model,
            service_profile=self.service_profile,
            artifact_version=self.artifact_version,
            canary_version=self.canary_version,
            resident_bytes=self.resident_bytes,
            score_bytes_per_item=self.score_bytes_per_item,
        )

    def version_for(self, arm: str) -> str:
        if arm == ARM_CANARY and self.canary_version is not None:
            return self.canary_version
        return self.artifact_version

    def cache_version(self, arm: str = ARM_STABLE) -> str:
        """Cache-key version scoping this tenant+arm's results.

        ``version@tenant`` keeps tenants serving the same artifact in
        disjoint keyspaces; the canary arm appends its own marker so
        stable and canary answers never mix.
        """
        version = f"{self.version_for(arm)}@{self.config.name}"
        if arm == ARM_CANARY:
            version += "#canary"
        return version

    def hosted_bytes(self) -> float:
        """Resident bytes this tenant pins on one replica.

        A tenant with an active canary arm holds *two* artifact versions
        resident at once, doubling its footprint.
        """
        copies = 2 if self.canary_version is not None else 1
        return self.resident_bytes * copies


def build_pod_servings(
    template: Sequence[TenantServing],
) -> Dict[str, TenantServing]:
    """Per-pod clones of the deployment's tenant table, keyed by name."""
    return {serving.name: serving.clone() for serving in template}


__all__ = [
    "TenantServing",
    "build_pod_servings",
    "ARM_STABLE",
    "ARM_CANARY",
]
