"""Ordered session replay.

The paper's load generator "respects the order of the sessions, e.g., it
will only send the next interaction for a session if a response for the
previous interaction was received". This queue manages that bookkeeping:

- sessions come from an (endless) source iterator;
- ``next_click()`` hands out the next click of some session that is not
  awaiting a response, opening a fresh session when none is ready;
- ``complete(session_id)`` re-queues a session after its response arrived
  (or retires it when exhausted).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional, Tuple

import numpy as np


class SessionReplayQueue:
    """Round-robin scheduler over in-flight synthetic sessions."""

    def __init__(self, session_source: Iterator[np.ndarray]):
        self._source = session_source
        self._items: Dict[int, np.ndarray] = {}
        self._position: Dict[int, int] = {}
        self._ready: Deque[int] = deque()
        self._next_session_id = 0
        self.opened_sessions = 0
        self.finished_sessions = 0

    def _open_session(self) -> int:
        items = np.asarray(next(self._source), dtype=np.int64)
        while items.size == 0:
            items = np.asarray(next(self._source), dtype=np.int64)
        session_id = self._next_session_id
        self._next_session_id += 1
        self._items[session_id] = items
        self._position[session_id] = 0
        self.opened_sessions += 1
        return session_id

    def next_click(self) -> Tuple[int, np.ndarray]:
        """``(session_id, session_prefix)`` for the next request.

        The prefix includes all clicks of the session up to and including
        the new one — the model input for the recommendation.
        """
        if self._ready:
            session_id = self._ready.popleft()
        else:
            session_id = self._open_session()
        position = self._position[session_id]
        prefix = self._items[session_id][: position + 1]
        return session_id, prefix

    def complete(self, session_id: int) -> None:
        """A response for the session's in-flight click arrived."""
        if session_id not in self._items:
            raise KeyError(f"unknown or finished session {session_id}")
        self._position[session_id] += 1
        if self._position[session_id] >= self._items[session_id].shape[0]:
            del self._items[session_id]
            del self._position[session_id]
            self.finished_sessions += 1
        else:
            self._ready.append(session_id)

    @property
    def in_flight_sessions(self) -> int:
        return len(self._items) - len(self._ready)
