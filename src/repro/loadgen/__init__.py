"""Backpressure-aware load generation (Algorithm 2 of the paper)."""

from repro.loadgen.rampup import timeprop_rampup
from repro.loadgen.retry import RetryPolicy
from repro.loadgen.session_replay import SessionReplayQueue
from repro.loadgen.generator import LoadGenerator
from repro.loadgen.schedules import (
    ConstantSchedule,
    DiurnalSchedule,
    FlashSaleSchedule,
    RampSchedule,
    StepSchedule,
)

__all__ = [
    "timeprop_rampup",
    "RetryPolicy",
    "SessionReplayQueue",
    "LoadGenerator",
    "RampSchedule",
    "ConstantSchedule",
    "StepSchedule",
    "DiurnalSchedule",
    "FlashSaleSchedule",
]
