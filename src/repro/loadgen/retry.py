"""Client-side retry semantics for the load generator.

Real recommendation clients do not treat a single 503 from a restarting
pod as a terminal failure: they retry against the service's rotation with
capped exponential backoff, and latency-sensitive deployments hedge
long-running requests with a duplicate. Without that recovery path every
failure scenario collapses into "errors until restart", which hides
exactly the degraded-capacity regime ETUDE is supposed to measure.

:class:`RetryPolicy` is the declarative half: how many attempts a request
may burn, how the backoff grows, and whether hedging is enabled. The
mechanics live in :class:`~repro.loadgen.generator.LoadGenerator`, which
resubmits through the same ``submit()`` target — for a deployed run that
is the ClusterIP rotation, so a retry naturally lands on the next pod.

Determinism: backoff jitter draws from a dedicated seeded stream passed
alongside the policy, and nothing draws when no retry fires, so enabling
the policy on a failure-free run and disabling it entirely both reproduce
the baseline latencies bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from repro.serving.request import HTTP_SERVICE_UNAVAILABLE


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter, plus hedging.

    ``max_retries`` is the per-request retry budget: a request is sent at
    most ``1 + max_retries`` times (hedges not counted). Backoff before
    attempt ``n`` (1-based) is ``base_backoff_s * multiplier**(n-1)``
    capped at ``max_backoff_s``, shrunk by up to ``jitter`` (a fraction in
    ``[0, 1]``) drawn from the seeded retry stream. ``hedge_after_s``, when
    set, fires one duplicate request if no response arrived within that
    window; the first response to arrive settles the request.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    hedge_after_s: Optional[float] = None
    retryable_statuses: FrozenSet[int] = field(
        default_factory=lambda: frozenset({HTTP_SERVICE_UNAVAILABLE})
    )

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError("need 0 <= base_backoff_s <= max_backoff_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be positive")

    def retryable(self, status: int) -> bool:
        return status in self.retryable_statuses

    def backoff_s(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Delay before retry ``attempt`` (1-based), jittered via ``rng``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter == 0.0 or rng is None:
            return raw
        # Deterministic "full-ish jitter": shrink by up to `jitter` of the
        # raw delay. The draw comes from the dedicated retry stream, so
        # jitter never perturbs any other actor's randomness.
        return raw * (1.0 - self.jitter * float(rng.random()))

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Build a policy from a compact CLI spec.

        ``"max=3,base=0.05,cap=1.0,mult=2,jitter=0.5,hedge=0.2"`` — every
        key optional, empty string = all defaults. ``hedge`` enables hedged
        requests after that many seconds.
        """
        kwargs: dict = {}
        keys = {
            "max": ("max_retries", int),
            "base": ("base_backoff_s", float),
            "cap": ("max_backoff_s", float),
            "mult": ("multiplier", float),
            "jitter": ("jitter", float),
            "hedge": ("hedge_after_s", float),
        }
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(
                    f"bad retry spec item {part!r}; expected key=value"
                )
            key, _, value = part.partition("=")
            if key not in keys:
                raise ValueError(
                    f"unknown retry spec key {key!r}; known: {sorted(keys)}"
                )
            name, cast = keys[key]
            kwargs[name] = cast(value)
        return cls(**kwargs)

    def spec_string(self) -> str:
        """The compact form :meth:`parse` accepts (for spec files)."""
        parts = [
            f"max={self.max_retries}",
            f"base={self.base_backoff_s:g}",
            f"cap={self.max_backoff_s:g}",
            f"mult={self.multiplier:g}",
            f"jitter={self.jitter:g}",
        ]
        if self.hedge_after_s is not None:
            parts.append(f"hedge={self.hedge_after_s:g}")
        return ",".join(parts)

    def describe(self) -> str:
        hedge = (
            f", hedge after {self.hedge_after_s * 1000:.0f} ms"
            if self.hedge_after_s is not None
            else ""
        )
        return (
            f"up to {self.max_retries} retries, backoff "
            f"{self.base_backoff_s * 1000:.0f}->"
            f"{self.max_backoff_s * 1000:.0f} ms x{self.multiplier:g}"
            f"{hedge}"
        )
