"""Algorithm 2 — the backpressure-aware load generator.

Operates in one-second ticks. Each tick sends ``r_c = TIMEPROP_RAMPUP(...)``
requests, evenly spread over the tick. A pending-request counter implements
backpressure: whenever ``pending >= r_c`` the generator pauses in
one-millisecond steps instead of piling more load onto a struggling server,
moving on to the next tick when the current one runs out of time. This lets
experiments terminate gracefully and reveals the throughput threshold where
a deployment stops keeping up — the paper's design goal for overload
handling.

Requests replay synthetic sessions in order (next click only after the
previous response, via :class:`~repro.loadgen.session_replay.SessionReplayQueue`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.loadgen.rampup import timeprop_rampup
from repro.loadgen.session_replay import SessionReplayQueue
from repro.metrics.collector import MetricsCollector
from repro.serving.request import (
    HTTP_GATEWAY_TIMEOUT,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.simulation import Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry

SubmitFn = Callable[[RecommendationRequest, Callable[[RecommendationResponse], None]], None]


class LoadGenerator:
    """Replays sessions against a submit() target inside the simulator."""

    #: Backpressure poll interval (Algorithm 2 line 12: "wait 1 millisecond").
    BACKPRESSURE_WAIT_S = 0.001

    def __init__(
        self,
        simulator: Simulator,
        submit: SubmitFn,
        session_source: Iterator[np.ndarray],
        target_rps: float,
        duration_s: float,
        collector: Optional[MetricsCollector] = None,
        schedule=None,
        request_timeout_s: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.simulator = simulator
        self.submit = submit
        self.sessions = SessionReplayQueue(session_source)
        self.target_rps = float(target_rps)
        self.duration_s = float(duration_s)
        self.collector = collector or MetricsCollector()
        if schedule is None:
            from repro.loadgen.schedules import RampSchedule

            schedule = RampSchedule(self.target_rps)
        self.schedule = schedule

        #: Optional client-side timeout: give up waiting after this long
        #: (late responses are dropped, like a closed HTTP connection).
        self.request_timeout_s = request_timeout_s
        self.pending = 0
        self.sent = 0
        self.backpressure_stalls = 0
        self.timeouts = 0
        self._next_request_id = 0
        self.finished = False

        #: Optional telemetry handle; None = zero instrumentation overhead.
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.gauge(
                "loadgen_pending", fn=lambda: self.pending, unit="requests",
                help="in-flight requests awaiting a response or timeout",
            )
            self._sent_counter = metrics.counter(
                "loadgen_sent_total", unit="requests",
                help="requests handed to the submit target",
            )
            self._timeout_counter = metrics.counter(
                "loadgen_timeouts_total", unit="requests",
                help="requests abandoned client-side after request_timeout_s",
            )
            self._stall_counter = metrics.counter(
                "loadgen_backpressure_stalls_total", unit="stalls",
                help="1 ms backpressure pauses (Algorithm 2 line 12)",
            )

    def start(self) -> None:
        self.simulator.spawn(self._run())

    # -- request plumbing ---------------------------------------------------

    def _send_one(self) -> None:
        session_id, prefix = self.sessions.next_click()
        request = RecommendationRequest(
            request_id=self._next_request_id,
            session_id=session_id,
            session_items=prefix,
            sent_at=self.simulator.now,
        )
        self._next_request_id += 1
        self.pending += 1
        self.sent += 1
        self.collector.note_sent(request.sent_at)
        sent_at = request.sent_at
        settled = {"done": False}

        root_span = None
        if self.telemetry is not None:
            self._sent_counter.inc()
            root_span = self.telemetry.trace.begin(
                "request", request.request_id, session_id=int(session_id)
            )

        def on_response(response: RecommendationResponse) -> None:
            if settled["done"]:
                return  # the client already timed out; connection is gone
            settled["done"] = True
            self.pending -= 1
            self.collector.record(sent_at, response)
            if root_span is not None:
                root_span.finish(
                    status=response.status, batch_size=response.batch_size
                )
            self.sessions.complete(session_id)

        if self.request_timeout_s is not None:

            def on_timeout() -> None:
                if settled["done"]:
                    return
                settled["done"] = True
                self.pending -= 1
                self.timeouts += 1
                if root_span is not None:
                    self._timeout_counter.inc()
                    root_span.finish(status=HTTP_GATEWAY_TIMEOUT)
                now = self.simulator.now
                self.collector.record(
                    sent_at,
                    RecommendationResponse(
                        request_id=request.request_id,
                        status=HTTP_GATEWAY_TIMEOUT,
                        completed_at=now,
                        latency_s=now - sent_at,
                    ),
                )
                # The visitor moved on; the session continues regardless.
                self.sessions.complete(session_id)

            self.simulator.call_in(self.request_timeout_s, on_timeout)

        self.submit(request, on_response)

    # -- Algorithm 2 main loop -----------------------------------------------

    def _run(self):
        started_at = self.simulator.now
        deadline = started_at + self.duration_s
        while self.simulator.now < deadline:
            tick_start = self.simulator.now
            tick_end = tick_start + 1.0
            r_c = self.schedule.rate_at(tick_start - started_at, self.duration_s)

            sent_this_tick = 0
            while sent_this_tick < r_c and self.simulator.now < tick_end:
                # Backpressure: don't exceed r_c requests in flight.
                stalled = False
                while self.pending >= r_c:
                    if self.simulator.now >= tick_end or self.simulator.now >= deadline:
                        stalled = True
                        break
                    self.backpressure_stalls += 1
                    if self.telemetry is not None:
                        self._stall_counter.inc()
                    yield self.BACKPRESSURE_WAIT_S
                if stalled or self.simulator.now >= deadline:
                    break
                self._send_one()
                sent_this_tick += 1
                # Evenly spread the remaining sends over the rest of the tick.
                remaining_sends = r_c - sent_this_tick
                if remaining_sends > 0:
                    time_left = tick_end - self.simulator.now
                    if time_left > 0:
                        yield time_left / (remaining_sends + 1)
            if self.simulator.now < tick_end:
                yield tick_end - self.simulator.now
        self.finished = True
