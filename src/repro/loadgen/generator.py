"""Algorithm 2 — the backpressure-aware load generator.

Operates in one-second ticks. Each tick sends ``r_c = TIMEPROP_RAMPUP(...)``
requests, evenly spread over the tick. A pending-request counter implements
backpressure: whenever ``pending >= r_c`` the generator pauses in
one-millisecond steps instead of piling more load onto a struggling server,
moving on to the next tick when the current one runs out of time. This lets
experiments terminate gracefully and reveals the throughput threshold where
a deployment stops keeping up — the paper's design goal for overload
handling.

Requests replay synthetic sessions in order (next click only after the
previous response, via :class:`~repro.loadgen.session_replay.SessionReplayQueue`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.loadgen.rampup import timeprop_rampup
from repro.loadgen.retry import RetryPolicy
from repro.loadgen.session_replay import SessionReplayQueue
from repro.metrics.collector import MetricsCollector
from repro.serving.request import (
    HTTP_GATEWAY_TIMEOUT,
    RecommendationRequest,
    RecommendationResponse,
)
from repro.simulation import Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry

SubmitFn = Callable[[RecommendationRequest, Callable[[RecommendationResponse], None]], None]


class LoadGenerator:
    """Replays sessions against a submit() target inside the simulator."""

    #: Backpressure poll interval (Algorithm 2 line 12: "wait 1 millisecond").
    BACKPRESSURE_WAIT_S = 0.001

    def __init__(
        self,
        simulator: Simulator,
        submit: SubmitFn,
        session_source: Iterator[np.ndarray],
        target_rps: float,
        duration_s: float,
        collector: Optional[MetricsCollector] = None,
        schedule=None,
        request_timeout_s: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[np.random.Generator] = None,
        slo_deadline_s: Optional[float] = None,
    ):
        self.simulator = simulator
        self.submit = submit
        self.sessions = SessionReplayQueue(session_source)
        self.target_rps = float(target_rps)
        self.duration_s = float(duration_s)
        self.collector = collector or MetricsCollector()
        if schedule is None:
            from repro.loadgen.schedules import RampSchedule

            schedule = RampSchedule(self.target_rps)
        self.schedule = schedule

        #: Optional client-side timeout: give up waiting after this long
        #: (late responses are dropped, like a closed HTTP connection).
        self.request_timeout_s = request_timeout_s
        #: Optional retry/hedging behaviour; ``None`` = every error is
        #: terminal (the pre-resilience client). Jitter draws come from
        #: ``retry_rng`` (a dedicated seeded stream) and only when a retry
        #: actually fires, so a failure-free run stays bit-identical.
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        #: Per-request SLO: each request is stamped with an absolute
        #: ``deadline_s = sent_at + slo_deadline_s`` so deadline-aware
        #: admission control downstream can shed doomed work. ``None`` =
        #: no deadline stamped (the paper's client).
        self.slo_deadline_s = slo_deadline_s
        self.pending = 0
        self.sent = 0
        self.backpressure_stalls = 0
        self.timeouts = 0
        #: Resilience tallies (wire-level extras beyond ``sent``).
        self.retries = 0
        self.hedges = 0
        self.retry_successes = 0
        self.retry_exhausted = 0
        self._next_request_id = 0
        self.finished = False

        #: Optional telemetry handle; None = zero instrumentation overhead.
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.gauge(
                "loadgen_pending", fn=lambda: self.pending, unit="requests",
                help="in-flight requests awaiting a response or timeout",
            )
            self._sent_counter = metrics.counter(
                "loadgen_sent_total", unit="requests",
                help="requests handed to the submit target",
            )
            self._timeout_counter = metrics.counter(
                "loadgen_timeouts_total", unit="requests",
                help="requests abandoned client-side after request_timeout_s",
            )
            self._stall_counter = metrics.counter(
                "loadgen_backpressure_stalls_total", unit="stalls",
                help="1 ms backpressure pauses (Algorithm 2 line 12)",
            )
            if retry_policy is not None:
                self._retry_counter = metrics.counter(
                    "loadgen_retries_total", unit="requests",
                    help="retry attempts after a retryable error response",
                )
                self._hedge_counter = metrics.counter(
                    "loadgen_hedges_total", unit="requests",
                    help="hedged duplicate requests sent after hedge_after_s",
                )
                self._retry_exhausted_counter = metrics.counter(
                    "loadgen_retry_exhausted_total", unit="requests",
                    help="requests that stayed failed after the retry budget",
                )

    def start(self) -> None:
        self.simulator.spawn(self._run())

    # -- request plumbing ---------------------------------------------------

    def _send_one(self) -> None:
        session_id, prefix = self.sessions.next_click()
        request = RecommendationRequest(
            request_id=self._next_request_id,
            session_id=session_id,
            session_items=prefix,
            sent_at=self.simulator.now,
            deadline_s=(
                None
                if self.slo_deadline_s is None
                else self.simulator.now + self.slo_deadline_s
            ),
        )
        self._next_request_id += 1
        self.pending += 1
        self.sent += 1
        self.collector.note_sent(request.sent_at)
        sent_at = request.sent_at
        # Per-logical-request state: one settle across all attempts and
        # hedges, plus the cancellable timers covering the whole request.
        state = {
            "done": False,
            "attempt": 0,
            "hedged": False,
            "timeout": None,
            "hedge": None,
            "hedge_span": None,
        }
        policy = self.retry_policy

        root_span = None
        if self.telemetry is not None:
            self._sent_counter.inc()
            root_span = self.telemetry.trace.begin(
                "request", request.request_id, session_id=int(session_id)
            )

        def cancel_timers() -> None:
            for key in ("timeout", "hedge"):
                if state[key] is not None:
                    state[key].cancel()
                    state[key] = None

        def settle_spans(status: int) -> None:
            if state["hedge_span"] is not None:
                state["hedge_span"].finish(status=status)
                state["hedge_span"] = None

        def on_response(response: RecommendationResponse) -> None:
            if state["done"]:
                return  # the client already settled; connection is gone
            if (
                policy is not None
                and policy.retryable(response.status)
                and state["attempt"] < policy.max_retries
            ):
                self._schedule_retry(request, state, response, on_response)
                return
            state["done"] = True
            cancel_timers()
            self.pending -= 1
            if policy is not None and state["attempt"] > 0:
                if response.ok:
                    self.retry_successes += 1
                elif policy.retryable(response.status):
                    self.retry_exhausted += 1
                    if self.telemetry is not None:
                        self._retry_exhausted_counter.inc()
                # End-to-end latency spans all attempts, not just the last
                # wire exchange (the service stamps from first send, but a
                # bare-server submit target may not).
                response.latency_s = response.completed_at - sent_at
            self.collector.record(sent_at, response)
            if root_span is not None:
                attrs = {}
                if state["attempt"]:
                    attrs["retries"] = state["attempt"]
                if state["hedged"]:
                    attrs["hedged"] = True
                root_span.finish(
                    status=response.status,
                    batch_size=response.batch_size,
                    **attrs,
                )
            settle_spans(response.status)
            self.sessions.complete(session_id)

        if self.request_timeout_s is not None:

            def on_timeout() -> None:
                if state["done"]:
                    return
                state["done"] = True
                state["timeout"] = None
                cancel_timers()
                self.pending -= 1
                self.timeouts += 1
                if root_span is not None:
                    self._timeout_counter.inc()
                    root_span.finish(status=HTTP_GATEWAY_TIMEOUT)
                settle_spans(HTTP_GATEWAY_TIMEOUT)
                now = self.simulator.now
                self.collector.record(
                    sent_at,
                    RecommendationResponse(
                        request_id=request.request_id,
                        status=HTTP_GATEWAY_TIMEOUT,
                        completed_at=now,
                        latency_s=now - sent_at,
                    ),
                )
                # The visitor moved on; the session continues regardless.
                self.sessions.complete(session_id)

            state["timeout"] = self.simulator.call_in(
                self.request_timeout_s, on_timeout
            )

        if policy is not None and policy.hedge_after_s is not None:
            state["hedge"] = self.simulator.call_in(
                policy.hedge_after_s,
                lambda: self._send_hedge(request, state, on_response),
            )

        self.submit(request, on_response)

    # -- resilience plumbing ------------------------------------------------

    def _schedule_retry(self, request, state, response, on_response) -> None:
        """Resubmit ``request`` after the policy's (jittered) backoff."""
        state["attempt"] += 1
        attempt = state["attempt"]
        self.retries += 1
        delay = self.retry_policy.backoff_s(attempt, self.retry_rng)
        backoff_span = None
        if self.telemetry is not None:
            self._retry_counter.inc()
            backoff_span = self.telemetry.trace.begin(
                "retry_backoff",
                request.request_id,
                attempt=attempt,
                status=response.status,
            )

        def resend() -> None:
            if state["done"]:
                return  # the client timeout fired mid-backoff
            if backoff_span is not None:
                backoff_span.finish()
            # Same request object: ``sent_at`` stays at the first attempt,
            # so delivered latencies remain end-to-end across retries. The
            # ClusterIP rotation advances per submit, so the retry lands on
            # the next pod rather than hammering the crashed one.
            self.submit(request, on_response)

        self.simulator.call_in(delay, resend)

    def _send_hedge(self, request, state, on_response) -> None:
        """Send one duplicate of a slow request; first response settles."""
        if state["done"] or state["hedged"]:
            return
        state["hedged"] = True
        state["hedge"] = None
        self.hedges += 1
        hedge = RecommendationRequest(
            request_id=self._next_request_id,
            session_id=request.session_id,
            session_items=request.session_items,
            sent_at=request.sent_at,
            # The hedge races the original under the same SLO clock.
            deadline_s=request.deadline_s,
        )
        self._next_request_id += 1
        if self.telemetry is not None:
            self._hedge_counter.inc()
            state["hedge_span"] = self.telemetry.trace.begin(
                "request",
                hedge.request_id,
                session_id=int(request.session_id),
                hedge_of=request.request_id,
            )
        self.submit(hedge, on_response)

    # -- Algorithm 2 main loop -----------------------------------------------

    def _run(self):
        started_at = self.simulator.now
        deadline = started_at + self.duration_s
        while self.simulator.now < deadline:
            tick_start = self.simulator.now
            tick_end = tick_start + 1.0
            r_c = self.schedule.rate_at(tick_start - started_at, self.duration_s)

            sent_this_tick = 0
            while sent_this_tick < r_c and self.simulator.now < tick_end:
                # Backpressure: don't exceed r_c requests in flight.
                stalled = False
                while self.pending >= r_c:
                    if self.simulator.now >= tick_end or self.simulator.now >= deadline:
                        stalled = True
                        break
                    self.backpressure_stalls += 1
                    if self.telemetry is not None:
                        self._stall_counter.inc()
                    yield self.BACKPRESSURE_WAIT_S
                if stalled or self.simulator.now >= deadline:
                    break
                self._send_one()
                sent_this_tick += 1
                # Evenly spread the remaining sends over the rest of the tick.
                remaining_sends = r_c - sent_this_tick
                if remaining_sends > 0:
                    time_left = tick_end - self.simulator.now
                    if time_left > 0:
                        yield time_left / (remaining_sends + 1)
            if self.simulator.now < tick_end:
                yield tick_end - self.simulator.now
        self.finished = True
