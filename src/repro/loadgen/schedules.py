"""Arrival-rate schedules for the load generator.

Algorithm 2 in the paper uses exactly one schedule — the TIMEPROP linear
ramp — because its goal is finding the throughput threshold where a
deployment stops keeping up. Production traffic is richer; these schedules
let the same load generator replay other industrially relevant patterns:

- :class:`RampSchedule` — the paper's ``TIMEPROP_RAMPUP`` (default);
- :class:`ConstantSchedule` — steady state at a fixed rate;
- :class:`StepSchedule` — piecewise-constant plateaus (SLA staircase);
- :class:`DiurnalSchedule` — a day-night sine profile compressed into the
  benchmark duration (e-Commerce traffic shape);
- :class:`FlashSaleSchedule` — baseline with a sudden multiplicative burst
  (the campaign-launch scenario that breaks unprepared deployments).

Every schedule maps ``(elapsed_s, duration_s) -> requests for this tick``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

from repro.loadgen.rampup import timeprop_rampup


class RateSchedule(Protocol):
    """Requests to offer during the one-second tick starting at elapsed."""

    def rate_at(self, elapsed_s: float, duration_s: float) -> int: ...


def _tick_rate(rate: float) -> int:
    """Whole requests for one tick: positive rates offer at least one
    request (fractional rates must not stall the run), a zero rate offers
    none — a silent phase is silence, not a one-request-per-second trickle.
    """
    return 0 if rate <= 0 else max(1, int(round(rate)))


@dataclass(frozen=True)
class RampSchedule:
    """The paper's TIMEPROP ramp to ``target_rps`` over the duration."""

    target_rps: float

    def rate_at(self, elapsed_s: float, duration_s: float) -> int:
        return timeprop_rampup(self.target_rps, elapsed_s, duration_s)


@dataclass(frozen=True)
class ConstantSchedule:
    """Steady offered load from the first tick."""

    target_rps: float

    def rate_at(self, elapsed_s: float, duration_s: float) -> int:
        return _tick_rate(self.target_rps)


@dataclass(frozen=True)
class StepSchedule:
    """Plateaus: ``steps`` are (fraction_of_duration, rps) break points.

    Example: ``((0.0, 100), (0.5, 400))`` serves 100 req/s for the first
    half and 400 req/s for the second.
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.steps or self.steps[0][0] != 0.0:
            raise ValueError("steps must start at fraction 0.0")
        fractions = [fraction for fraction, _rps in self.steps]
        if fractions != sorted(fractions):
            raise ValueError("step fractions must be ascending")

    def rate_at(self, elapsed_s: float, duration_s: float) -> int:
        fraction = min(max(elapsed_s / duration_s, 0.0), 1.0)
        current = self.steps[0][1]
        for start, rps in self.steps:
            if fraction >= start:
                current = rps
        return _tick_rate(current)


@dataclass(frozen=True)
class DiurnalSchedule:
    """A compressed day: sinusoid between ``low_rps`` and ``high_rps``.

    ``cycles`` full days fit into the benchmark duration; the peak sits at
    the middle of each cycle.
    """

    low_rps: float
    high_rps: float
    cycles: float = 1.0

    def __post_init__(self):
        if self.low_rps > self.high_rps:
            raise ValueError("low_rps must not exceed high_rps")

    def rate_at(self, elapsed_s: float, duration_s: float) -> int:
        fraction = (elapsed_s / duration_s) * self.cycles % 1.0
        # Sine from trough (midnight) to peak (midday) and back.
        weight = 0.5 - 0.5 * math.cos(2.0 * math.pi * fraction)
        rate = self.low_rps + (self.high_rps - self.low_rps) * weight
        return _tick_rate(rate)


@dataclass(frozen=True)
class FlashSaleSchedule:
    """Baseline traffic with a sudden burst window.

    During ``[burst_start_fraction, burst_end_fraction)`` the offered rate
    multiplies by ``burst_factor`` — the campaign-launch spike.
    """

    baseline_rps: float
    burst_factor: float = 5.0
    burst_start_fraction: float = 0.5
    burst_end_fraction: float = 0.7

    def __post_init__(self):
        if not 0.0 <= self.burst_start_fraction < self.burst_end_fraction <= 1.0:
            raise ValueError("need 0 <= start < end <= 1 for the burst window")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")

    def rate_at(self, elapsed_s: float, duration_s: float) -> int:
        fraction = min(max(elapsed_s / duration_s, 0.0), 1.0)
        rate = self.baseline_rps
        if self.burst_start_fraction <= fraction < self.burst_end_fraction:
            rate *= self.burst_factor
        return _tick_rate(rate)
